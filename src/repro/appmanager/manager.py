"""The GrADS application manager and execution environment.

The right-hand side of Figure 1 as one object: given a virtual grid, it
assembles the information services (GIS, NWS), the program-preparation
services (software registry, binder), and the runtime services
(Autopilot, contract monitoring, rescheduling), then manages
applications through their whole lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..apps.qr import QrBenchmark, QrRun
from ..binder.binder import BINDER_PACKAGE, BindReport, DistributedBinder
from ..binder.launcher import Launcher
from ..cop.cop import CompilationPackage, ConfigurableObjectProgram
from ..cop.mapper import FastestSubsetMapper
from ..perfmodel.model import AnalyticComponentModel
from ..scheduler.executor import ExecutionTrace, WorkflowExecutor
from ..scheduler.scheduler import GradsWorkflowScheduler, SchedulingResult
from ..scheduler.workflow import Workflow
from ..sim.events import Event
from ..contracts.autopilot import AutopilotManager
from ..contracts.contract import PerformanceContract
from ..contracts.monitor import ContractMonitor
from ..gis.directory import GridInformationService
from ..gis.software import SoftwarePackage, SoftwareRegistry
from ..microgrid.dml import Grid
from ..nws.service import NetworkWeatherService
from ..rescheduling.rescheduler import Rescheduler
from ..rescheduling.rss import RuntimeSupportSystem
from ..rescheduling.srs import SRSLibrary
from ..sim.kernel import Simulator

__all__ = ["GradsEnvironment", "DEFAULT_PACKAGES", "WorkflowRun"]

#: software preinstalled across the testbeds (as on the real MacroGrid)
DEFAULT_PACKAGES = (BINDER_PACKAGE, "mpi", "scalapack", "eman", "autopilot")


@dataclass
class WorkflowRun:
    """Everything one end-to-end workflow execution produced."""

    scheduling: SchedulingResult
    bind: BindReport
    trace: ExecutionTrace

    @property
    def measured_makespan(self) -> float:
        return self.trace.makespan

    @property
    def estimated_makespan(self) -> float:
        return self.scheduling.best.makespan


class GradsEnvironment:
    """One fully wired GrADS deployment over a virtual grid."""

    def __init__(self, sim: Simulator, grid: Grid,
                 submission_host: Optional[str] = None,
                 deploy_network_sensors: bool = False,
                 packages: Sequence[str] = DEFAULT_PACKAGES) -> None:
        self.sim = sim
        self.grid = grid
        all_hosts = grid.all_hosts()
        if not all_hosts:
            raise ValueError("grid has no hosts")
        self.submission_host = submission_host or all_hosts[0].name

        self.gis = GridInformationService()
        self.gis.register_grid(grid)
        self.nws = NetworkWeatherService(
            sim, grid, deploy_network_sensors=deploy_network_sensors)
        self.software = SoftwareRegistry()
        names = [h.name for h in all_hosts]
        for package in packages:
            self.software.install_everywhere(SoftwarePackage(name=package),
                                             names)
        self.binder = DistributedBinder(sim, grid.topology, self.gis,
                                        self.software,
                                        package_source=self.submission_host)
        self.launcher = Launcher(sim, grid.topology, self.gis)
        self.autopilot = AutopilotManager(sim)

    # -- managed QR (the §4.1 pipeline) -----------------------------------------
    def managed_qr(self, benchmark: QrBenchmark,
                   initial_hosts: Sequence[str],
                   rescheduler_mode: str = "default",
                   worst_case_migration_seconds: Optional[float] = 900.0,
                   contract_upper: float = 1.5,
                   contract_lower: float = 0.5,
                   monitor_window: int = 3,
                   checkpoint_every: Optional[int] = None,
                   stable_storage: bool = False,
                   max_restart_attempts: int = 8,
                   retry_backoff_seconds: float = 5.0,
                   migration_timeout_seconds: Optional[float] = None,
                   blacklist_seconds: Optional[float] = None,
                   ) -> tuple:
        """Wire up a QR run with contract monitoring and rescheduling.

        Returns ``(run, monitor, rescheduler)``; call ``run.start()``
        and drive the simulator to execute.

        The last four knobs configure the failure-recovery machinery:
        bounded retry-with-backoff in the run's restart path, and the
        rescheduler's migration timeout / target blacklisting.
        """
        rss = RuntimeSupportSystem(self.sim, home_host=self.submission_host)
        stable = (self.gis.host(self.submission_host)
                  if stable_storage else None)
        srs = SRSLibrary(self.sim, self.grid.topology, rss,
                         stable_host=stable)
        contract = PerformanceContract(
            predicted_fn=lambda step: 1.0,  # renegotiated at launch
            upper=contract_upper, lower=contract_lower)
        monitor = ContractMonitor(self.sim, contract, window=monitor_window)
        run = QrRun(self.sim, self.grid, self.gis, self.nws, self.binder,
                    rss, srs, benchmark, initial_hosts, monitor=monitor,
                    checkpoint_every=checkpoint_every,
                    max_restart_attempts=max_restart_attempts,
                    retry_backoff_seconds=retry_backoff_seconds)
        rescheduler = Rescheduler(
            self.sim, self.gis, self.nws, mode=rescheduler_mode,
            worst_case_migration_seconds=worst_case_migration_seconds,
            migration_timeout_seconds=migration_timeout_seconds,
            blacklist_seconds=blacklist_seconds)
        rescheduler.manage(run)
        monitor.rescheduler = rescheduler.request_handler(run)
        return run, monitor, rescheduler

    # -- managed workflows (the §3.3 pipeline) ------------------------------------
    def run_workflow(self, workflow: Workflow,
                     data_sources: Optional[Dict[str, List[str]]] = None,
                     required_packages: Sequence[str] = ("mpi",),
                     ) -> Event:
        """Run the full §3.3 cycle for a workflow application:
        schedule (min-min/max-min/sufferage, best makespan), *bind* the
        chosen resources via the distributed binder (shipping the IR,
        instrumenting, compiling at each — possibly heterogeneous —
        target), then execute the schedule on the grid.

        Returns a process-event whose value is a :class:`WorkflowRun`.
        """
        scheduler = GradsWorkflowScheduler(self.gis, self.nws)
        executor = WorkflowExecutor(self.sim, self.grid.topology, self.gis)

        def pipeline():
            result = scheduler.schedule(workflow, data_sources=data_sources)
            hosts = sorted({p.resource
                            for p in result.best.placements.values()})
            cop = ConfigurableObjectProgram(
                name=workflow.name,
                body_factory=lambda *_a: None,
                mapper=FastestSubsetMapper(),
                model=AnalyticComponentModel(
                    mflop_fn=lambda _n: workflow.total_mflop()),
                package=CompilationPackage(
                    required_packages=tuple(required_packages)),
                n_procs=len(hosts),
                is_mpi=False,
            )
            bind_report = yield self.binder.bind(cop, hosts)
            trace = yield executor.execute(workflow, result.best)
            return WorkflowRun(scheduling=result, bind=bind_report,
                               trace=trace)

        return self.sim.process(pipeline(), name=f"wfrun:{workflow.name}")
