"""GrADS application manager (Figure 1 right-hand side)."""

from .manager import DEFAULT_PACKAGES, GradsEnvironment, WorkflowRun

__all__ = ["DEFAULT_PACKAGES", "GradsEnvironment", "WorkflowRun"]
