"""NWS-style time-series forecasting.

The Network Weather Service keeps a battery of simple predictors per
measurement series, scores each one by its historical error on that
very series, and answers queries with the prediction of the currently
best-scoring method (Wolski et al., FGCS 1999).  We implement that
design: last-value, running mean, sliding-window means/medians,
exponential smoothing at several gains, and an adaptive selector over
all of them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AutoRegressive",
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SlidingWindowMean",
    "SlidingWindowMedian",
    "ExponentialSmoothing",
    "AdaptiveForecaster",
    "default_battery",
]


class Forecaster:
    """Online one-step-ahead predictor for a scalar series."""

    name = "base"

    def update(self, value: float) -> None:
        """Feed one new measurement."""
        raise NotImplementedError

    def predict(self) -> Optional[float]:
        """Forecast of the next value, or None before any data."""
        raise NotImplementedError


class LastValue(Forecaster):
    """Predict the most recent measurement (a martingale model)."""

    name = "last"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def predict(self) -> Optional[float]:
        return self._last


class RunningMean(Forecaster):
    """Predict the mean of the entire history."""

    name = "mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._n = 0

    def update(self, value: float) -> None:
        self._sum += value
        self._n += 1

    def predict(self) -> Optional[float]:
        return self._sum / self._n if self._n else None


class SlidingWindowMean(Forecaster):
    """Predict the mean over the last ``window`` measurements."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.name = f"win_mean_{window}"
        self._buf: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(value)

    def predict(self) -> Optional[float]:
        if not self._buf:
            return None
        return sum(self._buf) / len(self._buf)


class SlidingWindowMedian(Forecaster):
    """Predict the median over the last ``window`` measurements.

    Medians resist the load spikes that make means lie; NWS includes
    them for exactly that reason.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.name = f"win_median_{window}"
        self._buf: Deque[float] = deque(maxlen=window)
        self._cached: Optional[float] = None
        self._dirty = True

    def update(self, value: float) -> None:
        self._buf.append(value)
        self._dirty = True

    def predict(self) -> Optional[float]:
        # The median only changes when the buffer does; callers (the
        # adaptive selector, admission control) ask far more often.
        if self._dirty:
            self._cached = (float(np.median(list(self._buf)))
                            if self._buf else None)
            self._dirty = False
        return self._cached


class ExponentialSmoothing(Forecaster):
    """Predict with s <- gain*x + (1-gain)*s."""

    def __init__(self, gain: float) -> None:
        if not 0.0 < gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        self.gain = gain
        self.name = f"exp_{gain:g}"
        self._state: Optional[float] = None

    def update(self, value: float) -> None:
        if self._state is None:
            self._state = value
        else:
            self._state = self.gain * value + (1.0 - self.gain) * self._state

    def predict(self) -> Optional[float]:
        return self._state


class AutoRegressive(Forecaster):
    """Sliding-window AR(p) predictor, refitted on every update.

    NWS ships autoregressive members in its battery; they win on series
    with short-range correlation structure (oscillating load).  The
    least-squares fit runs over the last ``window`` samples; before the
    window fills, the prediction falls back to the last value.
    """

    def __init__(self, order: int = 2, window: int = 30) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if window < 2 * order + 2:
            raise ValueError("window too small to fit the requested order")
        self.order = order
        self.window = window
        self.name = f"ar_{order}"
        self._buf: Deque[float] = deque(maxlen=window)
        self._cached: Optional[float] = None
        self._dirty = True

    def update(self, value: float) -> None:
        self._buf.append(value)
        self._dirty = True

    def predict(self) -> Optional[float]:
        # One least-squares fit per *measurement*, not per query: the
        # fit is a pure function of the buffer, so it is cached until
        # the next update.
        if self._dirty:
            self._cached = self._fit_predict()
            self._dirty = False
        return self._cached

    def _fit_predict(self) -> Optional[float]:
        n = len(self._buf)
        if n == 0:
            return None
        if n < 2 * self.order + 2:
            return self._buf[-1]
        series = np.asarray(self._buf, dtype=float)
        p = self.order
        # rows: series[t-p:t] -> series[t]
        rows = np.stack([series[i:i + p] for i in range(n - p)])
        targets = series[p:]
        design = np.hstack([rows, np.ones((len(rows), 1))])
        coef, *_ = np.linalg.lstsq(design, targets, rcond=None)
        recent = np.append(series[-p:], 1.0)
        raw = float(recent @ coef)
        # Clamp into the observed window: AR lines extrapolate, but a
        # resource measurement cannot leave the range its neighbours
        # span (and real NWS clamps CPU availability the same way).
        return float(min(max(raw, series.min()), series.max()))


def default_battery() -> List[Forecaster]:
    """The predictor set used for every series unless overridden."""
    return [
        LastValue(),
        RunningMean(),
        SlidingWindowMean(5),
        SlidingWindowMean(20),
        SlidingWindowMedian(5),
        SlidingWindowMedian(20),
        ExponentialSmoothing(0.1),
        ExponentialSmoothing(0.3),
        ExponentialSmoothing(0.75),
        AutoRegressive(order=1),
        AutoRegressive(order=2),
    ]


class AdaptiveForecaster(Forecaster):
    """NWS's postcast selector: track each method's mean absolute error
    against the measurements that actually arrived, answer with the
    lowest-error method's prediction."""

    name = "adaptive"

    def __init__(self, battery: Optional[Sequence[Forecaster]] = None) -> None:
        self.battery: List[Forecaster] = (
            list(battery) if battery is not None else default_battery())
        if not self.battery:
            raise ValueError("battery must not be empty")
        self._abs_err: Dict[str, float] = {f.name: 0.0 for f in self.battery}
        self._n_scored = 0
        self._history: List[float] = []
        #: (best method, its prediction); None until asked, dropped on
        #: every update — the selection is a pure function of the series
        self._choice: Optional[Tuple[Optional[Forecaster],
                                     Optional[float]]] = None

    def update(self, value: float) -> None:
        # Score yesterday's predictions against today's truth (postcast),
        # then let every method absorb the new measurement.  Each
        # member's prediction is read once and reused for both the
        # scoring pass and the scored-round check.
        preds = [method.predict() for method in self.battery]
        for method, pred in zip(self.battery, preds):
            if pred is not None:
                self._abs_err[method.name] += abs(pred - value)
        if any(pred is not None for pred in preds):
            self._n_scored += 1
        for method in self.battery:
            method.update(value)
        self._history.append(value)
        self._choice = None

    def _select(self) -> Tuple[Optional[Forecaster], Optional[float]]:
        if self._choice is None:
            candidates = [m for m in self.battery
                          if m.predict() is not None]
            if not candidates:
                self._choice = (None, None)
            else:
                best = min(candidates,
                           key=lambda m: self._abs_err[m.name])
                self._choice = (best, best.predict())
        return self._choice

    def predict(self) -> Optional[float]:
        return self._select()[1]

    def best_method(self) -> Optional[Forecaster]:
        """The battery member with the lowest cumulative error so far."""
        return self._select()[0]

    def errors(self) -> Dict[str, float]:
        """Mean absolute error per method over the scored history."""
        n = max(self._n_scored, 1)
        return {name: err / n for name, err in self._abs_err.items()}

    @property
    def n_samples(self) -> int:
        return len(self._history)

    def history(self) -> List[float]:
        return list(self._history)
