"""NWS sensors: periodic measurement processes.

Real NWS runs sensor daemons that periodically measure CPU availability
on each host and probe bandwidth/latency between host pairs with small
transfers.  We do the same inside the simulation: CPU sensors sample the
host's processor-sharing state (with optional measurement noise);
network sensors issue genuine probe transfers through the topology, so
they observe — and very slightly cause — contention, exactly like the
real tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..microgrid.host import Host
from ..microgrid.network import Topology
from ..sim.kernel import Simulator

__all__ = ["Measurement", "CpuSensor", "NetworkSensor"]


@dataclass(frozen=True)
class Measurement:
    """One timestamped sensor reading."""

    time: float
    value: float


class CpuSensor:
    """Periodically samples the CPU availability of one host."""

    def __init__(self, sim: Simulator, host: Host, period: float = 10.0,
                 noise_std: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if period <= 0:
            raise ValueError("sensor period must be positive")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if noise_std > 0 and rng is None:
            raise ValueError("noisy sensors need an rng")
        self.sim = sim
        self.host = host
        self.period = period
        self.noise_std = noise_std
        self.rng = rng
        self.readings: List[Measurement] = []
        self._listeners: list = []
        sim.process(self._run(), name=f"cpusensor:{host.name}")

    def on_reading(self, callback) -> None:
        """Register ``callback(measurement)`` for each new reading."""
        self._listeners.append(callback)

    def measure_once(self) -> Measurement:
        """Take an immediate reading outside the periodic schedule."""
        value = self.host.availability()
        if self.noise_std > 0:
            value += float(self.rng.normal(0.0, self.noise_std))
        value = min(max(value, 0.0), 1.0)
        reading = Measurement(self.sim.now, value)
        self.readings.append(reading)
        for listener in self._listeners:
            listener(reading)
        return reading

    def _run(self):
        while True:
            yield self.sim.timeout(self.period)
            self.measure_once()

    def latest(self) -> Optional[Measurement]:
        return self.readings[-1] if self.readings else None


class NetworkSensor:
    """Probes achievable bandwidth and latency between two endpoints.

    Each probe pushes ``probe_bytes`` through the real flow simulation
    and derives bandwidth from the measured time minus the path latency
    — the same experiment NWS's 64 KB TCP probes run.
    """

    def __init__(self, sim: Simulator, topology: Topology, src: str, dst: str,
                 period: float = 30.0, probe_bytes: float = 64 * 1024) -> None:
        if period <= 0:
            raise ValueError("sensor period must be positive")
        if probe_bytes <= 0:
            raise ValueError("probe size must be positive")
        self.sim = sim
        self.topology = topology
        self.src = src
        self.dst = dst
        self.period = period
        self.probe_bytes = probe_bytes
        self.bandwidth_readings: List[Measurement] = []
        self.latency_readings: List[Measurement] = []
        self._listeners: list = []
        sim.process(self._run(), name=f"netsensor:{src}->{dst}")

    def on_reading(self, callback) -> None:
        """Register ``callback(kind, measurement)``; kind is 'bandwidth'
        or 'latency'."""
        self._listeners.append(callback)

    def _run(self):
        while True:
            yield self.sim.timeout(self.period)
            latency = self.topology.path_latency(self.src, self.dst)
            elapsed = yield self.topology.transfer(
                self.src, self.dst, self.probe_bytes, tag="nws-probe")
            stream_time = max(elapsed - latency, 1e-9)
            bandwidth = self.probe_bytes / stream_time
            now = self.sim.now
            bw_reading = Measurement(now, bandwidth)
            lat_reading = Measurement(now, latency)
            self.bandwidth_readings.append(bw_reading)
            self.latency_readings.append(lat_reading)
            for listener in self._listeners:
                listener("bandwidth", bw_reading)
                listener("latency", lat_reading)

    def latest_bandwidth(self) -> Optional[Measurement]:
        return self.bandwidth_readings[-1] if self.bandwidth_readings else None

    def latest_latency(self) -> Optional[Measurement]:
        return self.latency_readings[-1] if self.latency_readings else None
