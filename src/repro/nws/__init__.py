"""Network Weather Service: sensors + adaptive forecasting."""

from .forecasting import (
    AdaptiveForecaster,
    AutoRegressive,
    ExponentialSmoothing,
    Forecaster,
    LastValue,
    RunningMean,
    SlidingWindowMean,
    SlidingWindowMedian,
    default_battery,
)
from .sensors import CpuSensor, Measurement, NetworkSensor
from .service import NetworkWeatherService

__all__ = [
    "AdaptiveForecaster",
    "AutoRegressive",
    "CpuSensor",
    "ExponentialSmoothing",
    "Forecaster",
    "LastValue",
    "Measurement",
    "NetworkSensor",
    "NetworkWeatherService",
    "RunningMean",
    "SlidingWindowMean",
    "SlidingWindowMedian",
    "default_battery",
]
