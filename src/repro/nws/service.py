"""The Network Weather Service facade.

Ties sensors to adaptive forecasters and answers the two questions the
GrADS scheduler and rescheduler ask (§3.1, §4.1.1): "what CPU fraction
will this host give me?" and "what bandwidth/latency will I see between
these endpoints?".

Deploying per-host-pair bandwidth sensors across a whole grid would be
quadratic, so — like the real NWS with its cliques — the service probes
between *sites* (one representative pair per cluster pair) and answers
host-pair queries from the covering site-pair series.  Before any
measurement exists the service falls back to a static estimate from the
topology description, which corresponds to NWS answering from its
configuration baseline.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..microgrid.dml import Grid
from ..microgrid.host import Host
from ..microgrid.network import Topology
from ..sim.kernel import Simulator
from .forecasting import AdaptiveForecaster
from .sensors import CpuSensor, NetworkSensor

__all__ = ["NetworkWeatherService"]


class NetworkWeatherService:
    """CPU and network forecasts over a grid."""

    def __init__(self, sim: Simulator, grid: Grid,
                 cpu_period: float = 10.0, net_period: float = 30.0,
                 deploy_network_sensors: bool = True) -> None:
        self.sim = sim
        self.grid = grid
        self.topology: Topology = grid.topology
        self._cpu_sensors: Dict[str, CpuSensor] = {}
        self._cpu_forecasts: Dict[str, AdaptiveForecaster] = {}
        self._net_sensors: Dict[Tuple[str, str], NetworkSensor] = {}
        self._bw_forecasts: Dict[Tuple[str, str], AdaptiveForecaster] = {}
        self._site_rep: Dict[str, str] = {}

        for host in grid.all_hosts():
            sensor = CpuSensor(sim, host, period=cpu_period)
            forecast = AdaptiveForecaster()
            sensor.on_reading(lambda m, f=forecast: f.update(m.value))
            self._cpu_sensors[host.name] = sensor
            self._cpu_forecasts[host.name] = forecast
            site = self._site_of(host)
            self._site_rep.setdefault(site, host.name)

        if deploy_network_sensors:
            self._deploy_site_sensors(net_period)

    # -- deployment ------------------------------------------------------------
    def _site_of(self, host: Host) -> str:
        return host.cluster.site if host.cluster is not None else host.name

    def _deploy_site_sensors(self, period: float) -> None:
        sites = sorted(self._site_rep)
        for i, a in enumerate(sites):
            for b in sites[i + 1:]:
                for src_site, dst_site in ((a, b), (b, a)):
                    key = (src_site, dst_site)
                    sensor = NetworkSensor(
                        self.sim, self.topology,
                        self._site_rep[src_site], self._site_rep[dst_site],
                        period=period)
                    forecast = AdaptiveForecaster()
                    sensor.on_reading(
                        lambda kind, m, f=forecast:
                        f.update(m.value) if kind == "bandwidth" else None)
                    self._net_sensors[key] = sensor
                    self._bw_forecasts[key] = forecast

    # -- forecasts ---------------------------------------------------------------
    def cpu_forecast(self, host_name: str) -> float:
        """Predicted CPU availability fraction for a host."""
        forecast = self._cpu_forecasts.get(host_name)
        if forecast is not None:
            value = forecast.predict()
            if value is not None:
                return value
        # No data yet: read the ground truth once, like an on-demand probe.
        sensor = self._cpu_sensors.get(host_name)
        if sensor is not None:
            reading = sensor.measure_once()
            return reading.value
        return self.topology.host(host_name).availability()

    def bandwidth_forecast(self, src: str, dst: str) -> float:
        """Predicted achievable bandwidth (bytes/s) between two hosts."""
        if src == dst:
            return self.topology.local_copy_bw
        key = self._site_key(src, dst)
        forecast = self._bw_forecasts.get(key)
        if forecast is not None:
            value = forecast.predict()
            if value is not None:
                return value
        return self.topology.path_bottleneck_bw(src, dst)

    def latency_forecast(self, src: str, dst: str) -> float:
        """Predicted one-way latency (s) between two hosts.

        Latency on these paths is static, so the topology value is the
        forecast (real NWS latency series are similarly flat).
        """
        return self.topology.path_latency(src, dst)

    def transfer_params(self, src: str, dst: str) -> Tuple[float, float]:
        """(latency seconds, bandwidth bytes/s) between two hosts.

        ``transfer_forecast`` decomposed for callers that memoise:
        forecasts only move when sensor readings arrive, so while a
        scheduler is deliberating (no simulated time passes) the pair is
        frozen and a transfer time for any volume reconstitutes as
        ``latency + nbytes / bandwidth``.  The fast workflow scheduler
        caches these pairs per (src, dst) for exactly that reason.
        """
        return self.latency_forecast(src, dst), self.bandwidth_forecast(src,
                                                                        dst)

    def transfer_forecast(self, src: str, dst: str, nbytes: float) -> float:
        """Predicted seconds to move ``nbytes`` from src to dst."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        latency, bw = self.transfer_params(src, dst)
        return latency + nbytes / bw

    # -- plumbing for tests/benchmarks ------------------------------------------
    def _site_key(self, src: str, dst: str) -> Tuple[str, str]:
        src_site = self._site_of(self.topology.host(src))
        dst_site = self._site_of(self.topology.host(dst))
        return (src_site, dst_site)

    def cpu_sensor(self, host_name: str) -> CpuSensor:
        return self._cpu_sensors[host_name]

    def cpu_forecaster(self, host_name: str) -> AdaptiveForecaster:
        return self._cpu_forecasts[host_name]
