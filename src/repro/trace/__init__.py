"""repro.trace — structured tracing, export, analysis and diffing.

The observability layer for the reproduction: a :class:`Tracer`
collects sim-time-stamped :class:`Instant` and :class:`Span` records
from hooks wired through the kernel, the network substrate, the
scheduler, the contract monitor and the rescheduling machinery.
Records export to Chrome trace-event JSON (loadable in Perfetto /
``chrome://tracing``) or line-delimited JSONL, feed the analyses in
:mod:`repro.trace.analysis`, and — because a seeded run is fully
deterministic — double as a correctness tool: two same-seed runs must
produce byte-identical traces, which :mod:`repro.trace.diff` checks.
"""

from .analysis import (
    critical_path,
    host_utilization,
    summarize,
    violation_timeline,
)
from .diff import (
    Divergence,
    diff_files,
    first_divergence,
    format_divergence,
    load_trace_file,
)
from .export import (
    chrome_trace,
    normalize_records,
    read_jsonl,
    records_as_dicts,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from .tracer import CATEGORIES, Instant, Span, Tracer

__all__ = [
    "CATEGORIES",
    "Divergence",
    "Instant",
    "Span",
    "Tracer",
    "chrome_trace",
    "critical_path",
    "diff_files",
    "first_divergence",
    "format_divergence",
    "host_utilization",
    "load_trace_file",
    "normalize_records",
    "read_jsonl",
    "records_as_dicts",
    "summarize",
    "validate_chrome",
    "violation_timeline",
    "write_chrome",
    "write_jsonl",
]
