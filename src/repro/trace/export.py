"""Trace exporters: Chrome trace-event JSON and line-delimited JSONL.

The Chrome form loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``; the JSONL form is the streaming/diff-friendly
representation (one record per line, keys sorted).  Both are rendered
with sorted keys and fixed separators so a deterministic run produces a
byte-identical file — that property is what ``repro trace diff`` and
the CI determinism job lean on.

Timestamps: records carry simulated *seconds*; Chrome trace events use
microseconds, so export multiplies by 1e6.  Each ``run`` index (one per
simulator a tracer was bound to) becomes a Chrome ``pid`` and each
category a ``tid``, keeping sequential experiment runs on separate
tracks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from .tracer import CATEGORIES, Span, Tracer

__all__ = ["chrome_trace", "validate_chrome", "write_chrome",
           "write_jsonl", "read_jsonl", "records_as_dicts",
           "normalize_records"]

#: stable category -> Chrome tid assignment (1-based, CATEGORIES order)
_TID = {cat: i + 1 for i, cat in enumerate(CATEGORIES)}

_PHASES = frozenset("XiBEMCbens")  # phases we accept when validating


def _records_of(trace: Union[Tracer, Iterable[Any]]) -> List[Any]:
    return trace.records if isinstance(trace, Tracer) else list(trace)


def records_as_dicts(trace: Union[Tracer, Iterable[Any]]
                     ) -> List[Dict[str, Any]]:
    """Records as plain JSONL-shaped dicts (the diff/analysis currency)."""
    out = []
    for record in _records_of(trace):
        entry: Dict[str, Any] = {
            "ts": record.ts,
            "cat": record.cat,
            "name": record.name,
            "run": record.run,
            "args": record.args or {},
        }
        if isinstance(record, Span):
            entry["dur"] = record.dur
        out.append(entry)
    return out


def normalize_records(trace: Union[Tracer, Iterable[Any]]
                      ) -> List[Dict[str, Any]]:
    """Accept a Tracer, record objects, or record dicts; return dicts."""
    if isinstance(trace, Tracer):
        return records_as_dicts(trace)
    records = list(trace)
    if records and not isinstance(records[0], dict):
        return records_as_dicts(records)
    return records


def chrome_trace(trace: Union[Tracer, Iterable[Any]]) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for a tracer's records."""
    events: List[Dict[str, Any]] = []
    runs = set()
    for record in _records_of(trace):
        runs.add(record.run)
        event: Dict[str, Any] = {
            "name": record.name,
            "cat": record.cat,
            "ts": record.ts * 1e6,
            "pid": record.run,
            "tid": _TID.get(record.cat, len(_TID) + 1),
        }
        if record.args:
            event["args"] = record.args
        if isinstance(record, Span):
            event["ph"] = "X"
            event["dur"] = record.dur * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    # Name the per-category tracks so Perfetto shows readable lanes.
    for run in sorted(runs):
        for cat, tid in _TID.items():
            events.append({"name": "thread_name", "ph": "M", "pid": run,
                           "tid": tid, "args": {"name": cat}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome(obj: Any) -> List[str]:
    """Check an object against the Chrome trace-event schema.

    Returns a list of problems (empty = valid).  This is the validation
    the CI trace-smoke job runs; it covers the subset of the spec the
    exporter uses plus the structural rules every consumer relies on.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric ts")
            if not isinstance(event.get("cat"), str):
                problems.append(f"{where}: missing cat")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def write_chrome(trace: Union[Tracer, Iterable[Any]], path: str) -> None:
    """Write Chrome trace-event JSON (deterministic byte layout)."""
    payload = chrome_trace(trace)
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")


def write_jsonl(trace: Union[Tracer, Iterable[Any]], path: str) -> None:
    """Write one sorted-key JSON object per record."""
    with open(path, "w") as handle:
        for entry in records_as_dicts(trace):
            handle.write(json.dumps(entry, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into record dicts."""
    out = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
