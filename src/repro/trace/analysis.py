"""Post-hoc analyses over trace records.

Three questions a GrADS timeline answers, computed straight from the
records (no live simulator needed, so they also run on traces loaded
back from disk):

* :func:`host_utilization` — how busy each resource was, from spans
  that carry a ``host`` arg (the scheduler's task-commit spans do);
* :func:`violation_timeline` — when the contract monitor fired and how
  badly, from the ``contract`` category;
* :func:`critical_path` — the heaviest chain of non-overlapping spans,
  the trace-level analogue of a workflow's critical path: each link
  starts at or after the previous one ended, and the chain maximises
  total span duration.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

from .export import normalize_records
from .tracer import Tracer

__all__ = ["host_utilization", "violation_timeline", "critical_path",
           "summarize"]

_EPS = 1e-12

TraceLike = Union[Tracer, Iterable[Any]]


def _spans(records: List[Dict[str, Any]],
           category: Optional[str] = None) -> List[Dict[str, Any]]:
    return [r for r in records if "dur" in r
            and (category is None or r["cat"] == category)]


def host_utilization(trace: TraceLike, category: Optional[str] = None,
                     horizon: Optional[float] = None
                     ) -> Dict[str, Dict[str, float]]:
    """Busy seconds and utilization fraction per host.

    Considers spans whose ``args`` include a ``host`` key (optionally
    restricted to one category).  ``horizon`` defaults to the overall
    extent of those spans; utilization is busy/horizon.
    """
    records = normalize_records(trace)
    busy: Dict[str, float] = {}
    t_min, t_max = float("inf"), float("-inf")
    for span in _spans(records, category):
        host = (span.get("args") or {}).get("host")
        if host is None:
            continue
        busy[host] = busy.get(host, 0.0) + span["dur"]
        t_min = min(t_min, span["ts"])
        t_max = max(t_max, span["ts"] + span["dur"])
    if not busy:
        return {}
    extent = horizon if horizon is not None else (t_max - t_min)
    out = {}
    for host in sorted(busy):
        seconds = busy[host]
        out[host] = {
            "busy_seconds": seconds,
            "utilization": seconds / extent if extent > 0 else 1.0,
        }
    return out


def violation_timeline(trace: TraceLike) -> List[Dict[str, Any]]:
    """Contract violations in time order: ts, kind, ratio, average."""
    records = normalize_records(trace)
    out = []
    for record in records:
        if record["cat"] == "contract" and record["name"] == "violation":
            args = record.get("args") or {}
            out.append({
                "ts": record["ts"],
                "kind": args.get("kind"),
                "ratio": args.get("ratio"),
                "average_ratio": args.get("average_ratio"),
                "run": record.get("run", 0),
            })
    return out


def critical_path(trace: TraceLike, category: Optional[str] = "scheduler"
                  ) -> List[Dict[str, Any]]:
    """The duration-maximising chain of non-overlapping spans.

    Spans are chainable when one starts at or after the other ends
    (within float tolerance).  Dynamic programming over spans sorted by
    end time finds the chain with the largest total duration — for
    scheduler task spans this is the critical path of the scheduled
    workflow (the sequence of placements that determines the makespan).
    """
    records = normalize_records(trace)
    spans = sorted(_spans(records, category),
                   key=lambda s: (s["ts"] + s["dur"], s["ts"], s["name"]))
    n = len(spans)
    if n == 0:
        return []
    best = [0.0] * n     # best chain weight ending at span i
    parent = [-1] * n
    for i, span in enumerate(spans):
        best[i] = span["dur"]
        for j in range(i):
            prev = spans[j]
            if prev["ts"] + prev["dur"] <= span["ts"] + _EPS:
                weight = best[j] + span["dur"]
                if weight > best[i]:
                    best[i] = weight
                    parent[i] = j
    tail = max(range(n), key=lambda i: (best[i], -spans[i]["ts"]))
    chain: List[Dict[str, Any]] = []
    while tail != -1:
        chain.append(spans[tail])
        tail = parent[tail]
    chain.reverse()
    return chain


def summarize(trace: TraceLike) -> str:
    """A text digest of a trace (the ``repro trace summary`` output)."""
    records = normalize_records(trace)
    lines: List[str] = []
    by_cat: Dict[str, int] = {}
    for record in records:
        by_cat[record["cat"]] = by_cat.get(record["cat"], 0) + 1
    lines.append(f"records: {len(records)}")
    for cat in sorted(by_cat):
        lines.append(f"  {cat:<10} : {by_cat[cat]}")
    violations = violation_timeline(records)
    lines.append(f"contract violations: {len(violations)}")
    for v in violations[:10]:
        lines.append(f"  t={v['ts']:.1f}s {v['kind']} "
                     f"ratio={v['ratio']:.3f} avg={v['average_ratio']:.3f}")
    if len(violations) > 10:
        lines.append(f"  ... {len(violations) - 10} more")
    utilization = host_utilization(records)
    if utilization:
        lines.append("host utilization (from spans with a host arg):")
        for host, stats in utilization.items():
            lines.append(f"  {host:<12} busy={stats['busy_seconds']:.1f}s "
                         f"({stats['utilization']:.1%})")
    chain = critical_path(records)
    if chain:
        total = sum(s["dur"] for s in chain)
        lines.append(f"critical path: {len(chain)} spans, {total:.1f}s")
        for span in chain[:10]:
            lines.append(f"  {span['name']} @ t={span['ts']:.1f}s "
                         f"+{span['dur']:.1f}s")
        if len(chain) > 10:
            lines.append(f"  ... {len(chain) - 10} more")
    return "\n".join(lines)
