"""The tracer: sim-time-stamped records with a near-zero disabled path.

Design constraints, in priority order:

1. **Free when absent.**  Instrumentation sites guard on
   ``sim.trace is not None`` (the kernel run loop hoists that check to
   a local boolean outside its hot loop), so an untraced run pays one
   attribute load per hook site and nothing per kernel event.
2. **Cheap when filtered.**  A bound tracer exposes ``active``, a
   frozenset of enabled categories; a hook for a disabled category
   costs one set-membership test and allocates nothing.
3. **Bounded.**  Records land in a ring buffer (``capacity`` entries);
   the oldest records are dropped first and ``dropped`` counts them, so
   a long run can never exhaust memory.
4. **Deterministic.**  Records carry only simulation-derived data
   (virtual timestamps, names, numeric args) — never wall-clock time or
   object ids — so two same-seed runs produce identical traces.

A tracer binds to one :class:`~repro.sim.kernel.Simulator` at a time
via :meth:`Tracer.bind`; rebinding (as the fig3 sweep does, one fresh
simulator per bar) bumps the record ``run`` index so multi-run traces
keep their timelines apart when exported.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["CATEGORIES", "Instant", "Span", "Tracer"]

#: every category the built-in instrumentation emits
CATEGORIES: Tuple[str, ...] = (
    "kernel",      # event dispatch in the simulator run loop
    "network",     # flow add/drop, reallocation epochs, stale wakeups
    "scheduler",   # per-heuristic decision spans and task commits
    "contract",    # ratio samples, violations, migration requests
    "reschedule",  # SRS checkpoint/restart, swaps, rescheduler decisions
    "fault",       # failure injections and every recovery decision
    "metasched",   # submission-service lifecycle (queue/reserve/start/...)
    "meta",        # run markers written by the experiment drivers
)


class Instant:
    """A point event at one simulated time."""

    __slots__ = ("ts", "cat", "name", "args", "run")

    def __init__(self, ts: float, cat: str, name: str,
                 args: Optional[Dict[str, Any]] = None, run: int = 0) -> None:
        self.ts = ts
        self.cat = cat
        self.name = name
        self.args = args
        self.run = run

    def key(self) -> tuple:
        """Comparable identity (used by the determinism diff)."""
        return (self.run, self.ts, 0.0, self.cat, self.name,
                tuple(sorted((self.args or {}).items())))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instant {self.cat}:{self.name} @ {self.ts:.6f}>"


class Span:
    """An interval ``[ts, ts + dur]`` of simulated time."""

    __slots__ = ("ts", "dur", "cat", "name", "args", "run")

    def __init__(self, ts: float, dur: float, cat: str, name: str,
                 args: Optional[Dict[str, Any]] = None, run: int = 0) -> None:
        self.ts = ts
        self.dur = dur
        self.cat = cat
        self.name = name
        self.args = args
        self.run = run

    def key(self) -> tuple:
        return (self.run, self.ts, self.dur, self.cat, self.name,
                tuple(sorted((self.args or {}).items())))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.cat}:{self.name} @ {self.ts:.6f} "
                f"+{self.dur:.6f}>")


class Tracer:
    """Collects trace records from one (or a sequence of) simulators."""

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: int = 1_000_000, enabled: bool = True) -> None:
        """``categories=None`` enables everything in :data:`CATEGORIES`;
        ``enabled=False`` builds a tracer whose ``active`` set is empty,
        which is how the overhead benchmark measures the disabled path
        with the hooks still attached."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if categories is not None:
            unknown = set(categories) - set(CATEGORIES)
            if unknown:
                raise ValueError(f"unknown trace categories {sorted(unknown)}; "
                                 f"have {list(CATEGORIES)}")
        self.enabled = bool(enabled)
        self.active: FrozenSet[str] = (
            frozenset(CATEGORIES if categories is None else categories)
            if enabled else frozenset())
        self.capacity = capacity
        self.dropped = 0
        self.run = 0
        self._records: deque = deque(maxlen=capacity)
        self._sim = None  # bound Simulator, if any

    # -- binding -----------------------------------------------------------
    def bind(self, sim) -> "Tracer":
        """Attach to a simulator (``sim.trace = self``); returns self.

        Rebinding to a fresh simulator starts a new ``run`` index so the
        timelines of sequential runs stay distinct in exports.
        """
        if self._sim is not None and self._sim is not sim:
            self.run += 1
        self._sim = sim
        sim.trace = self
        return self

    @property
    def now(self) -> float:
        """Current simulated time of the bound simulator."""
        if self._sim is None:
            raise RuntimeError("tracer is not bound to a simulator")
        return self._sim.now

    # -- recording ---------------------------------------------------------
    def _append(self, record) -> None:
        buf = self._records
        if len(buf) == self.capacity:
            self.dropped += 1
        buf.append(record)

    def instant(self, cat: str, name: str, **args: Any) -> None:
        """Record a point event at the current simulated time."""
        if cat in self.active:
            self._append(Instant(self.now, cat, name, args or None, self.run))

    def complete(self, cat: str, name: str, ts: float, dur: float,
                 **args: Any) -> None:
        """Record a span with explicit begin time and duration.

        This is the span form generator-based sim code uses: capture
        ``t0 = sim.now``, let simulated time pass across yields, then
        record ``complete(..., ts=t0, dur=sim.now - t0)``.
        """
        if cat in self.active:
            self._append(Span(ts, dur, cat, name, args or None, self.run))

    def kernel_event(self, ts: float, event) -> None:
        """Fast-path instant for the kernel dispatch loop (no kwargs)."""
        self._append(Instant(ts, "kernel",
                             event.name or type(event).__name__,
                             None, self.run))

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[Any]:
        """Records in arrival order (oldest surviving first)."""
        return list(self._records)

    def select(self, cat: str) -> List[Any]:
        """Records of one category, in arrival order."""
        return [r for r in self._records if r.cat == cat]

    def clear(self) -> None:
        """Drop all records (the ``dropped`` counter is reset too)."""
        self._records.clear()
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Tracer records={len(self._records)} dropped={self.dropped}"
                f" active={sorted(self.active)}>")
