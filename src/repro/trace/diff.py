"""Determinism checking: diff two traces, pinpoint the first divergence.

A seeded run of the reproduction is fully deterministic, so two
same-seed runs must emit identical record streams.  This module is the
regression tool that enforces it: ``repro trace diff A B`` exits 0 on
identical traces and prints the first divergent record otherwise —
which, because records arrive in execution order, is the first point
where the two runs' behaviour actually forked (everything before it is
known-equal).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from .export import normalize_records, read_jsonl
from .tracer import Tracer

__all__ = ["Divergence", "first_divergence", "diff_files",
           "format_divergence"]


@dataclass(frozen=True)
class Divergence:
    """The first point where two traces disagree.

    ``left``/``right`` are the conflicting record dicts; one of them is
    None when a trace simply ends early (length mismatch).
    """

    index: int
    left: Optional[Dict[str, Any]]
    right: Optional[Dict[str, Any]]

    @property
    def kind(self) -> str:
        if self.left is None or self.right is None:
            return "length"
        return "record"


def _comparable(entry: Dict[str, Any]) -> tuple:
    """A record dict as a canonical comparison key."""
    return (entry.get("run", 0), entry.get("ts"), entry.get("dur", 0.0),
            entry.get("cat"), entry.get("name"),
            tuple(sorted((entry.get("args") or {}).items())))


def first_divergence(a: Union[Tracer, Iterable[Any]],
                     b: Union[Tracer, Iterable[Any]]
                     ) -> Optional[Divergence]:
    """First index where the traces differ, or None when identical."""
    left = normalize_records(a)
    right = normalize_records(b)
    for i, (la, ra) in enumerate(zip(left, right)):
        if _comparable(la) != _comparable(ra):
            return Divergence(index=i, left=la, right=ra)
    if len(left) != len(right):
        i = min(len(left), len(right))
        return Divergence(index=i,
                          left=left[i] if i < len(left) else None,
                          right=right[i] if i < len(right) else None)
    return None


def _chrome_to_records(obj: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Chrome trace-event JSON back into record dicts (metadata dropped)."""
    out = []
    for event in obj.get("traceEvents", []):
        if event.get("ph") == "M":
            continue
        entry: Dict[str, Any] = {
            "ts": event.get("ts", 0.0) / 1e6,
            "cat": event.get("cat"),
            "name": event.get("name"),
            "run": event.get("pid", 0),
            "args": event.get("args") or {},
        }
        if event.get("ph") == "X":
            entry["dur"] = event.get("dur", 0.0) / 1e6
        out.append(entry)
    return out


def load_trace_file(path: str) -> List[Dict[str, Any]]:
    """Load a trace from disk, auto-detecting Chrome JSON vs JSONL.

    Both formats start with ``{``, so sniffing the first byte is not
    enough: a JSONL file's first *line* is a complete record object,
    while a (possibly pretty-printed) Chrome file only parses as a
    whole and carries a ``traceEvents`` key.
    """
    with open(path) as handle:
        first_line = handle.readline()
    try:
        head = json.loads(first_line)
    except json.JSONDecodeError:
        head = None  # multi-line document: must be Chrome JSON
    if isinstance(head, dict) and "traceEvents" not in head:
        return read_jsonl(path)
    with open(path) as handle:
        return _chrome_to_records(json.load(handle))


def diff_files(path_a: str, path_b: str) -> Optional[Divergence]:
    """Diff two trace files (either export format, mixed is fine)."""
    return first_divergence(load_trace_file(path_a), load_trace_file(path_b))


def format_divergence(div: Optional[Divergence],
                      label_a: str = "A", label_b: str = "B") -> str:
    """Human-readable report for the CLI."""
    if div is None:
        return "traces are identical"
    if div.kind == "length":
        present = label_a if div.left is not None else label_b
        record = div.left if div.left is not None else div.right
        return (f"traces diverge at record {div.index}: "
                f"only {present} continues, with "
                f"{record['cat']}:{record['name']} @ t={record['ts']:.6f}")
    def show(entry: Dict[str, Any]) -> str:
        dur = f" dur={entry['dur']:.6f}" if "dur" in entry else ""
        return (f"{entry['cat']}:{entry['name']} @ t={entry['ts']:.6f}"
                f"{dur} args={entry.get('args') or {}}")
    return (f"traces diverge at record {div.index}:\n"
            f"  {label_a}: {show(div.left)}\n"
            f"  {label_b}: {show(div.right)}")
