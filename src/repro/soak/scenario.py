"""Declarative, seed-deterministic soak scenarios.

A :class:`ScenarioSpec` is the *complete* description of one randomized
composite run: a Poisson job stream for the metascheduler, explicit
host-crash windows, background-load bursts, topology churn operations,
an optional process-swapping application, an optional SRS-checkpointed
QR run, and an optional "grid services" lane exercising the
:class:`~repro.sim.resources.Store`/``Semaphore`` primitives under
process kills.  Everything is pre-sampled at build time into plain
JSON-serializable element lists, so

* the same ``(seed, index)`` always produces the same scenario,
* any scenario can be written to disk and replayed byte-identically
  (``repro soak replay``), and
* the shrinker can delete individual elements and re-run.

``markers`` is a synthetic element list with no simulation effect; a
dedicated canary invariant fires when two markers sum to 100, giving
the test suite and CI a known-violation fixture that stays violating
after every real bug is fixed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from ..metasched.jobs import JOB_KINDS
from ..sim.rng import RngRegistry

__all__ = ["ScenarioSpec", "sample_scenario", "SCENARIO_SCHEMA_VERSION",
           "FIG3_HOSTS", "SUBMISSION_HOST"]

#: bump when the scenario JSON layout changes
SCENARIO_SCHEMA_VERSION = 1

#: the Figure 3 testbed's hosts — every scenario runs on that grid
FIG3_HOSTS = tuple([f"utk.n{i}" for i in range(4)]
                   + [f"uiuc.n{i}" for i in range(8)])

#: first host in sorted order — the metascheduler's data staging point;
#: the fault lane leaves it alone so every scenario keeps a front door
SUBMISSION_HOST = min(FIG3_HOSTS)

#: job sizes per kind, deliberately small: a soak sweep runs hundreds
#: of scenarios, so one scenario must stay in the sub-second wall range
_JOB_MIX = (
    ("qr", 0.4, (500.0, 1500.0), (1, 3)),
    ("eman", 0.3, (2000.0, 6000.0), (1, 3)),
    ("nbody", 0.3, (4000.0, 15000.0), (1, 2)),
)

_SWAP_POLICIES = ("greedy", "single", "threshold", "gang")


@dataclass
class ScenarioSpec:
    """One composite soak scenario, fully materialized."""

    index: int
    seed: int
    duration: float
    checkpoint_every: float = 60.0
    #: re-run with the reference planning engine and diff the outcome
    engine_check: bool = False
    #: record a Chrome trace and validate it as an invariant
    trace_check: bool = False
    jobs: List[dict] = field(default_factory=list)
    faults: List[dict] = field(default_factory=list)
    bursts: List[dict] = field(default_factory=list)
    links: List[dict] = field(default_factory=list)
    services: Optional[dict] = None
    swap: Optional[dict] = None
    srs: Optional[dict] = None
    markers: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        for job in self.jobs:
            if job["kind"] not in JOB_KINDS:
                raise ValueError(f"unknown job kind {job['kind']!r}")
            if job["submit_time"] < 0:
                raise ValueError("negative submit time")
        for fault in self.faults:
            if fault["host"] not in FIG3_HOSTS:
                raise ValueError(f"unknown fault host {fault['host']!r}")
            if fault["recover_at"] <= fault["at"]:
                raise ValueError("fault recovery must follow the crash")
        for burst in self.bursts:
            if burst["host"] not in FIG3_HOSTS:
                raise ValueError(f"unknown burst host {burst['host']!r}")
            if burst["until"] <= burst["at"]:
                raise ValueError("burst end must follow its start")
        if self.swap is not None and self.swap["policy"] not in _SWAP_POLICIES:
            raise ValueError(f"unknown swap policy {self.swap['policy']!r}")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        data["schema_version"] = SCENARIO_SCHEMA_VERSION
        return data

    def to_json(self) -> str:
        """Deterministic bytes: equal specs => equal JSON."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(data)
        version = data.pop("schema_version", SCENARIO_SCHEMA_VERSION)
        if version != SCENARIO_SCHEMA_VERSION:
            raise ValueError(f"unsupported scenario schema {version!r}")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown scenario fields: {unknown}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def sample_scenario(seed: int, index: int) -> ScenarioSpec:
    """Draw scenario ``index`` of the sweep keyed by ``seed``.

    Every scenario gets its own named RNG stream, so scenario ``k`` is
    identical whether the sweep runs 10 or 1000 scenarios.
    """
    rng = RngRegistry(seed).stream(f"soak-scenario-{index}")
    duration = float(rng.uniform(240.0, 480.0))

    # -- Poisson job stream over the metascheduler ------------------------
    weights = [w for _k, w, _s, _h in _JOB_MIX]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    jobs: List[dict] = []
    now = 0.0
    arrival_rate = float(rng.uniform(1 / 120.0, 1 / 45.0))
    max_jobs = int(rng.integers(2, 7))
    while len(jobs) < max_jobs:
        now += float(rng.exponential(1.0 / arrival_rate))
        if now > duration * 0.7:
            break
        pick = int(rng.choice(len(_JOB_MIX), p=probabilities))
        kind, _w, (lo_size, hi_size), (lo_hosts, hi_hosts) = _JOB_MIX[pick]
        user = f"u{int(rng.integers(0, 3))}"
        jobs.append({
            "name": f"{user}-j{len(jobs)}", "user": user, "kind": kind,
            "submit_time": round(now, 6),
            "n_hosts": int(rng.integers(lo_hosts, hi_hosts + 1)),
            "size": round(float(rng.uniform(lo_size, hi_size)), 6),
        })

    # -- crash/recover windows (never the submission host) ----------------
    crashable = [h for h in FIG3_HOSTS if h != SUBMISSION_HOST]
    faults: List[dict] = []
    for _ in range(int(rng.integers(0, 4))):
        at = float(rng.uniform(0.1, 0.7) * duration)
        outage = float(rng.uniform(20.0, 120.0))
        faults.append({
            "host": str(rng.choice(crashable)),
            "at": round(at, 6),
            "recover_at": round(at + outage, 6),
        })

    # -- background-load bursts -------------------------------------------
    bursts: List[dict] = []
    for _ in range(int(rng.integers(0, 4))):
        at = float(rng.uniform(0.05, 0.8) * duration)
        bursts.append({
            "host": str(rng.choice(FIG3_HOSTS)),
            "at": round(at, 6),
            "until": round(at + float(rng.uniform(30.0, 150.0)), 6),
            "nprocs": int(rng.integers(1, 4)),
        })

    # -- topology churn ----------------------------------------------------
    links: List[dict] = []
    for k in range(int(rng.integers(0, 3))):
        at = float(rng.uniform(0.1, 0.8) * duration)
        if rng.uniform() < 0.5:
            # re-provision the WAN link (capacity change mid-flight)
            links.append({
                "a": "utk.switch", "b": "uiuc.switch", "via": None,
                "bandwidth": round(float(rng.uniform(2e6, 12e6)), 3),
                "latency": round(float(rng.uniform(0.005, 0.05)), 6),
                "at": round(at, 6),
            })
        else:
            # bring up an alternate WAN path through a new router
            links.append({
                "a": "utk.switch", "b": "uiuc.switch",
                "via": f"soak.rtr{k}",
                "bandwidth": round(float(rng.uniform(2e6, 12e6)), 3),
                "latency": round(float(rng.uniform(0.005, 0.05)), 6),
                "at": round(at, 6),
            })

    # -- grid-services lane (Store/Semaphore under kills) -----------------
    services: Optional[dict] = None
    if rng.uniform() < 0.7:
        producers = int(rng.integers(2, 4))
        consumers = int(rng.integers(2, 4))
        workers = int(rng.integers(2, 5))
        names = ([f"svc-producer-{i}" for i in range(producers)]
                 + [f"svc-consumer-{i}" for i in range(consumers)]
                 + [f"svc-worker-{i}" for i in range(workers)])
        kills = []
        for _ in range(int(rng.integers(0, 4))):
            kills.append({
                "victim": str(rng.choice(names)),
                "at": round(float(rng.uniform(5.0, duration * 0.5)), 6),
            })
        services = {
            "capacity": int(rng.integers(1, 4)),
            "count": int(rng.integers(1, 4)),
            "producers": producers,
            "consumers": consumers,
            "workers": workers,
            "items_per_producer": int(rng.integers(4, 9)),
            "kills": kills,
        }

    # -- process-swapping application -------------------------------------
    swap: Optional[dict] = None
    if rng.uniform() < 0.35:
        # sized so the job outlives several rescheduler periods: the
        # daemon must get real chances to decide, swap, and be stopped
        swap = {
            "n_bodies": int(rng.integers(6000, 12001)),
            "n_iterations": int(rng.integers(30, 81)),
            "policy": str(rng.choice(_SWAP_POLICIES)),
            "period": round(float(rng.uniform(8.0, 15.0)), 6),
            "improvement": round(float(rng.uniform(1.05, 1.3)), 6),
            "stop_at": (round(float(rng.uniform(20.0, 120.0)), 6)
                        if rng.uniform() < 0.5 else None),
        }

    # -- SRS-checkpointed QR run ------------------------------------------
    srs: Optional[dict] = None
    if rng.uniform() < 0.2:
        srs = {
            "n": int(rng.integers(1500, 2501)),
            "checkpoint_every": int(rng.choice([4, 8])),
        }

    return ScenarioSpec(
        index=index, seed=seed, duration=round(duration, 6),
        engine_check=index % 4 == 0,
        trace_check=index % 5 == 0,
        jobs=jobs, faults=faults, bursts=bursts, links=links,
        services=services, swap=swap, srs=srs)
