"""Execute one soak scenario and audit it.

:func:`run_scenario` materializes a :class:`ScenarioSpec` onto the
Figure 3 testbed: the metascheduler serves the sampled job stream
while host crashes, load bursts, topology churn, an optional
swap-rescheduled N-body run, an optional SRS-checkpointed QR run, and
an optional Store/Semaphore client population all happen on the same
simulator.  Checkpoint auditors run between time slices; final
auditors run once every lane has quiesced.

Lane failures are *data*, not crashes: every lane-completion event
gets a defusing callback, so an application legitimately killed by a
fault is recorded in the lane status instead of aborting the run.
Anything that still escapes ``sim.run`` (an exception raised from a
kernel callback, say) is caught by the slice loop and reported through
the ``unhandled-error`` invariant — that is precisely the class of bug
this harness exists to flush out.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..appmanager.manager import GradsEnvironment
from ..apps.nbody import NBodySimulation
from ..apps.qr import QrBenchmark
from ..gis.directory import GridInformationService
from ..metasched import MetaScheduler
from ..metasched.jobs import JobSpec
from ..microgrid.failures import ScheduledFailure
from ..microgrid.loadgen import ScheduledLoad
from ..nws.service import NetworkWeatherService
from ..microgrid.testbed import fig3_testbed
from ..rescheduling.swapping import SwapRescheduler
from ..sim import AnyOf, Interrupt, Semaphore, Simulator, Store
from ..trace.tracer import Tracer
from .invariants import (Violation, run_checkpoint_auditors,
                         run_final_auditors)
from .scenario import SUBMISSION_HOST, ScenarioSpec

__all__ = ["ScenarioOutcome", "SoakContext", "run_scenario",
           "run_with_checks"]

#: extra virtual time past ``spec.duration`` before giving up on quiesce
_DEADLINE_SLACK = 4000.0

#: stop collecting after this many escaped exceptions (a broken
#: callback can re-raise on every subsequent event)
_MAX_CAUGHT_ERRORS = 50

#: meta counters are engine-independent except the ``meta_plan_*`` group
_ENGINE_COUNTER_PREFIX = "meta_plan_"


class LaneWatch:
    """Observes a lane's completion events, defusing failures.

    ``ignore_interrupts`` is for the services lane, whose clients are
    killed *on purpose*: a :class:`~repro.sim.Interrupt` death is part
    of the scenario, any other exception is a harness finding.
    """

    def __init__(self, events, ignore_interrupts: bool = False) -> None:
        self.events = list(events)
        self.failures: List[str] = []
        self._ignore_interrupts = ignore_interrupts
        for ev in self.events:
            ev.add_callback(self._note)

    def _note(self, ev) -> None:
        if not ev.ok:
            ev.defused = True
            if self._ignore_interrupts and isinstance(ev.value, Interrupt):
                return
            self.failures.append(f"{type(ev.value).__name__}: {ev.value}")

    @property
    def complete(self) -> bool:
        return all(ev.triggered for ev in self.events)

    @property
    def status(self) -> str:
        if not self.events:
            return "absent"
        if not self.complete:
            return "unfinished"
        if self.failures:
            return "failed: " + self.failures[0]
        return "ok"


class ServicesLane:
    """A Store/Semaphore client population under scheduled kills.

    Producers put items, consumers get them (with a timeout-and-
    ``cancel_get`` escape so a starved consumer eventually leaves),
    workers cycle acquire/hold/release.  The accounting ledgers are
    incremented from event *callbacks*, not from the resumed process:
    an item accepted (or a unit granted) in the same instant its owner
    is killed is still counted exactly once, so the conservation
    invariant has no same-instant blind spot.

    Client delays use non-round increments so they can never collide
    with the 6-decimal kill grid the scenario sampler draws from.
    """

    def __init__(self, sim: Simulator, cfg: dict) -> None:
        self.sim = sim
        self.store = Store(sim, capacity=cfg["capacity"])
        self.semaphore = Semaphore(sim, cfg["count"])
        self.accepted = 0
        self.consumed = 0
        self.acquired = 0
        self.released = 0
        self.procs: Dict[str, object] = {}
        for i in range(cfg["producers"]):
            name = f"svc-producer-{i}"
            self.procs[name] = sim.process(
                self._producer(i, cfg["items_per_producer"]), name=name)
        for i in range(cfg["consumers"]):
            name = f"svc-consumer-{i}"
            self.procs[name] = sim.process(self._consumer(i), name=name)
        for i in range(cfg["workers"]):
            name = f"svc-worker-{i}"
            self.procs[name] = sim.process(self._worker(i), name=name)
        for kill in cfg["kills"]:
            victim = self.procs.get(kill["victim"])
            if victim is not None:
                sim.call_at(kill["at"],
                            functools.partial(self._kill, victim))

    @staticmethod
    def _kill(proc) -> None:
        if not proc.triggered:
            proc.kill()

    def _count_accept(self, ev) -> None:
        if ev.ok:
            self.accepted += 1

    def _count_get(self, ev) -> None:
        if ev.ok:
            self.consumed += 1

    def _count_acquire(self, ev) -> None:
        if ev.ok:
            self.acquired += 1

    def _producer(self, i: int, n_items: int):
        yield self.sim.timeout(1.0 + 0.3183098861 * i)
        for _k in range(n_items):
            put_ev = self.store.put(("item", i, _k))
            put_ev.add_callback(self._count_accept)
            if not put_ev.triggered:
                patience = self.sim.timeout(60.0)
                yield AnyOf(self.sim, [put_ev, patience])
                if not put_ev.triggered:
                    # Withdraw the queued deposit.  A False return with
                    # a triggered event means acceptance raced the
                    # timeout — the counting callback already saw it.
                    if not self.store.cancel_put(put_ev):
                        if put_ev.triggered:
                            yield self.sim.timeout(
                                2.0 + 0.2718281828 * i)
                            continue
                    return  # store wedged: give up, item never accepted
            yield self.sim.timeout(2.0 + 0.2718281828 * i)

    def _consumer(self, i: int):
        yield self.sim.timeout(1.5 + 0.4142135623 * i)
        misses = 0
        while misses < 3:
            get_ev = self.store.get()
            get_ev.add_callback(self._count_get)
            if not get_ev.triggered:
                patience = self.sim.timeout(30.0)
                yield AnyOf(self.sim, [get_ev, patience])
            if get_ev.triggered:
                misses = 0
                yield self.sim.timeout(3.0 + 0.1414213562 * i)
            elif not self.store.cancel_get(get_ev) and get_ev.triggered:
                # Delivery raced the timeout; the item is ours (and the
                # counting callback already claimed it).
                misses = 0
                yield self.sim.timeout(3.0 + 0.1414213562 * i)
            else:
                misses += 1

    def _worker(self, i: int):
        yield self.sim.timeout(2.0 + 0.5772156649 * i)
        for _round in range(3 + i % 3):
            req = self.semaphore.acquire()
            req.add_callback(self._count_acquire)
            granted = req.triggered
            if not granted:
                patience = self.sim.timeout(90.0)
                yield AnyOf(self.sim, [req, patience])
                granted = req.triggered
                if not granted and not self.semaphore.cancel_wait(req):
                    granted = req.triggered  # grant raced the timeout
            if not granted:
                return  # semaphore wedged (a lost unit shows up in the
                # conservation audit as available < count)
            try:
                yield self.sim.timeout(4.0 + 0.3010299957 * i)
            finally:
                # Balances the ledger even when a kill lands mid-hold.
                self.semaphore.release()
                self.released += 1
            yield self.sim.timeout(2.0 + 0.4342944819 * i)


class SwapLane:
    """An N-body run over an over-provisioned pool with a swap daemon."""

    def __init__(self, sim: Simulator, grid, nws, cfg: dict) -> None:
        self.sim = sim
        # Active set starts on the slow PII-450s with the faster 2-core
        # PIII-933s idle in the inactive set, so every swap scenario
        # produces real swap decisions and cross-site state transfers
        # (not just a daemon that never finds an improvement).
        pool = (grid.clusters["uiuc"].hosts[5:]
                + grid.clusters["utk"].hosts[1:]
                + grid.clusters["uiuc"].hosts[4:5])
        self.app = NBodySimulation(sim, grid.topology, pool, active_n=3,
                                   n_bodies=cfg["n_bodies"],
                                   n_iterations=cfg["n_iterations"])
        self.rescheduler = SwapRescheduler(sim, self.app.job, nws,
                                           policy=cfg["policy"],
                                           period=cfg["period"],
                                           improvement=cfg["improvement"])
        self.rescheduler.start()
        self.stop_at = cfg.get("stop_at")
        self.stopped_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        if self.stop_at is not None:
            sim.call_at(self.stop_at, self._stop)
        self.done = self.app.launch()
        self.done.add_callback(self._finished)

    def _stop(self) -> None:
        if self.stopped_at is None and self.finished_at is None:
            self.stopped_at = self.sim.now
            self.rescheduler.stop()

    def _finished(self, _ev) -> None:
        self.finished_at = self.sim.now
        self.rescheduler.stop()


class SrsLane:
    """A managed SRS-checkpointed QR run on the same grid."""

    def __init__(self, sim: Simulator, grid, cfg: dict) -> None:
        env = GradsEnvironment(sim, grid, submission_host=SUBMISSION_HOST)
        initial = grid.clusters["utk"].host_names()[:3]
        run, monitor, rescheduler = env.managed_qr(
            QrBenchmark(n=cfg["n"], nb=200),
            initial_hosts=initial,
            checkpoint_every=cfg["checkpoint_every"],
            stable_storage=True,
            migration_timeout_seconds=600.0,
            blacklist_seconds=600.0)
        self.run = run
        self.monitor = monitor
        self.rescheduler = rescheduler
        self.done = run.start()


@dataclass
class SoakContext:
    """Everything the invariant auditors may inspect."""

    spec: ScenarioSpec
    sim: Simulator
    grid: object
    topology: object
    service: MetaScheduler
    lanes: Dict[str, LaneWatch]
    services_lane: Optional[ServicesLane] = None
    swap_lane: Optional[SwapLane] = None
    srs_lane: Optional[SrsLane] = None
    tracer: object = None
    errors: List[str] = field(default_factory=list)
    quiesced: bool = False


@dataclass
class ScenarioOutcome:
    """One executed scenario, reduced to engine-independent data."""

    spec: ScenarioSpec
    engine: str
    finished_at: float
    quiesced: bool
    lanes: Dict[str, str]
    violations: List[Violation]
    jobs: List[dict]
    counters: Dict[str, float]

    def report(self) -> dict:
        """Deterministic, engine-independent scenario report."""
        return {
            "index": self.spec.index,
            "seed": self.spec.seed,
            "duration": self.spec.duration,
            "finished_at": round(self.finished_at, 9),
            "quiesced": self.quiesced,
            "lanes": self.lanes,
            "jobs": self.jobs,
            "counters": self.counters,
            "violations": [v.to_dict() for v in self.violations],
        }


def _apply_link(topology, op: dict) -> None:
    """Apply one topology-churn operation (idempotent on replay)."""
    if op["via"]:
        if op["via"] not in topology.graph:
            topology.add_node(op["via"])
        topology.add_link(op["a"], op["via"],
                          bandwidth=op["bandwidth"],
                          latency=op["latency"] / 2.0)
        topology.add_link(op["via"], op["b"],
                          bandwidth=op["bandwidth"],
                          latency=op["latency"] / 2.0)
    else:
        topology.add_link(op["a"], op["b"],
                          bandwidth=op["bandwidth"],
                          latency=op["latency"])


def _job_row(state) -> dict:
    spec = state.spec
    return {
        "name": spec.name, "user": spec.user, "kind": spec.kind,
        "submit_time": spec.submit_time, "n_hosts": spec.n_hosts,
        "size": spec.size, "status": state.status,
        "reject_reason": state.reject_reason, "error": state.error,
        "started_at": state.started_at, "finished_at": state.finished_at,
        "queue_wait": state.queue_wait, "hosts": list(state.hosts),
        "backfilled": state.backfilled,
    }


def _horizon(spec: ScenarioSpec) -> float:
    """Earliest time by which every scheduled disturbance has played
    out — quiescing before this would skip the interesting part."""
    times = [0.0]
    times += [fault["recover_at"] for fault in spec.faults]
    times += [burst["until"] for burst in spec.bursts]
    times += [op["at"] for op in spec.links]
    if spec.services:
        times += [kill["at"] for kill in spec.services["kills"]]
    if spec.swap and spec.swap.get("stop_at") is not None:
        times.append(spec.swap["stop_at"])
    return max(times) + 1.0


def run_scenario(spec: ScenarioSpec, engine: str = "fast",
                 tracer=None) -> ScenarioOutcome:
    """Run one scenario to quiesce (or deadline) and audit it."""
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
    grid = fig3_testbed(sim)
    topology = grid.topology
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, cpu_period=10.0,
                                deploy_network_sensors=False)
    service = MetaScheduler(sim, grid, gis, nws, engine=engine)

    lanes: Dict[str, LaneWatch] = {}
    specs = [JobSpec(name=job["name"], user=job["user"], kind=job["kind"],
                     submit_time=job["submit_time"],
                     n_hosts=job["n_hosts"], size=job["size"])
             for job in spec.jobs]
    lanes["metasched"] = (LaneWatch([service.run_stream(specs)])
                          if specs else LaneWatch([]))

    hosts = {host.name: host for host in grid.all_hosts()}
    for fault in spec.faults:
        ScheduledFailure(host=hosts[fault["host"]], at=fault["at"],
                         recover_at=fault["recover_at"]).install(sim)
    for burst in spec.bursts:
        ScheduledLoad(host=hosts[burst["host"]], at=burst["at"],
                      nprocs=burst["nprocs"],
                      until=burst["until"]).install(sim)
    for op in spec.links:
        sim.call_at(op["at"], functools.partial(_apply_link, topology, op))

    services_lane = ServicesLane(sim, spec.services) if spec.services \
        else None
    lanes["services"] = (LaneWatch(list(services_lane.procs.values()),
                                   ignore_interrupts=True)
                         if services_lane else LaneWatch([]))
    swap_lane = SwapLane(sim, grid, nws, spec.swap) if spec.swap else None
    lanes["swap"] = (LaneWatch([swap_lane.done]) if swap_lane
                     else LaneWatch([]))
    srs_lane = SrsLane(sim, grid, spec.srs) if spec.srs else None
    lanes["srs"] = (LaneWatch([srs_lane.done]) if srs_lane
                    else LaneWatch([]))

    ctx = SoakContext(spec=spec, sim=sim, grid=grid, topology=topology,
                      service=service, lanes=lanes,
                      services_lane=services_lane, swap_lane=swap_lane,
                      srs_lane=srs_lane, tracer=tracer)

    violations: List[Violation] = []
    deadline = spec.duration + _DEADLINE_SLACK
    horizon = _horizon(spec)
    next_checkpoint = spec.checkpoint_every
    while True:
        target = min(next_checkpoint, deadline)
        try:
            sim.run(until=target)
        except Exception as exc:  # harness finding, not a crash
            ctx.errors.append(f"{type(exc).__name__}: {exc}")
            if len(ctx.errors) >= _MAX_CAUGHT_ERRORS:
                break
            continue
        violations.extend(run_checkpoint_auditors(ctx))
        if (sim.now >= horizon
                and all(watch.complete for watch in lanes.values())):
            ctx.quiesced = True
            break
        if target >= deadline:
            break
        next_checkpoint = target + spec.checkpoint_every

    violations.extend(run_final_auditors(ctx))

    counters = {name: value
                for name, value in sorted(sim.stats.snapshot().items())
                if name.startswith("meta_")
                and not name.startswith(_ENGINE_COUNTER_PREFIX)}
    return ScenarioOutcome(
        spec=spec, engine=engine, finished_at=sim.now,
        quiesced=ctx.quiesced,
        lanes={name: lanes[name].status for name in sorted(lanes)},
        violations=violations,
        jobs=[_job_row(state) for state in service.states()],
        counters=counters)


def _first_divergence(a: dict, b: dict) -> str:
    for key in sorted(set(a) | set(b)):
        if (json.dumps(a.get(key), sort_keys=True)
                != json.dumps(b.get(key), sort_keys=True)):
            return f"fast and reference reports differ at {key!r}"
    return "fast and reference reports differ"


def run_with_checks(spec: ScenarioSpec) -> dict:
    """Run a scenario with its declared cross-checks; return the
    per-scenario report dict.

    ``spec.trace_check`` records and validates a Chrome trace;
    ``spec.engine_check`` re-runs the identical scenario under the
    reference planning engine and appends an ``engine-divergence``
    violation if the two engine-independent reports differ.
    """
    tracer = Tracer() if spec.trace_check else None
    base = run_scenario(spec, engine="fast", tracer=tracer).report()
    report = dict(base)
    report["engine_agreement"] = None
    if spec.engine_check:
        ref_tracer = Tracer() if spec.trace_check else None
        ref = run_scenario(spec, engine="reference",
                           tracer=ref_tracer).report()
        agree = ref == base
        report["engine_agreement"] = agree
        if not agree:
            report["violations"] = list(report["violations"]) + [{
                "invariant": "engine-divergence",
                "time": report["finished_at"],
                "detail": _first_divergence(base, ref),
            }]
    return report
