"""Greedy delta-debugging of a violating soak scenario.

Given a scenario whose run produced invariant violations,
:func:`shrink_scenario` repeatedly deletes elements (jobs, faults,
bursts, link operations, service kills, markers), disables whole
lanes, and halves the duration, keeping any change under which *some*
of the original violations still reproduce.  The result is a locally
minimal scenario: removing any single remaining element makes the
failure disappear.

The predicate is "same invariant *name* still fires", not "identical
detail string" — shrinking changes timestamps and counts, but a
reproducer for a ``services-conservation`` bug must still be a
``services-conservation`` reproducer.

Every candidate evaluation is one full :func:`~repro.soak.runner
.run_with_checks` execution, so the search is budgeted (``max_runs``)
and greedy rather than exhaustive.  The output of
:func:`write_reproducer` is a plain scenario JSON file replayable with
``repro soak replay``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from .runner import run_with_checks
from .scenario import ScenarioSpec

__all__ = ["ShrinkResult", "shrink_scenario", "violated_invariants",
           "write_reproducer"]

#: never shrink the duration below this (lanes need room to quiesce)
_MIN_DURATION = 60.0


def violated_invariants(report: dict) -> FrozenSet[str]:
    """The set of invariant names a scenario report violates."""
    return frozenset(v["invariant"] for v in report["violations"])


def _clone(spec: ScenarioSpec, **overrides) -> ScenarioSpec:
    data = spec.to_dict()
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


@dataclass
class ShrinkResult:
    """What the shrinker found and how hard it had to look."""

    minimal: ScenarioSpec
    targets: FrozenSet[str]
    runs: int
    removed: int


def shrink_scenario(spec: ScenarioSpec,
                    max_runs: int = 150) -> ShrinkResult:
    """Minimize ``spec`` while any of its violations still reproduce."""
    targets = violated_invariants(run_with_checks(spec))
    if not targets:
        raise ValueError("scenario does not violate any invariant; "
                         "nothing to shrink")
    budget = {"runs": 1}

    def still_fails(candidate: ScenarioSpec) -> bool:
        if budget["runs"] >= max_runs:
            return False
        budget["runs"] += 1
        return bool(targets & violated_invariants(
            run_with_checks(candidate)))

    current = spec
    removed = 0
    progress = True
    while progress and budget["runs"] < max_runs:
        progress = False

        # -- drop elements from each list, big chunks first ---------------
        for field_name in ("jobs", "faults", "bursts", "links", "markers"):
            items = list(getattr(current, field_name))
            chunk = max(len(items) // 2, 1)
            while chunk >= 1:
                i = 0
                while i < len(items):
                    trial = items[:i] + items[i + chunk:]
                    candidate = _clone(current, **{field_name: trial})
                    if still_fails(candidate):
                        removed += len(items) - len(trial)
                        items = trial
                        current = candidate
                        progress = True
                    else:
                        i += chunk
                if chunk == 1:
                    break
                chunk //= 2

        # -- drop individual service kills --------------------------------
        if current.services and current.services["kills"]:
            kills = list(current.services["kills"])
            i = 0
            while i < len(kills):
                trial = kills[:i] + kills[i + 1:]
                services = dict(current.services)
                services["kills"] = trial
                candidate = _clone(current, services=services)
                if still_fails(candidate):
                    kills = trial
                    current = candidate
                    removed += 1
                    progress = True
                else:
                    i += 1

        # -- disable whole optional lanes ---------------------------------
        for lane in ("services", "swap", "srs"):
            if getattr(current, lane) is not None:
                candidate = _clone(current, **{lane: None})
                if still_fails(candidate):
                    current = candidate
                    removed += 1
                    progress = True

        # -- cheapen the cross-checks if they are not the failure ---------
        for flag in ("engine_check", "trace_check"):
            if getattr(current, flag):
                candidate = _clone(current, **{flag: False})
                if still_fails(candidate):
                    current = candidate
                    progress = True

        # -- halve the duration -------------------------------------------
        while current.duration / 2.0 >= _MIN_DURATION:
            candidate = _clone(
                current, duration=round(current.duration / 2.0, 6))
            if still_fails(candidate):
                current = candidate
                progress = True
            else:
                break

    return ShrinkResult(minimal=current, targets=targets,
                        runs=budget["runs"], removed=removed)


def write_reproducer(spec: ScenarioSpec, path: str) -> None:
    """Write a scenario as a ``repro soak replay``-able JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json())
        fh.write("\n")


def load_reproducer(path: str) -> ScenarioSpec:
    """Read a scenario back from :func:`write_reproducer` output."""
    with open(path, "r", encoding="utf-8") as fh:
        return ScenarioSpec.from_json(fh.read())
