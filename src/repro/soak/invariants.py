"""Cross-subsystem invariant auditors for the soak harness.

Each auditor is a pure inspection ``fn(ctx) -> List[str]`` over a
:class:`~repro.soak.runner.SoakContext`; a non-empty return is a list
of human-readable violation details.  Auditors never mutate simulation
state, so running them at a checkpoint cannot change what happens
afterwards (a soak run with checkpoints every 10 s and every 300 s
must produce the same trajectory).

Two registries exist: :data:`CHECKPOINT_AUDITORS` run while the
scenario is still in flight (safety properties that must hold at every
instant), and :data:`FINAL_AUDITORS` run once the scenario has
quiesced (conservation/cleanup properties that are only required at
rest).  Registry iteration order is insertion order, so violation
lists are deterministic.

The ``marker-canary`` auditor is deliberately synthetic: it fires when
two scenario markers sum to 100.  It gives the shrinker tests and the
CI ``soak-smoke`` job a *permanent* known-violation fixture that keeps
violating after every real bug is fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..trace.export import chrome_trace, validate_chrome

__all__ = ["Violation", "CHECKPOINT_AUDITORS", "FINAL_AUDITORS",
           "run_checkpoint_auditors", "run_final_auditors"]

#: relative slack for capacity comparisons (allocations are floats)
_REL_TOL = 1e-6
_ABS_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant violation, timestamped at detection."""

    invariant: str
    time: float
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "time": self.time,
                "detail": self.detail}


# -- checkpoint auditors (safety: must hold at every instant) ----------------

def _flow_capacity(ctx) -> List[str]:
    """No directed edge carries more allocated bandwidth than it has."""
    topology = ctx.topology
    out = []
    for eid, cap in enumerate(topology._edge_cap):
        load = sum(flow.allocation for flow in topology._edge_users[eid])
        if load > cap * (1.0 + _REL_TOL) + _ABS_TOL:
            out.append(f"edge {eid}: allocated {load:.6f} B/s over "
                       f"capacity {cap:.6f} B/s")
    return out


def _host_hygiene(ctx) -> List[str]:
    """Dead hosts run nothing; live hosts never exceed their cores."""
    out = []
    for host in ctx.grid.all_hosts():
        if not host.alive:
            if host._tasks:
                out.append(f"{host.name}: dead host still has "
                           f"{len(host._tasks)} tasks")
            continue
        total = sum(task.rate for task in host._tasks)
        limit = host.speed * host.cores
        if total > limit * (1.0 + _REL_TOL) + _ABS_TOL:
            out.append(f"{host.name}: task rates sum to {total:.3f} "
                       f"Mflop/s over the {limit:.3f} Mflop/s machine")
    return out


def _resource_bounds(ctx) -> List[str]:
    """Store stays within capacity; semaphore units stay in [0, count]."""
    lane = ctx.services_lane
    if lane is None:
        return []
    out = []
    store, sem = lane.store, lane.semaphore
    if store.capacity is not None and len(store) > store.capacity:
        out.append(f"store holds {len(store)} items over capacity "
                   f"{store.capacity}")
    if not 0 <= sem.available <= sem.count:
        out.append(f"semaphore has {sem.available} units outside "
                   f"[0, {sem.count}]")
    return out


def _reservation_calendar(ctx) -> List[str]:
    """The metascheduler's advance-reservation calendar audits clean."""
    return list(ctx.service.audit_conflicts())


# -- final auditors (conservation/cleanup: required once quiesced) -----------

def _quiesce(ctx) -> List[str]:
    """Every lane drains before the (generous) deadline.  A scenario
    that cannot quiesce has stranded processes somewhere — historically
    a unit or item handed to a dead waiter."""
    if ctx.quiesced:
        return []
    stuck = sorted(name for name, lane in ctx.lanes.items()
                   if not lane.complete)
    return [f"deadline hit before quiesce; unfinished lanes: "
            f"{', '.join(stuck) or 'none'}"]


def _unhandled_errors(ctx) -> List[str]:
    """Nothing escaped the kernel: every exception the slice loop caught
    is a bug (lane failures are defused and recorded, not raised)."""
    return list(ctx.errors)


def _stats_consistency(ctx) -> List[str]:
    """``sim.stats`` meta counters agree with the per-job state rows."""
    lane = ctx.lanes.get("metasched")
    if lane is None or not lane.complete:
        return []
    rows = [state for state in ctx.service.states()]
    counters = ctx.sim.stats.snapshot()
    expected = {
        "meta_submitted": len(rows),
        "meta_rejected": sum(1 for s in rows if s.status == "rejected"),
        "meta_started": sum(1 for s in rows if s.started_at is not None),
        "meta_completed": sum(1 for s in rows if s.status == "completed"),
        "meta_backfilled": sum(1 for s in rows if s.backfilled),
    }
    out = []
    for name in sorted(expected):
        if counters.get(name, 0) != expected[name]:
            out.append(f"{name}={counters.get(name, 0):g} but job rows "
                       f"imply {expected[name]}")
    return out


def _services_conservation(ctx) -> List[str]:
    """Store items and semaphore units are conserved across kills.

    Gated on the lane having fully drained (every client process dead):
    accepted items are either consumed or still in the store, every
    acquire was released (workers release in ``finally`` even when
    killed mid-hold), and all units are back in the pool.
    """
    lane = ctx.services_lane
    if lane is None or not ctx.lanes["services"].complete:
        return []
    out = []
    in_store = len(lane.store)
    if lane.accepted != lane.consumed + in_store:
        out.append(f"store ledger broken: accepted {lane.accepted} != "
                   f"consumed {lane.consumed} + {in_store} in store")
    if lane.acquired != lane.released:
        out.append(f"semaphore ledger broken: acquired {lane.acquired} "
                   f"!= released {lane.released}")
    if lane.semaphore.available != lane.semaphore.count:
        out.append(f"semaphore drained to {lane.semaphore.available}/"
                   f"{lane.semaphore.count} units with no holders left")
    return out


def _services_health(ctx) -> List[str]:
    """Service clients only ever die by scheduled kill, never by bug."""
    lane = ctx.lanes.get("services")
    if lane is None:
        return []
    return [f"service process failed: {err}" for err in lane.failures]


def _swap_hygiene(ctx) -> List[str]:
    """A finished job holds no queued swaps; a stopped rescheduler and a
    finished job never produce further swap decisions."""
    lane = ctx.swap_lane
    if lane is None:
        return []
    out = []
    if lane.done.triggered and lane.app.job._pending_swaps:
        out.append(f"{len(lane.app.job._pending_swaps)} pending swaps "
                   f"leaked past job completion")
    for decision in lane.rescheduler.decisions:
        if (lane.stopped_at is not None
                and decision.time > lane.stopped_at + _ABS_TOL):
            out.append(f"swap decision at t={decision.time} after "
                       f"stop() at t={lane.stopped_at}")
        if (lane.finished_at is not None
                and decision.time > lane.finished_at + _ABS_TOL):
            out.append(f"swap decision at t={decision.time} after the "
                       f"job finished at t={lane.finished_at}")
    return out


def _srs_hygiene(ctx) -> List[str]:
    """No ``_migrating``/``_Inflight`` tokens survive the managed run."""
    lane = ctx.srs_lane
    if lane is None or not ctx.lanes["srs"].complete:
        return []
    out = []
    if lane.rescheduler._migrating:
        out.append("leaked _migrating tokens: "
                   + ", ".join(sorted(lane.rescheduler._migrating)))
    if lane.rescheduler._inflight:
        out.append("leaked _Inflight records: "
                   + ", ".join(sorted(lane.rescheduler._inflight)))
    return out


def _flows_drained(ctx) -> List[str]:
    """At rest with every lane healthy, no flow is still in flight."""
    if not ctx.quiesced:
        return []
    if any(lane.failures for lane in ctx.lanes.values()):
        return []  # a crashed app can legitimately strand a transfer
    n = ctx.topology.active_flows
    if n:
        return [f"{n} flows still active after quiesce"]
    return []


def _trace_wellformed(ctx) -> List[str]:
    """The recorded Chrome trace passes ``validate_chrome``."""
    if ctx.tracer is None:
        return []
    return validate_chrome(chrome_trace(ctx.tracer))


def _marker_canary(ctx) -> List[str]:
    """Synthetic known-violation hook: two markers summing to 100."""
    markers = ctx.spec.markers
    out = []
    for i in range(len(markers)):
        for j in range(i + 1, len(markers)):
            if markers[i] + markers[j] == 100:
                out.append(f"markers[{i}]={markers[i]} and markers[{j}]="
                           f"{markers[j]} sum to 100")
    return out


CHECKPOINT_AUDITORS: Dict[str, Callable] = {
    "flow-capacity": _flow_capacity,
    "host-hygiene": _host_hygiene,
    "resource-bounds": _resource_bounds,
    "reservation-calendar": _reservation_calendar,
}

FINAL_AUDITORS: Dict[str, Callable] = {
    "quiesce": _quiesce,
    "reservation-calendar": _reservation_calendar,
    "unhandled-error": _unhandled_errors,
    "stats-consistency": _stats_consistency,
    "services-conservation": _services_conservation,
    "services-health": _services_health,
    "swap-hygiene": _swap_hygiene,
    "srs-hygiene": _srs_hygiene,
    "flows-drained": _flows_drained,
    "trace-wellformed": _trace_wellformed,
    "marker-canary": _marker_canary,
}


def _run(registry: Dict[str, Callable], ctx) -> List[Violation]:
    out = []
    for name, auditor in registry.items():
        for detail in auditor(ctx):
            out.append(Violation(invariant=name,
                                 time=round(ctx.sim.now, 9),
                                 detail=detail))
    return out


def run_checkpoint_auditors(ctx) -> List[Violation]:
    return _run(CHECKPOINT_AUDITORS, ctx)


def run_final_auditors(ctx) -> List[Violation]:
    return _run(FINAL_AUDITORS, ctx)
