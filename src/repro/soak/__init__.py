"""Differential soak harness: randomized cross-subsystem scenarios,
global invariants, and a shrinker for violating runs (DESIGN.md §10).
"""

from .invariants import (CHECKPOINT_AUDITORS, FINAL_AUDITORS, Violation,
                         run_checkpoint_auditors, run_final_auditors)
from .runner import (ScenarioOutcome, SoakContext, run_scenario,
                     run_with_checks)
from .scenario import (FIG3_HOSTS, SCENARIO_SCHEMA_VERSION,
                       SUBMISSION_HOST, ScenarioSpec, sample_scenario)
from .shrink import (ShrinkResult, load_reproducer, shrink_scenario,
                     violated_invariants, write_reproducer)

__all__ = [
    "CHECKPOINT_AUDITORS",
    "FINAL_AUDITORS",
    "FIG3_HOSTS",
    "SCENARIO_SCHEMA_VERSION",
    "SUBMISSION_HOST",
    "ScenarioOutcome",
    "ScenarioSpec",
    "ShrinkResult",
    "SoakContext",
    "Violation",
    "load_reproducer",
    "run_checkpoint_auditors",
    "run_final_auditors",
    "run_scenario",
    "run_with_checks",
    "sample_scenario",
    "shrink_scenario",
    "violated_invariants",
    "write_reproducer",
]
