"""Executable component performance models.

A COP carries "an executable performance model that estimates the
application's performance on a set of resources" (§1).  This module
defines that interface and two implementations:

* :class:`FittedComponentModel` — built the §3.2 way, from a fitted
  flop-count model plus an MRD cache model; architecture independent,
  converted to seconds with a host's Mflop/s rate and miss penalty.
* :class:`AnalyticComponentModel` — closed-form cost functions for
  components whose operation counts are known analytically (e.g. the
  ScaLAPACK QR kernel); used as ground truth in tests and available to
  applications.

Both also expose the component's data volumes, which the workflow
scheduler's ``dcost`` term needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..microgrid.host import Architecture
from .flops import FlopModel
from .mrd import MrdModel

__all__ = [
    "ComponentModel",
    "FittedComponentModel",
    "AnalyticComponentModel",
]


class ComponentModel:
    """Interface every component performance model satisfies."""

    def mflop(self, n: float) -> float:
        """Total work in Mflop at problem size ``n``."""
        raise NotImplementedError

    def memory_seconds(self, n: float, arch: Architecture) -> float:
        """Memory-hierarchy stall time on ``arch`` at size ``n``."""
        raise NotImplementedError

    def input_bytes(self, n: float) -> float:
        """Bytes of input data the component consumes."""
        raise NotImplementedError

    def output_bytes(self, n: float) -> float:
        """Bytes of output data the component produces."""
        raise NotImplementedError

    def memory_required_bytes(self, n: float) -> float:
        """Resident set needed to run at size ``n`` (0 = negligible)."""
        return 0.0

    # -- derived estimates ---------------------------------------------------
    def cpu_seconds(self, n: float, arch: Architecture,
                    availability: float = 1.0) -> float:
        """Wall seconds of computation on one node of ``arch``.

        ``availability`` is the NWS CPU fraction forecast; the flop
        stream slows proportionally while memory stalls do not contend
        for the CPU.
        """
        if availability <= 0:
            return math.inf
        flop_time = self.mflop(n) / (arch.mflops * availability)
        return flop_time + self.memory_seconds(n, arch)

    def eligible(self, n: float, arch: Architecture) -> bool:
        """Minimum-requirements check used for rank = infinity (§3.1)."""
        return self.memory_required_bytes(n) <= arch.memory_bytes


@dataclass
class FittedComponentModel(ComponentModel):
    """The §3.2 construction: fitted flop counts + MRD cache model."""

    flop_model: FlopModel
    mrd_model: Optional[MrdModel] = None
    bytes_per_element: int = 8
    #: data volume functions (bytes as a function of problem size)
    input_fn: Callable[[float], float] = lambda n: 0.0
    output_fn: Callable[[float], float] = lambda n: 0.0
    memory_fn: Callable[[float], float] = lambda n: 0.0

    def mflop(self, n: float) -> float:
        return self.flop_model.mflop(n)

    def memory_seconds(self, n: float, arch: Architecture) -> float:
        if self.mrd_model is None or not arch.caches:
            return 0.0
        total = 0.0
        for level in arch.caches:
            misses = self.mrd_model.predict_miss_count(
                n, cache_bytes=level.size, line_bytes=level.line)
            total += misses * level.miss_penalty
        return total

    def input_bytes(self, n: float) -> float:
        return self.input_fn(n)

    def output_bytes(self, n: float) -> float:
        return self.output_fn(n)

    def memory_required_bytes(self, n: float) -> float:
        return self.memory_fn(n)


@dataclass
class AnalyticComponentModel(ComponentModel):
    """Closed-form component model.

    ``mflop_fn`` maps problem size to Mflop; the remaining functions
    default to zero so simple components stay simple to declare.
    """

    mflop_fn: Callable[[float], float]
    input_fn: Callable[[float], float] = lambda n: 0.0
    output_fn: Callable[[float], float] = lambda n: 0.0
    memory_fn: Callable[[float], float] = lambda n: 0.0
    memory_seconds_fn: Callable[[float, Architecture], float] = \
        lambda n, arch: 0.0

    def mflop(self, n: float) -> float:
        value = self.mflop_fn(n)
        if value < 0:
            raise ValueError(f"model produced negative work at n={n}")
        return value

    def memory_seconds(self, n: float, arch: Architecture) -> float:
        return self.memory_seconds_fn(n, arch)

    def input_bytes(self, n: float) -> float:
        return self.input_fn(n)

    def output_bytes(self, n: float) -> float:
        return self.output_fn(n)

    def memory_required_bytes(self, n: float) -> float:
        return self.memory_fn(n)
