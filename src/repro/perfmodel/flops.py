"""Floating-point operation count models (§3.2).

GrADS builds architecture-independent component models by running the
program on "several executions ... with different, small-size input
problems", reading hardware performance counters, and applying least
squares curve fitting.  We reproduce that pipeline: feed in (size,
flop-count) samples, fit a non-negative combination of monomial basis
terms, and extrapolate to production sizes.

Non-negative least squares (``scipy.optimize.nnls``) matters here: an
unconstrained fit happily produces negative low-order coefficients that
make extrapolated counts negative for sizes outside the training range,
which would poison every downstream scheduling decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

__all__ = ["FlopModel", "fit_flop_model", "power_law_fit"]


@dataclass(frozen=True)
class FlopModel:
    """A fitted flop-count model: count(n) = sum_i coef[i] * n**degree[i]."""

    degrees: Tuple[int, ...]
    coefficients: Tuple[float, ...]
    residual: float  # least-squares residual norm on the training data

    def __call__(self, n: float) -> float:
        """Predicted flop count at problem size ``n``."""
        if n < 0:
            raise ValueError("problem size must be non-negative")
        return float(sum(c * n ** d
                         for c, d in zip(self.coefficients, self.degrees)))

    def mflop(self, n: float) -> float:
        """Predicted work in Mflop (the project's compute unit)."""
        return self(n) / 1e6

    @property
    def dominant_degree(self) -> int:
        """The highest-order term with a non-negligible coefficient."""
        best = 0
        for c, d in zip(self.coefficients, self.degrees):
            if c > 0 and d > best:
                best = d
        return best


def fit_flop_model(sizes: Sequence[float], counts: Sequence[float],
                   max_degree: int = 3) -> FlopModel:
    """Least-squares fit of flop counts against problem size.

    ``sizes`` and ``counts`` come from instrumented small-size runs.
    Columns are scaled before solving so that NNLS is well conditioned
    even when n**3 dwarfs n**0 across the sample range.
    """
    sizes = np.asarray(sizes, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if sizes.ndim != 1 or sizes.shape != counts.shape:
        raise ValueError("sizes and counts must be equal-length 1-D sequences")
    if len(sizes) < 2:
        raise ValueError("need at least two samples to fit")
    if np.any(sizes <= 0):
        raise ValueError("sample sizes must be positive")
    if np.any(counts < 0):
        raise ValueError("flop counts cannot be negative")
    degrees = tuple(range(max_degree + 1))
    basis = np.stack([sizes ** d for d in degrees], axis=1)
    scale = np.linalg.norm(basis, axis=0)
    scale[scale == 0] = 1.0
    solution, residual = nnls(basis / scale, counts)
    coefficients = tuple(float(c) for c in solution / scale)
    return FlopModel(degrees=degrees, coefficients=coefficients,
                     residual=float(residual))


def power_law_fit(sizes: Sequence[float], values: Sequence[float]
                  ) -> Tuple[float, float]:
    """Fit ``value = a * n**p`` in log space; returns ``(a, p)``.

    Used by the MRD models, where per-reference reuse distances grow as
    clean power laws of the problem size.  Zero values are clamped to a
    tiny epsilon so cold references (distance 0) stay representable.
    """
    sizes = np.asarray(sizes, dtype=float)
    values = np.asarray(values, dtype=float)
    if sizes.shape != values.shape or sizes.ndim != 1:
        raise ValueError("sizes and values must be equal-length 1-D sequences")
    if len(sizes) < 2:
        raise ValueError("need at least two samples to fit")
    if np.any(sizes <= 0):
        raise ValueError("sample sizes must be positive")
    if np.any(values < 0):
        raise ValueError("values cannot be negative")
    clamped = np.maximum(values, 1e-12)
    logn = np.log(sizes)
    logv = np.log(clamped)
    p, log_a = np.polyfit(logn, logv, 1)
    return float(np.exp(log_a)), float(p)
