"""Semi-automatic construction of component performance models (§3.2).

The GrADS program preparation system "semi-automatically construct[s]
performance models": run the component on several small inputs with
hardware counters and binary instrumentation enabled, then fit.  This
module is that pipeline's top: feed it one :class:`InstrumentedRun` per
training execution and get back a ready-to-schedule
:class:`~repro.perfmodel.model.FittedComponentModel`.

The semi-automatic part — choosing *which* sizes to train on — stays
with the human, as it did in GrADS; :func:`suggest_training_sizes`
encodes the rule of thumb the Rice tooling used (geometric spacing,
small enough to run fast, spread wide enough to separate polynomial
orders).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .flops import fit_flop_model, power_law_fit
from .model import FittedComponentModel
from .mrd import MrdModel, ReuseHistogram

__all__ = ["InstrumentedRun", "construct_component_model",
           "suggest_training_sizes"]


@dataclass(frozen=True)
class InstrumentedRun:
    """Measurements from one training execution of a component.

    ``flop_count`` comes from the hardware performance counters;
    ``memory_trace`` is the block-address trace the binary
    instrumentation collected (may be empty if memory behaviour is not
    being modeled); the byte volumes are observed I/O sizes.
    """

    problem_size: float
    flop_count: float
    memory_trace: Sequence[int] = ()
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    resident_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.problem_size <= 0:
            raise ValueError("problem size must be positive")
        if self.flop_count < 0:
            raise ValueError("flop count cannot be negative")


def suggest_training_sizes(smallest: float, n_sizes: int = 5,
                           ratio: float = 1.6) -> List[float]:
    """Geometrically spaced training sizes starting at ``smallest``."""
    if smallest <= 0 or n_sizes < 2 or ratio <= 1.0:
        raise ValueError("need smallest > 0, n_sizes >= 2, ratio > 1")
    return [smallest * ratio ** i for i in range(n_sizes)]


def construct_component_model(runs: Sequence[InstrumentedRun],
                              max_degree: int = 3,
                              n_bins: int = 16) -> FittedComponentModel:
    """Fit every sub-model from the instrumented runs.

    Needs at least two runs at distinct sizes.  The MRD model is fitted
    only when at least two runs carry memory traces; volume models fall
    back to zero when the measurements are all zero.
    """
    if len(runs) < 2:
        raise ValueError("need at least two instrumented runs")
    sizes = [r.problem_size for r in runs]
    if len(set(sizes)) < 2:
        raise ValueError("runs must span at least two problem sizes")

    flop_model = fit_flop_model(sizes, [r.flop_count for r in runs],
                                max_degree=max_degree)

    traced = [r for r in runs if len(r.memory_trace) > 0]
    mrd_model: Optional[MrdModel] = None
    if len(traced) >= 2 and len({r.problem_size for r in traced}) >= 2:
        histograms = [ReuseHistogram.from_trace(r.problem_size,
                                                r.memory_trace,
                                                n_bins=n_bins)
                      for r in traced]
        mrd_model = MrdModel.fit(histograms)

    return FittedComponentModel(
        flop_model=flop_model,
        mrd_model=mrd_model,
        input_fn=_volume_fn(sizes, [r.input_bytes for r in runs]),
        output_fn=_volume_fn(sizes, [r.output_bytes for r in runs]),
        memory_fn=_volume_fn(sizes, [r.resident_bytes for r in runs]),
    )


def _volume_fn(sizes: Sequence[float],
               volumes: Sequence[float]) -> Callable[[float], float]:
    """Power-law volume model; identically zero if never observed."""
    if all(v == 0 for v in volumes):
        return lambda n: 0.0
    a, p = power_law_fit(sizes, volumes)
    return lambda n: a * n ** p
