"""Memory reuse distance (MRD) models (§3.2).

The paper: "we collect histograms of memory reuse distance — the number
of unique memory blocks accessed between a pair of references to the
same block ... Using MRD data collected on several small-size input
problems, we model the behavior of each memory instruction, and predict
the fraction of hits and misses for a given problem size and cache
configuration ... we evaluate the MRD models for each reference at the
specified problem size, and count the number of accesses with predicted
reuse distance greater than the target cache size."

Three pieces reproduce that:

* :func:`reuse_distances` — an exact stack-distance computation over a
  block-address trace (Bennett/Kruskal algorithm with a Fenwick tree,
  O(n log n)), standing in for the binary instrumentation.
* :class:`ReuseHistogram` — the per-run histogram.
* :class:`MrdModel` — per-bin power-law scaling models fitted across
  several small problem sizes, evaluated at a target size and cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .flops import power_law_fit

__all__ = ["reuse_distances", "ReuseHistogram", "MrdModel", "MrdBinModel"]


class _Fenwick:
    """Binary indexed tree over trace positions (prefix sums)."""

    def __init__(self, n: int) -> None:
        self._tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i < len(self._tree):
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of entries at positions < i."""
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


def reuse_distances(trace: Sequence[int]) -> List[int]:
    """Exact LRU stack distances for each access of a block trace.

    Returns one distance per access: the number of *unique* blocks
    touched since the previous access to the same block, or ``-1`` for
    cold (first-time) accesses.
    """
    last_seen: Dict[int, int] = {}
    tree = _Fenwick(len(trace))
    out: List[int] = []
    for t, block in enumerate(trace):
        prev = last_seen.get(block)
        if prev is None:
            out.append(-1)
        else:
            # Unique blocks since prev = count of "most recent access"
            # markers strictly between prev and t.
            out.append(tree.prefix(t) - tree.prefix(prev + 1))
            tree.add(prev, -1)
        tree.add(t, +1)
        last_seen[block] = t
    return out


@dataclass(frozen=True)
class ReuseHistogram:
    """Reuse-distance histogram of one instrumented run.

    ``percentile_distances[k]`` is the reuse distance at the k-th of
    ``n_bins`` evenly spaced quantiles of the (finite) distance
    distribution; ``total_accesses`` and ``cold_accesses`` complete the
    picture.  Distances are in *blocks* (cache lines).
    """

    problem_size: float
    percentile_distances: Tuple[float, ...]
    total_accesses: int
    cold_accesses: int

    @classmethod
    def from_trace(cls, problem_size: float, trace: Sequence[int],
                   n_bins: int = 16) -> "ReuseHistogram":
        """Instrument a run: compute exact distances, then summarize."""
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        distances = reuse_distances(trace)
        finite = np.array([d for d in distances if d >= 0], dtype=float)
        cold = len(distances) - len(finite)
        if len(finite) == 0:
            percentiles = tuple(0.0 for _ in range(n_bins))
        else:
            qs = (np.arange(n_bins) + 0.5) / n_bins
            percentiles = tuple(float(v)
                                for v in np.quantile(finite, qs))
        return cls(problem_size=float(problem_size),
                   percentile_distances=percentiles,
                   total_accesses=len(distances),
                   cold_accesses=cold)

    @property
    def n_bins(self) -> int:
        return len(self.percentile_distances)

    def miss_fraction(self, cache_blocks: float) -> float:
        """Fraction of accesses that miss a fully associative LRU cache
        of ``cache_blocks`` lines (cold misses included)."""
        if self.total_accesses == 0:
            return 0.0
        reuse = self.total_accesses - self.cold_accesses
        per_bin = reuse / self.n_bins if self.n_bins else 0
        missed = sum(per_bin for d in self.percentile_distances
                     if d >= cache_blocks)
        return (missed + self.cold_accesses) / self.total_accesses


@dataclass(frozen=True)
class MrdBinModel:
    """Power-law scaling of one histogram bin: distance(n) = a * n**p."""

    a: float
    p: float

    def __call__(self, n: float) -> float:
        return self.a * n ** self.p


class MrdModel:
    """Cross-size MRD model: predicts misses at unseen problem sizes.

    Fitted from :class:`ReuseHistogram` instances collected at several
    small sizes.  Each percentile bin's distance is modeled as a power
    law of the problem size; the access count and cold-miss count get
    power laws too.  Prediction at (size, cache) evaluates every bin and
    counts the accesses whose predicted distance exceeds the cache.
    """

    def __init__(self, bins: Sequence[MrdBinModel],
                 accesses: MrdBinModel, cold: MrdBinModel) -> None:
        if not bins:
            raise ValueError("need at least one bin model")
        self.bins = list(bins)
        self.accesses = accesses
        self.cold = cold

    @classmethod
    def fit(cls, histograms: Sequence[ReuseHistogram]) -> "MrdModel":
        if len(histograms) < 2:
            raise ValueError("need histograms from at least two problem sizes")
        n_bins = histograms[0].n_bins
        if any(h.n_bins != n_bins for h in histograms):
            raise ValueError("histograms must share a bin count")
        sizes = [h.problem_size for h in histograms]
        if len(set(sizes)) < 2:
            raise ValueError("histograms must span at least two sizes")
        bin_models = []
        for k in range(n_bins):
            a, p = power_law_fit(sizes,
                                 [h.percentile_distances[k] for h in histograms])
            bin_models.append(MrdBinModel(a=a, p=p))
        acc_a, acc_p = power_law_fit(sizes,
                                     [h.total_accesses for h in histograms])
        cold_a, cold_p = power_law_fit(sizes,
                                       [h.cold_accesses for h in histograms])
        return cls(bins=bin_models,
                   accesses=MrdBinModel(a=acc_a, p=acc_p),
                   cold=MrdBinModel(a=cold_a, p=cold_p))

    def predict_accesses(self, n: float) -> float:
        return self.accesses(n)

    def predict_miss_count(self, n: float, cache_bytes: float,
                           line_bytes: int = 64) -> float:
        """Predicted cache misses for problem size ``n`` on the given
        cache configuration."""
        if cache_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        cache_blocks = cache_bytes / line_bytes
        total = self.accesses(n)
        cold = min(self.cold(n), total)
        reuse = max(total - cold, 0.0)
        per_bin = reuse / len(self.bins)
        missed = sum(per_bin for bin_model in self.bins
                     if bin_model(n) >= cache_blocks)
        return missed + cold

    def predict_miss_fraction(self, n: float, cache_bytes: float,
                              line_bytes: int = 64) -> float:
        total = self.accesses(n)
        if total <= 0:
            return 0.0
        return min(self.predict_miss_count(n, cache_bytes, line_bytes) / total,
                   1.0)
