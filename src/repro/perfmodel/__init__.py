"""Semi-automatic component performance modeling (paper §3.2)."""

from .construction import (
    InstrumentedRun,
    construct_component_model,
    suggest_training_sizes,
)
from .flops import FlopModel, fit_flop_model, power_law_fit
from .model import (
    AnalyticComponentModel,
    ComponentModel,
    FittedComponentModel,
)
from .mrd import MrdBinModel, MrdModel, ReuseHistogram, reuse_distances

__all__ = [
    "AnalyticComponentModel",
    "ComponentModel",
    "FittedComponentModel",
    "FlopModel",
    "InstrumentedRun",
    "MrdBinModel",
    "MrdModel",
    "ReuseHistogram",
    "construct_component_model",
    "fit_flop_model",
    "power_law_fit",
    "reuse_distances",
    "suggest_training_sizes",
]
