"""Configurable Object Programs: application + mapper + performance model."""

from .cop import CompilationPackage, ConfigurableObjectProgram
from .mapper import ClusterMapper, FastestSubsetMapper, Mapper, MapperError

__all__ = [
    "ClusterMapper",
    "CompilationPackage",
    "ConfigurableObjectProgram",
    "FastestSubsetMapper",
    "Mapper",
    "MapperError",
]
