"""Configurable Object Programs.

"Applications are encapsulated as configurable object programs (COPs),
which can be optimized rapidly for execution on a specific collection
of Grid resources.  A COP includes code for the application (e.g. an
MPI program), a mapper that determines how to map an application's
tasks to a set of resources, and an executable performance model that
estimates the application's performance on a set of resources." (§1)

Here the "code" is a rank-body factory (a generator function over
:class:`~repro.mpi.comm.MpiContext`), packaged together with the mapper,
the performance model, the software the binder must locate, and the
compilation package the binder ships to each target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..microgrid.host import Architecture
from ..perfmodel.model import ComponentModel
from .mapper import Mapper

__all__ = ["CompilationPackage", "ConfigurableObjectProgram"]


@dataclass(frozen=True)
class CompilationPackage:
    """What the binder ships to every target machine (§2): the source in
    intermediate representation, required libraries, and a configure
    script — summarized here by their costs."""

    ir_bytes: float = 2e6  # size of the IR + configure script
    required_packages: Tuple[str, ...] = ()
    configure_seconds: float = 2.0  # fixed configure-script time
    compile_mflop: float = 2000.0  # compilation work, runs on the target


@dataclass
class ConfigurableObjectProgram:
    """An application ready for GrADS execution."""

    name: str
    #: ``body_factory(problem_size, extras...)`` -> rank body generator fn
    body_factory: Callable
    mapper: Mapper
    model: ComponentModel
    package: CompilationPackage = field(default_factory=CompilationPackage)
    #: how many processes the program wants (None = mapper's choice)
    n_procs: int = 1
    is_mpi: bool = True

    def predicted_seconds(self, n: float, arch: Architecture,
                          availability: float = 1.0,
                          n_procs: Optional[int] = None) -> float:
        """Model estimate of execution time on ``n_procs`` nodes of
        ``arch``; ideal parallel efficiency is the model's baseline and
        per-application models override this when they know better."""
        procs = n_procs if n_procs is not None else self.n_procs
        if procs < 1:
            raise ValueError("n_procs must be >= 1")
        return self.model.cpu_seconds(n, arch, availability) / procs
