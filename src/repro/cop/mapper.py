"""COP mappers: choosing which resources an application runs on.

"A COP includes ... a mapper that determines how to map an
application's tasks to a set of resources" (§1).  Mappers consume GIS
records and NWS forecasts, and return an ordered host-name list.  The
mapper is what both the launch-time scheduler and the rescheduler call
to propose candidate resource sets (§4: "the rescheduler computes a new
schedule (using the COP's mapper)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..gis.directory import GridInformationService, ResourceRecord
from ..nws.service import NetworkWeatherService

__all__ = ["Mapper", "FastestSubsetMapper", "ClusterMapper", "MapperError"]


class MapperError(RuntimeError):
    """Raised when no feasible mapping exists."""


class Mapper:
    """Interface: propose an ordered host list for ``n_procs`` processes."""

    def map(self, gis: GridInformationService, nws: NetworkWeatherService,
            n_procs: int,
            exclude: Sequence[str] = ()) -> List[str]:
        raise NotImplementedError


def effective_mflops(record: ResourceRecord,
                     nws: NetworkWeatherService) -> float:
    """A host's deliverable rate: peak Mflop/s times forecast availability."""
    return record.mflops * nws.cpu_forecast(record.name)


@dataclass
class FastestSubsetMapper:
    """Pick the ``n_procs`` hosts with the highest effective speed.

    Suits loosely coupled components; ignores locality entirely, which
    is why tightly coupled codes use :class:`ClusterMapper` instead.
    """

    min_memory_bytes: int = 0

    def map(self, gis: GridInformationService, nws: NetworkWeatherService,
            n_procs: int, exclude: Sequence[str] = ()) -> List[str]:
        if n_procs < 1:
            raise MapperError("need at least one process")
        banned = set(exclude)
        candidates = [r for r in gis.resources()
                      if r.name not in banned
                      and r.memory_bytes >= self.min_memory_bytes]
        if len(candidates) < n_procs:
            raise MapperError(
                f"only {len(candidates)} eligible hosts for {n_procs} procs")
        ranked = sorted(candidates,
                        key=lambda r: (-effective_mflops(r, nws), r.name))
        return [r.name for r in ranked[:n_procs]]


@dataclass
class ClusterMapper:
    """Pick the best single cluster, the way the GrADS ScaLAPACK runs
    chose "the more powerful UTK cluster" (§4.1.2).

    Scores each cluster that can seat ``n_procs`` processes by the
    aggregate effective speed of its ``n_procs`` best hosts, discounted
    by how well connected the cluster is to ``data_source`` (where the
    input data, or checkpoint, currently lives).
    """

    data_source: Optional[str] = None
    data_bytes: float = 0.0
    min_memory_bytes: int = 0

    def map(self, gis: GridInformationService, nws: NetworkWeatherService,
            n_procs: int, exclude: Sequence[str] = ()) -> List[str]:
        if n_procs < 1:
            raise MapperError("need at least one process")
        banned = set(exclude)
        by_cluster: Dict[str, List[ResourceRecord]] = {}
        for record in gis.resources():
            if record.cluster is None or record.name in banned:
                continue
            if record.memory_bytes < self.min_memory_bytes:
                continue
            by_cluster.setdefault(record.cluster, []).append(record)
        best_hosts: Optional[List[str]] = None
        best_score = float("-inf")
        for cluster_name in sorted(by_cluster):
            members = by_cluster[cluster_name]
            if len(members) < n_procs:
                continue
            members = sorted(members,
                             key=lambda r: (-effective_mflops(r, nws), r.name))
            chosen = members[:n_procs]
            speed = sum(effective_mflops(r, nws) for r in chosen)
            penalty = 0.0
            if self.data_source is not None and self.data_bytes > 0:
                move = nws.transfer_forecast(self.data_source,
                                             chosen[0].name, self.data_bytes)
                # Convert the one-time move into a rate-equivalent
                # penalty: Mflop/s lost per second of data movement,
                # normalized by a nominal 60 s horizon.
                penalty = speed * (move / (move + 60.0))
            score = speed - penalty
            if score > best_score:
                best_score = score
                best_hosts = [r.name for r in chosen]
        if best_hosts is None:
            raise MapperError(
                f"no cluster can seat {n_procs} processes")
        return best_hosts
