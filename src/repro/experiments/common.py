"""Shared experiment plumbing: result records and table rendering."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["JSON_SCHEMA_VERSION", "format_table", "format_series",
           "bar_chart"]

#: version stamped into every ``--json`` CLI payload as
#: ``schema_version``, so downstream consumers can detect layout
#: changes; bump it whenever a payload's shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an ASCII table (the benches print these, paper-style)."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_series(points: Sequence[tuple], x_label: str, y_label: str,
                  title: str = "", max_points: int = 40) -> str:
    """Render an (x, y) series as a table, downsampled for readability."""
    points = list(points)
    if len(points) > max_points:
        stride = max(len(points) // max_points, 1)
        sampled = points[::stride]
        if sampled[-1] != points[-1]:
            sampled.append(points[-1])
        points = sampled
    return format_table([x_label, y_label], points, title=title)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str = "") -> str:
    """An ASCII horizontal bar chart (for figure-shaped output)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    lines = [title] if title else []
    peak = max(values, default=0.0)
    label_w = max((len(lbl) for lbl in labels), default=0)
    for label, value in zip(labels, values):
        n = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(f"{label.ljust(label_w)} | {'#' * n} {value:.1f}")
    return "\n".join(lines)
