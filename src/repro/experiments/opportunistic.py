"""Opportunistic rescheduling (§4.1.1, elaborated in [21]).

"The rescheduler periodically checks for a GrADS application that has
recently completed.  If it finds one, the rescheduler determines if
another application can obtain performance benefits if it is migrated
to the newly freed resources."

Scenario: application A (a QR job) occupies the *fast* cluster;
application B, arriving while A runs, has to start on the slow cluster.
B performs to its contract — no violation ever fires — so only the
opportunistic daemon can notice, when A completes, that B would finish
sooner on the freed machines (even paying the stop/restart cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..appmanager.manager import GradsEnvironment
from ..apps.qr import QrBenchmark, QrRun
from ..contracts.contract import PerformanceContract
from ..contracts.monitor import ContractMonitor
from ..microgrid.cluster import Cluster
from ..microgrid.dml import Grid
from ..microgrid.host import Architecture
from ..microgrid.testbed import GB1
from ..rescheduling.rescheduler import Rescheduler
from ..rescheduling.rss import RuntimeSupportSystem
from ..rescheduling.srs import SRSLibrary
from ..sim.events import AllOf
from ..sim.kernel import Simulator

__all__ = ["OpportunisticResult", "run_opportunistic", "asymmetric_grid"]

ARCH_FAST = Architecture(name="fast-node", mflops=400.0, isa="ia32")
ARCH_SLOW = Architecture(name="slow-node", mflops=150.0, isa="ia32")


def asymmetric_grid(sim: Simulator) -> Grid:
    """Two 8-node clusters, one ~2.7x faster per node, on a fast WAN."""
    grid = Grid(sim)
    fast = grid.add_cluster(Cluster(
        sim, grid.topology, "fast", arch=ARCH_FAST, n_hosts=8,
        link_bandwidth=GB1, link_latency=1e-4, site="FAST"))
    slow = grid.add_cluster(Cluster(
        sim, grid.topology, "slow", arch=ARCH_SLOW, n_hosts=8,
        link_bandwidth=GB1, link_latency=1e-4, site="SLOW"))
    grid.topology.add_link(fast.switch, slow.switch,
                           bandwidth=20e6, latency=0.005)
    return grid


@dataclass
class OpportunisticResult:
    """What happened to application B."""

    a_finished_at: float
    b_finished_at: float
    b_migrations: int
    b_final_cluster: str
    opportunistic_decisions: int


def _managed_run(env: GradsEnvironment, benchmark: QrBenchmark,
                 hosts, rescheduler: Rescheduler) -> QrRun:
    rss = RuntimeSupportSystem(env.sim, home_host=env.submission_host)
    srs = SRSLibrary(env.sim, env.grid.topology, rss)
    contract = PerformanceContract(predicted_fn=lambda step: 1.0)
    monitor = ContractMonitor(env.sim, contract, window=3)
    run = QrRun(env.sim, env.grid, env.gis, env.nws, env.binder,
                rss, srs, benchmark, hosts, monitor=monitor)
    rescheduler.manage(run)
    monitor.rescheduler = rescheduler.request_handler(run)
    return run


def run_opportunistic(n_a: int = 6000, n_b: int = 8000,
                      enable: bool = True,
                      period: float = 60.0,
                      seed: int = 0,
                      tracer=None) -> OpportunisticResult:
    """Run the two-application scenario, with or without the daemon.

    ``seed`` follows the repo-wide experiment convention (DESIGN.md
    §9.5): recorded in the meta trace; driver randomness, if any, must
    come from ``RngRegistry(seed)`` (this scenario is scripted).
    """
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="opportunistic",
                       enabled=enable, seed=seed)
    grid = asymmetric_grid(sim)
    env = GradsEnvironment(sim, grid, submission_host="fast.n0")
    rescheduler = Rescheduler(sim, env.gis, env.nws, mode="default",
                              worst_case_migration_seconds=None)
    run_a = _managed_run(env, QrBenchmark(n=n_a, nb=200),
                         grid.clusters["fast"].host_names(), rescheduler)
    run_b = _managed_run(env, QrBenchmark(n=n_b, nb=200),
                         grid.clusters["slow"].host_names(), rescheduler)
    if enable:
        rescheduler.start_opportunistic(period=period)
    done_a = run_a.start()
    done_b = run_b.start()
    finish_times = {}
    done_a.add_callback(lambda _e: finish_times.setdefault("a", sim.now))
    done_b.add_callback(lambda _e: finish_times.setdefault("b", sim.now))
    both = AllOf(sim, [done_a, done_b])
    sim.run(stop_event=both)
    opportunistic = sum(1 for d in rescheduler.decisions
                        if d.trigger == "opportunistic")
    final_cluster = run_b.current_hosts()[0].split(".")[0]
    return OpportunisticResult(
        a_finished_at=finish_times["a"],
        b_finished_at=finish_times["b"],
        b_migrations=run_b.migrations,
        b_final_cluster=final_cluster,
        opportunistic_decisions=opportunistic)
