"""Substrate stress workload: the hot-path benchmark behind every figure.

All paper experiments ride on ``repro.sim`` + ``repro.microgrid``; this
module drives those layers directly, with no scheduler on top, so the
kernel/network overhead is the only thing measured.  The workload is a
32-host, 8-cluster grid carrying 64 concurrent flows (3:1 mix of
intra-cluster to cross-cluster traffic, the locality of real grid
transfers); every completion immediately launches a replacement flow, so
each of the ~thousands of flow events perturbs the max-min allocation —
the worst case for the pre-overhaul from-scratch allocator and the
intended case for the incremental one.

``run_substrate_bench(allocator="incremental")`` vs ``"reference"``
isolates the allocator speedup: both modes produce identical flow
timelines (property-tested in ``tests/microgrid/test_network.py``), so
wall-clock and events/sec are directly comparable.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple

from ..microgrid.host import Architecture, Host
from ..microgrid.network import Topology
from ..sim.kernel import Simulator

__all__ = ["build_substrate_grid", "run_substrate_bench"]

#: access links: 1 Gbit/s, 0.1 ms; backbone: 10 Gbit/s, 5 ms
_ACCESS_BW = 125e6
_ACCESS_LAT = 1e-4
_CORE_BW = 1.25e9
_CORE_LAT = 5e-3


def build_substrate_grid(sim: Simulator, n_hosts: int = 32,
                         cluster_size: int = 4,
                         allocator: str = "incremental"
                         ) -> Tuple[Topology, List[List[str]]]:
    """A star-of-stars grid: clusters of hosts around a core router.

    Returns the topology and the host names grouped per cluster.
    """
    if n_hosts % cluster_size:
        raise ValueError("n_hosts must be a multiple of cluster_size")
    topo = Topology(sim, allocator=allocator)
    arch = Architecture(name="bench", mflops=1000.0)
    topo.add_node("core")
    clusters: List[List[str]] = []
    for c in range(n_hosts // cluster_size):
        switch = f"sw{c}"
        topo.add_node(switch)
        topo.add_link(switch, "core", bandwidth=_CORE_BW, latency=_CORE_LAT)
        names = []
        for i in range(cluster_size):
            name = f"h{c}.{i}"
            topo.attach_host(Host(sim, name, arch))
            topo.add_link(name, switch, bandwidth=_ACCESS_BW,
                          latency=_ACCESS_LAT)
            names.append(name)
        clusters.append(names)
    return topo, clusters


def _flow_spec(slot: int, seq: int, clusters: List[List[str]]
               ) -> Tuple[str, str, float]:
    """Deterministic (src, dst, nbytes) for the ``seq``-th flow of a slot.

    Slots with ``slot % 4 == 3`` carry cross-cluster traffic through the
    backbone; the rest stay inside one cluster.  Sizes cycle through a
    13-step pattern so completions interleave rather than synchronise.
    """
    n_clusters = len(clusters)
    cluster_size = len(clusters[0])
    mix = slot * 7919 + seq * 104729  # two primes decorrelate the streams
    if slot % 4 == 3:
        a = clusters[slot % n_clusters]
        b = clusters[(slot + 1 + mix % (n_clusters - 1)) % n_clusters]
        src = a[mix % cluster_size]
        dst = b[(mix // 7) % cluster_size]
    else:
        hosts = clusters[slot % n_clusters]
        src = hosts[mix % cluster_size]
        dst = hosts[(mix % cluster_size + 1 + (mix // 11) % (cluster_size - 1))
                    % cluster_size]
    nbytes = 0.5e6 * (1 + mix % 13)
    return src, dst, nbytes


def run_substrate_bench(n_hosts: int = 32, concurrent_flows: int = 64,
                        total_transfers: int = 1500,
                        allocator: str = "incremental",
                        tracer=None) -> Dict[str, float]:
    """Run the closed-loop flow churn and report counters + events/sec.

    ``concurrent_flows`` transfer slots each keep one flow in flight;
    the run ends once ``total_transfers`` flows have completed in total.
    ``tracer`` exists mainly for the tracing-overhead benchmark, which
    attaches a disabled tracer to price the instrumentation hooks.
    """
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
    topo, clusters = build_substrate_grid(sim, n_hosts=n_hosts,
                                          allocator=allocator)
    state = {"started": 0, "completed": 0}

    def launch(slot: int) -> None:
        seq = state["started"]
        if seq >= total_transfers:
            return
        state["started"] = seq + 1
        src, dst, nbytes = _flow_spec(slot, seq, clusters)
        ev = topo.transfer(src, dst, nbytes, tag=str(seq))

        def done(_event) -> None:
            state["completed"] += 1
            launch(slot)

        ev.add_callback(done)

    # simlint: the harness times *itself* in wall-clock seconds; nothing
    # inside the simulation reads these values.
    wall_start = perf_counter()  # simlint: ignore[SL001] — benchmark wall time
    for slot in range(concurrent_flows):
        launch(slot)
    sim.run()
    elapsed = perf_counter() - wall_start  # simlint: ignore[SL001] — benchmark wall time
    stats = sim.stats.snapshot()
    stats.update({
        "allocator": allocator,
        "transfers_completed": state["completed"],
        "bytes_delivered": topo.bytes_delivered,
        "sim_seconds": sim.now,
        "wall_seconds": elapsed,
        "events_per_sec": (sim.stats.events_processed / elapsed
                           if elapsed > 0 else float("inf")),
    })
    return stats
