"""Experiment drivers regenerating the paper's figures and demos."""

from .common import (
    JSON_SCHEMA_VERSION,
    bar_chart,
    format_series,
    format_table,
)
from .eman_demo import EmanResult, run_eman_demo
from .metasched_stream import (
    MetaschedResult,
    metasched_tables,
    run_metasched,
)
from .fig3_qr import (
    DEFAULT_SIZES,
    PHASES,
    WORST_CASE_SECONDS,
    Fig3Point,
    Fig3Result,
    run_fig3,
    run_fig3_point,
)
from .faults_campaign import campaign_tables, run_faults_campaign
from .fig4_swap import Fig4Result, run_fig4
from .opportunistic import (
    OpportunisticResult,
    asymmetric_grid,
    run_opportunistic,
)
from .scheduler_bench import (
    build_scheduler_bench_env,
    run_scheduler_bench,
    schedules_equal,
)
from .substrate import build_substrate_grid, run_substrate_bench

__all__ = [
    "OpportunisticResult",
    "asymmetric_grid",
    "run_opportunistic",
    "DEFAULT_SIZES",
    "EmanResult",
    "Fig3Point",
    "Fig3Result",
    "Fig4Result",
    "JSON_SCHEMA_VERSION",
    "MetaschedResult",
    "PHASES",
    "WORST_CASE_SECONDS",
    "bar_chart",
    "metasched_tables",
    "build_scheduler_bench_env",
    "build_substrate_grid",
    "campaign_tables",
    "format_series",
    "format_table",
    "run_eman_demo",
    "run_faults_campaign",
    "run_fig3",
    "run_fig3_point",
    "run_fig4",
    "run_metasched",
    "run_scheduler_bench",
    "run_substrate_bench",
    "schedules_equal",
]
