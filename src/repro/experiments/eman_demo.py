"""§3.3 — the EMAN refinement workflow on a heterogeneous grid.

The SC2003 demonstration: the GrADS workflow scheduler maps the EMAN
refinement components (performance models included) onto a mixed
IA-32 / IA-64 grid, the binder's recompile-at-target design makes the
mixed-ISA mapping legal, and the workflow executes end to end.

The paper reports no numeric table for this section, so the experiment
reports what it demonstrated: per-heuristic estimated makespans, the
chosen schedule, baseline (random / FIFO / HEFT) comparisons, and the
measured makespan of actually executing the chosen schedule — including
the check that both ISAs carry work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..apps.eman import EmanParameters, eman_refinement_workflow
from ..gis.directory import GridInformationService
from ..microgrid.testbed import heterogeneous_testbed
from ..nws.service import NetworkWeatherService
from ..scheduler.executor import WorkflowExecutor
from ..scheduler.heuristics import (
    fifo_schedule,
    heft_schedule,
    random_schedule,
)
from ..scheduler.ranking import build_rank_matrix
from ..scheduler.scheduler import GradsWorkflowScheduler
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .common import format_table

__all__ = ["EmanResult", "run_eman_demo"]


@dataclass
class EmanResult:
    """Estimated makespans per policy, plus the executed outcome."""

    estimated: Dict[str, float] = field(default_factory=dict)
    chosen_heuristic: str = ""
    measured_makespan: float = 0.0
    isas_used: List[str] = field(default_factory=list)
    resources_used: int = 0

    def to_table(self) -> str:
        rows = [(name, seconds,
                 "<- chosen" if name == self.chosen_heuristic else "")
                for name, seconds in sorted(self.estimated.items(),
                                            key=lambda kv: kv[1])]
        return format_table(
            ["policy", "est. makespan (s)", ""], rows,
            title="EMAN workflow scheduling (heterogeneous IA-32+IA-64 grid)")


def run_eman_demo(params: Optional[EmanParameters] = None,
                  classesbymra_tasks: int = 32,
                  classalign_tasks: int = 16,
                  seed: int = 0,
                  n_random: int = 5,
                  execute: bool = True,
                  tracer=None) -> EmanResult:
    """Schedule (all policies) and optionally execute the best mapping."""
    params = params if params is not None else EmanParameters()
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="eman", seed=seed)
    grid = heterogeneous_testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    workflow = eman_refinement_workflow(
        params, classesbymra_tasks=classesbymra_tasks,
        classalign_tasks=classalign_tasks)
    # Input data (micrograph stack) lives at the IA-32 head node.
    data_sources = {"proc3d": ["ia32.n0"], "classesbymra": ["ia32.n0"]}

    scheduler = GradsWorkflowScheduler(gis, nws)
    grads_result = scheduler.schedule(workflow, data_sources=data_sources)
    result = EmanResult()
    result.estimated.update(grads_result.makespans())
    result.chosen_heuristic = grads_result.best.heuristic

    matrix = build_rank_matrix(workflow, gis, nws,
                               data_sources=data_sources)
    result.estimated["fifo"] = fifo_schedule(workflow, matrix, nws).makespan
    result.estimated["heft"] = heft_schedule(workflow, matrix, nws).makespan
    rng = RngRegistry(seed=seed).stream("eman-random")
    random_spans = [random_schedule(workflow, matrix, nws, rng).makespan
                    for _ in range(n_random)]
    result.estimated["random(mean)"] = (sum(random_spans)
                                        / max(len(random_spans), 1))

    if execute:
        executor = WorkflowExecutor(sim, grid.topology, gis)
        trace_event = executor.execute(workflow, grads_result.best)
        sim.run(stop_event=trace_event)
        trace = trace_event.value
        result.measured_makespan = trace.makespan
        used = {t.resource for t in trace.tasks.values()}
        result.resources_used = len(used)
        result.isas_used = sorted({gis.lookup(name).isa
                                   for name in sorted(used)})
    return result
