"""Soak-sweep experiment driver (``repro soak``).

Runs a seed-keyed sweep of randomized composite scenarios through
:func:`repro.soak.runner.run_with_checks` and reduces the outcomes to
one deterministic report: same seed and scenario count, same bytes.
Scenarios whose runs violate invariants are optionally shrunk to
minimal ``repro soak replay``-able reproducer files.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..soak.scenario import sample_scenario
from ..soak.runner import run_with_checks
from ..soak.shrink import shrink_scenario, write_reproducer
from .common import JSON_SCHEMA_VERSION, format_table

__all__ = ["SCENARIOS_PER_MINUTE", "SoakReport", "run_soak",
           "soak_tables"]

#: calibrated sweep rate: a scenario (including its engine/trace
#: cross-checks) averages well under a second of wall time, so a
#: ``--minutes`` budget maps to a deterministic scenario count
SCENARIOS_PER_MINUTE = 100


@dataclass
class SoakReport:
    """One soak sweep, reduced to plain data."""

    seed: int
    scenarios: int
    results: List[dict] = field(default_factory=list)
    reproducers: List[dict] = field(default_factory=list)

    def summary(self) -> dict:
        by_invariant: dict = {}
        violating = 0
        for result in self.results:
            if result["violations"]:
                violating += 1
            for violation in result["violations"]:
                name = violation["invariant"]
                by_invariant[name] = by_invariant.get(name, 0) + 1
        checked = [r for r in self.results
                   if r["engine_agreement"] is not None]
        return {
            "scenarios": len(self.results),
            "quiesced": sum(1 for r in self.results if r["quiesced"]),
            "violations": sum(len(r["violations"])
                              for r in self.results),
            "scenarios_with_violations": violating,
            "by_invariant": {name: by_invariant[name]
                             for name in sorted(by_invariant)},
            "engine_checked": len(checked),
            "engine_agreed": sum(1 for r in checked
                                 if r["engine_agreement"]),
            "jobs_submitted": sum(len(r["jobs"]) for r in self.results),
        }

    def report(self) -> dict:
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "params": {"seed": self.seed, "scenarios": self.scenarios},
            "scenarios": self.results,
            "reproducers": self.reproducers,
            "summary": self.summary(),
        }

    def to_json(self) -> str:
        """Deterministic serialization: equal seeds => equal bytes."""
        return json.dumps(self.report(), sort_keys=True)


def run_soak(seed: int = 0, scenarios: Optional[int] = None,
             minutes: Optional[float] = None,
             shrink_dir: Optional[str] = None,
             progress=None) -> SoakReport:
    """Run a soak sweep.

    ``scenarios`` fixes the sweep size directly; ``minutes`` converts a
    time budget through :data:`SCENARIOS_PER_MINUTE` (deterministic —
    never wall-clock measured).  With ``shrink_dir`` set, every
    violating scenario is delta-debugged to a minimal reproducer JSON
    written into that directory.
    """
    if scenarios is None:
        if minutes is None:
            scenarios = 50
        else:
            scenarios = max(int(minutes * SCENARIOS_PER_MINUTE), 1)
    report = SoakReport(seed=seed, scenarios=scenarios)
    for index in range(scenarios):
        spec = sample_scenario(seed, index)
        result = run_with_checks(spec)
        report.results.append(result)
        if progress is not None:
            progress(index, result)
        if result["violations"] and shrink_dir is not None:
            os.makedirs(shrink_dir, exist_ok=True)
            shrunk = shrink_scenario(spec)
            filename = f"reproducer-{seed}-{index}.json"
            write_reproducer(shrunk.minimal,
                             os.path.join(shrink_dir, filename))
            report.reproducers.append({
                "index": index,
                "file": filename,
                "invariants": sorted(shrunk.targets),
                "shrink_runs": shrunk.runs,
            })
    return report


def _lane_cell(lanes: dict) -> str:
    tags = []
    for key, label in (("metasched", "meta"), ("services", "svc"),
                       ("swap", "swap"), ("srs", "srs")):
        status = lanes[key]
        if status == "absent":
            continue
        short = {"ok": "ok", "unfinished": "STUCK"}.get(
            status, "FAILED")
        tags.append(f"{label}:{short}")
    return " ".join(tags) or "-"


def soak_tables(report: dict) -> str:
    """Render a soak report dict as the CLI's text output."""
    summary = report["summary"]
    rows = []
    for result in report["scenarios"]:
        rows.append([
            result["index"],
            result["duration"],
            len(result["jobs"]),
            _lane_cell(result["lanes"]),
            "yes" if result["quiesced"] else "NO",
            ("-" if result["engine_agreement"] is None
             else "yes" if result["engine_agreement"] else "DIVERGED"),
            len(result["violations"]),
        ])
    parts = [format_table(
        ["scenario", "duration (s)", "jobs", "lanes", "quiesced",
         "engines agree", "violations"],
        rows,
        title=(f"soak: {summary['scenarios']} scenarios, "
               f"{summary['violations']} violations in "
               f"{summary['scenarios_with_violations']} scenarios"))]
    details = []
    for result in report["scenarios"]:
        for violation in result["violations"]:
            details.append([result["index"], violation["invariant"],
                            violation["time"],
                            violation["detail"][:80]])
    if details:
        parts.append(format_table(
            ["scenario", "invariant", "time (s)", "detail"],
            details, title="violations"))
    if report["reproducers"]:
        parts.append(format_table(
            ["scenario", "invariants", "file", "shrink runs"],
            [[r["index"], ", ".join(r["invariants"]), r["file"],
              r["shrink_runs"]] for r in report["reproducers"]],
            title="shrunk reproducers"))
    return "\n\n".join(parts)
