"""Metascheduler job-stream experiment driver (``repro metasched``).

Serves an open-loop Poisson stream of synthetic multi-tenant jobs (QR,
EMAN, N-body) through :class:`repro.metasched.MetaScheduler` on the
Figure 3 testbed (or a larger multi-cluster grid via ``n_hosts``), then
packages the outcome — per-job rows, the ``meta_*`` counters, and the
reservation-conflict audit — as a deterministic report: same seed, same
bytes.  The planning ``engine`` ("fast" or "reference", DESIGN.md §9.6)
never changes the report: both engines produce byte-identical same-seed
JSON, which is why the engine-performance ``meta_plan_*`` counters are
excluded from :meth:`MetaschedResult.report` (the full snapshot stays
on :attr:`MetaschedResult.counters`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..gis.directory import GridInformationService
from ..metasched import MetaScheduler, generate_stream
from ..microgrid.cluster import Cluster
from ..microgrid.dml import Grid
from ..microgrid.testbed import (
    ARCH_ATHLON_1700,
    ARCH_PII_450,
    ARCH_PII_550,
    ARCH_PIII_933,
    GB1,
    INTERNET_BW,
    fig3_testbed,
)
from ..nws.service import NetworkWeatherService
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .common import JSON_SCHEMA_VERSION, format_table

__all__ = ["MetaschedResult", "run_metasched", "metasched_scale_grid",
           "metasched_tables"]

#: counter-name prefix excluded from deterministic reports — these
#: describe *how* the plan was computed and differ across engines
_ENGINE_COUNTER_PREFIX = "meta_plan_"


@dataclass
class MetaschedResult:
    """One served job stream, reduced to plain data."""

    users: int
    arrival_rate: float
    duration: float
    seed: int
    max_jobs: Optional[int]
    finished_at: float
    n_hosts: Optional[int] = None
    jobs: List[dict] = field(default_factory=list)
    #: full KernelStats snapshot, ``meta_plan_*`` included
    counters: Dict[str, float] = field(default_factory=dict)
    conflicts: List[str] = field(default_factory=list)

    def summary(self) -> dict:
        started = [j for j in self.jobs if j["started_at"] is not None]
        completed = [j for j in self.jobs if j["status"] == "completed"]
        waits = [j["queue_wait"] for j in started]
        horizon = self.finished_at if self.finished_at > 0 else 1.0
        return {
            "submitted": len(self.jobs),
            "completed": len(completed),
            "failed": sum(1 for j in self.jobs if j["status"] == "failed"),
            "rejected": sum(1 for j in self.jobs
                            if j["status"] == "rejected"),
            "backfilled": sum(1 for j in self.jobs if j["backfilled"]),
            "conflicts": len(self.conflicts),
            "makespan_seconds": self.finished_at,
            "throughput_jobs_per_hour": len(completed) / horizon * 3600.0,
            "mean_queue_wait_seconds": (sum(waits) / len(waits)
                                        if waits else 0.0),
        }

    def report(self) -> dict:
        """Engine-independent report: the ``meta_plan_*`` counters (and
        the engine choice itself) are deliberately absent, so the fast
        and reference planners emit byte-identical same-seed JSON."""
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "params": {
                "users": self.users,
                "arrival_rate": self.arrival_rate,
                "duration": self.duration,
                "seed": self.seed,
                "max_jobs": self.max_jobs,
                "n_hosts": self.n_hosts,
            },
            "jobs": self.jobs,
            "counters": {name: value
                         for name, value in self.counters.items()
                         if not name.startswith(_ENGINE_COUNTER_PREFIX)},
            "conflicts": self.conflicts,
            "summary": self.summary(),
        }

    def to_json(self) -> str:
        """Deterministic serialization: equal seeds => equal bytes."""
        return json.dumps(self.report(), sort_keys=True)


def _job_row(state) -> dict:
    spec = state.spec
    return {
        "name": spec.name,
        "user": spec.user,
        "kind": spec.kind,
        "submit_time": spec.submit_time,
        "n_hosts": spec.n_hosts,
        "size": spec.size,
        "status": state.status,
        "reject_reason": state.reject_reason,
        "error": state.error,
        "started_at": state.started_at,
        "finished_at": state.finished_at,
        "queue_wait": state.queue_wait,
        "hosts": list(state.hosts),
        "backfilled": state.backfilled,
    }


#: per-cluster architectures for :func:`metasched_scale_grid` — all
#: ia32 (every synthetic job kind can land anywhere), heterogeneous
#: speeds so the fair-share planner has real choices.
_SCALE_ARCHS = (ARCH_PII_450, ARCH_PII_550, ARCH_PIII_933,
                ARCH_ATHLON_1700)


def metasched_scale_grid(sim: Simulator, n_hosts: int) -> Grid:
    """A larger metascheduler testbed: ``n_hosts`` spread over four
    heterogeneous ia32 clusters chained by Internet links (the stream
    benchmark's 64-host configuration; any size >= 4 works)."""
    if n_hosts < len(_SCALE_ARCHS):
        raise ValueError(f"need at least {len(_SCALE_ARCHS)} hosts")
    grid = Grid(sim)
    per_cluster = n_hosts // len(_SCALE_ARCHS)
    extra = n_hosts - per_cluster * len(_SCALE_ARCHS)
    clusters = []
    for c, arch in enumerate(_SCALE_ARCHS):
        size = per_cluster + (1 if c < extra else 0)
        clusters.append(grid.add_cluster(Cluster(
            sim, grid.topology, f"c{c}", arch=arch, n_hosts=size,
            cores_per_host=1, link_bandwidth=GB1, link_latency=1e-4,
            site=f"SITE{c}")))
    for a, b in zip(clusters, clusters[1:]):
        grid.topology.add_link(a.switch, b.switch,
                               bandwidth=INTERNET_BW, latency=0.011)
    return grid


def run_metasched(users: int = 4, arrival_rate: float = 1 / 120.0,
                  duration: float = 3600.0, seed: int = 0,
                  max_jobs: Optional[int] = None,
                  max_queue: Optional[int] = None,
                  max_per_user: Optional[int] = None,
                  engine: str = "fast",
                  n_hosts: Optional[int] = None,
                  cpu_period: float = 10.0,
                  tracer=None) -> MetaschedResult:
    """Serve one synthetic job stream.

    ``n_hosts=None`` runs on the Figure 3 testbed (12 hosts); an
    integer builds the :func:`metasched_scale_grid` of that size.
    ``cpu_period`` sets the NWS CPU-sensor cadence (long streams can
    afford a coarser one).  ``engine`` selects the planner ("fast" or
    "reference"); the report is byte-identical either way.
    """
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="metasched", seed=seed,
                       users=users, arrival_rate=arrival_rate,
                       duration=duration)
    if n_hosts is None:
        grid = fig3_testbed(sim)
    else:
        grid = metasched_scale_grid(sim, n_hosts)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, cpu_period=cpu_period,
                                deploy_network_sensors=False)
    service = MetaScheduler(sim, grid, gis, nws,
                            max_queue=max_queue, max_per_user=max_per_user,
                            engine=engine)
    specs = generate_stream(users, arrival_rate, duration,
                            RngRegistry(seed), max_jobs=max_jobs)
    done = service.run_stream(specs)
    sim.run(stop_event=done)
    return MetaschedResult(
        users=users, arrival_rate=arrival_rate, duration=duration,
        seed=seed, max_jobs=max_jobs, finished_at=sim.now,
        n_hosts=n_hosts,
        jobs=[_job_row(state) for state in service.states()],
        counters=sim.stats.snapshot(),
        conflicts=service.audit_conflicts())


def metasched_tables(report: dict) -> str:
    """Render a metasched report dict as the CLI's text output."""
    summary = report["summary"]
    rows = []
    for job in report["jobs"]:
        rows.append([
            job["name"], job["user"], job["kind"], job["n_hosts"],
            job["submit_time"], job["status"],
            job["queue_wait"] if job["queue_wait"] is not None else "-",
            (job["finished_at"] - job["started_at"]
             if job["finished_at"] is not None
             and job["started_at"] is not None else "-"),
            "yes" if job["backfilled"] else "",
            job["reject_reason"] or job["error"] or "",
        ])
    parts = [format_table(
        ["job", "user", "kind", "hosts", "submit (s)", "status",
         "wait (s)", "run (s)", "backfill", "note"],
        rows,
        title=(f"metasched: {summary['submitted']} submitted, "
               f"{summary['completed']} completed, "
               f"{summary['rejected']} rejected, "
               f"{summary['conflicts']} reservation conflicts"))]
    parts.append(format_table(
        ["makespan (s)", "throughput (jobs/h)", "mean wait (s)",
         "backfilled", "reservations"],
        [[summary["makespan_seconds"],
          summary["throughput_jobs_per_hour"],
          summary["mean_queue_wait_seconds"],
          summary["backfilled"],
          int(report["counters"]["meta_reservations"])]],
        title="stream summary"))
    return "\n\n".join(parts)
