"""Figure 3 — QR factorization under stop/restart rescheduling.

The §4.1.2 experiment: a ScaLAPACK QR job starts on the 4-node UTK
cluster; 300 s in ("five minutes after the start of the application"),
an artificial load lands on one UTK node.  The contract monitor
requests migration; the rescheduler either keeps the job on UTK or
migrates it to the 8-node UIUC cluster across the Internet.

For each matrix size the experiment runs the *forced* modes — left bar
(no rescheduling, force-stay) and right bar (rescheduling,
force-migrate) — and additionally records what the *default*
cost/benefit rescheduler (with the paper's 900 s worst-case pessimism)
would have decided, reproducing the wrong-decision analysis at the
crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..appmanager.manager import GradsEnvironment
from ..apps.qr import QrBenchmark
from ..microgrid.loadgen import ScheduledLoad
from ..microgrid.testbed import fig3_testbed
from ..sim.kernel import Simulator
from .common import format_table

__all__ = ["Fig3Point", "Fig3Result", "run_fig3_point", "run_fig3",
           "PHASES", "DEFAULT_SIZES", "WORST_CASE_SECONDS"]

#: the stacked-bar components of Figure 3, in stacking order
PHASES = (
    "resource_selection_1", "performance_modeling_1", "grid_overhead_1",
    "application_start_1", "application_duration_1", "checkpoint_write_1",
    "resource_selection_2", "performance_modeling_2", "grid_overhead_2",
    "application_start_2", "checkpoint_read_2", "application_duration_2",
)

DEFAULT_SIZES = (6000, 7000, 8000, 9000, 10000, 11000, 12000)
WORST_CASE_SECONDS = 900.0
LOAD_AT_SECONDS = 300.0
LOAD_PROCS = 8


@dataclass
class Fig3Point:
    """One bar of Figure 3."""

    n: int
    mode: str  # "no-reschedule" or "reschedule"
    total_seconds: float
    phases: Dict[str, float] = field(default_factory=dict)
    migrations: int = 0

    def phase(self, name: str) -> float:
        return self.phases.get(name, 0.0)


@dataclass
class Fig3Result:
    """The whole figure plus the default-mode decision table."""

    points: List[Fig3Point] = field(default_factory=list)
    #: n -> (decided_to_migrate, evaluation benefit with worst-case cost,
    #:       true benefit using measured costs, decision_was_correct)
    decisions: Dict[int, dict] = field(default_factory=dict)

    def pair(self, n: int):
        stay = next(p for p in self.points
                    if p.n == n and p.mode == "no-reschedule")
        move = next(p for p in self.points
                    if p.n == n and p.mode == "reschedule")
        return stay, move

    def sizes(self) -> List[int]:
        return sorted({p.n for p in self.points})

    def crossover_size(self) -> Optional[int]:
        """Smallest size where rescheduling wins."""
        for n in self.sizes():
            stay, move = self.pair(n)
            if move.total_seconds < stay.total_seconds:
                return n
        return None

    def to_table(self) -> str:
        headers = ["N", "mode", "total"] + [p.replace("_", " ")
                                            for p in PHASES]
        rows = []
        for point in sorted(self.points, key=lambda p: (p.n, p.mode)):
            rows.append([point.n, point.mode, point.total_seconds]
                        + [point.phase(name) for name in PHASES])
        return format_table(headers, rows,
                            title="Figure 3: QR execution time breakdown (s)")

    def decision_table(self) -> str:
        headers = ["N", "default decision", "benefit(worst-case)",
                   "benefit(actual)", "correct?"]
        rows = []
        for n in sorted(self.decisions):
            d = self.decisions[n]
            rows.append([n,
                         "migrate" if d["migrate"] else "stay",
                         d["benefit_worst_case"],
                         d["benefit_actual"],
                         "yes" if d["correct"] else "WRONG"])
        return format_table(
            headers, rows,
            title=f"Rescheduler decisions (worst-case cost "
                  f"{WORST_CASE_SECONDS:.0f} s)")


def run_fig3_point(n: int, mode: str, nb: int = 200,
                   load_at: float = LOAD_AT_SECONDS,
                   load_procs: int = LOAD_PROCS,
                   seed: int = 0,
                   tracer=None) -> Fig3Point:
    """Run one bar: a full GrADS lifecycle on a fresh virtual grid.

    ``seed`` follows the repo-wide experiment convention (DESIGN.md
    §9.5): recorded in the meta trace; driver randomness, if any, must
    come from ``RngRegistry(seed)`` (this scenario is scripted).
    """
    if mode not in ("no-reschedule", "reschedule"):
        raise ValueError(f"unknown mode {mode!r}")
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="fig3", n=n, mode=mode,
                       seed=seed)
    grid = fig3_testbed(sim)
    env = GradsEnvironment(sim, grid, submission_host="utk.n0")
    benchmark = QrBenchmark(n=n, nb=nb)
    run, monitor, rescheduler = env.managed_qr(
        benchmark,
        initial_hosts=grid.clusters["utk"].host_names(),
        rescheduler_mode=("force-stay" if mode == "no-reschedule"
                          else "force-migrate"),
        worst_case_migration_seconds=None)
    ScheduledLoad(host=grid.clusters["utk"][0], at=load_at,
                  nprocs=load_procs).install(sim)
    finished = run.start()
    sim.run(stop_event=finished)
    return Fig3Point(n=n, mode=mode, total_seconds=sim.now,
                     phases=dict(run.timings), migrations=run.migrations)


def _default_decision(n: int, nb: int, stay: Fig3Point, move: Fig3Point,
                      load_at: float, load_procs: int,
                      seed: int = 0,
                      tracer=None) -> dict:
    """Replay the default-mode rescheduler and score its decision
    against the measured forced-mode outcomes."""
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="fig3", n=n, mode="default",
                       seed=seed)
    grid = fig3_testbed(sim)
    env = GradsEnvironment(sim, grid, submission_host="utk.n0")
    benchmark = QrBenchmark(n=n, nb=nb)
    run, monitor, rescheduler = env.managed_qr(
        benchmark,
        initial_hosts=grid.clusters["utk"].host_names(),
        rescheduler_mode="default",
        worst_case_migration_seconds=WORST_CASE_SECONDS)
    ScheduledLoad(host=grid.clusters["utk"][0], at=load_at,
                  nprocs=load_procs).install(sim)
    finished = run.start()
    sim.run(stop_event=finished)
    migrate = run.migrations > 0
    if rescheduler.decisions:
        ev = rescheduler.decisions[0].evaluation
        benefit_worst = ev.remaining_current - (ev.remaining_new
                                                + ev.migration_cost)
        benefit_actual_est = ev.remaining_current - (
            ev.remaining_new + ev.app_cost_estimate)
    else:
        benefit_worst = 0.0
        benefit_actual_est = 0.0
    # Ground truth from the forced runs: was migrating actually faster?
    true_gain = stay.total_seconds - move.total_seconds
    correct = (migrate and true_gain > 0) or (not migrate and true_gain <= 0)
    if not rescheduler.decisions:
        # no violation confirmed (app finished before/around the load):
        # staying was trivially correct if it was no slower
        correct = true_gain <= 0
    return {
        "migrate": migrate,
        "benefit_worst_case": benefit_worst,
        "benefit_actual": benefit_actual_est,
        "true_gain": true_gain,
        "correct": correct,
        "requested": bool(rescheduler.decisions),
    }


def run_fig3(sizes: Sequence[int] = DEFAULT_SIZES, nb: int = 200,
             load_at: float = LOAD_AT_SECONDS,
             load_procs: int = LOAD_PROCS,
             with_decisions: bool = True,
             seed: int = 0,
             tracer=None) -> Fig3Result:
    """Regenerate Figure 3 (both bars per size) plus the decision table.

    A supplied ``tracer`` is rebound to every bar's fresh simulator, so
    the exported trace carries one timeline (Chrome ``pid``) per run.
    """
    result = Fig3Result()
    for n in sizes:
        stay = run_fig3_point(n, "no-reschedule", nb=nb, load_at=load_at,
                              load_procs=load_procs, seed=seed,
                              tracer=tracer)
        move = run_fig3_point(n, "reschedule", nb=nb, load_at=load_at,
                              load_procs=load_procs, seed=seed,
                              tracer=tracer)
        result.points.extend([stay, move])
        if with_decisions:
            result.decisions[n] = _default_decision(
                n, nb, stay, move, load_at, load_procs, seed=seed,
                tracer=tracer)
    return result
