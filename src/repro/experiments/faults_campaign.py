"""Fault-injection campaign experiment driver (``repro faults``).

Thin presentation layer over :mod:`repro.faults`: builds the campaign,
and renders its deterministic report as the CLI's tables.  All actual
mechanics — the MTBF/MTTR sweep, the scripted kill scenarios, the
recovery bookkeeping — live in the faults package.
"""

from __future__ import annotations

from typing import List

from ..faults.campaign import CampaignResult, CampaignSpec, run_campaign
from .common import format_table

__all__ = ["run_faults_campaign", "campaign_tables"]


def run_faults_campaign(spec: CampaignSpec, with_scenarios: bool = True,
                        tracer=None) -> CampaignResult:
    """Run the sweep (and scenarios) for the CLI."""
    return run_campaign(spec, with_scenarios=with_scenarios, tracer=tracer)


def _cell_rows(report: dict) -> List[list]:
    rows = []
    for cell in report["cells"]:
        rows.append([
            cell["mtbf"], cell["mttr"], cell["trial"], cell["outcome"],
            cell["wall_seconds"], f"{cell['steps_done']}/{cell['steps_total']}",
            cell["goodput_mflops"], cell["injected_failures"],
            cell["failures_recovered"], cell["retry_waits"],
            cell["migrations"], cell["aborted_migrations"],
        ])
    return rows


def _scenario_rows(report: dict) -> List[list]:
    rows = []
    for scenario in report["scenarios"]:
        rows.append([
            scenario["name"], "pass" if scenario["passed"] else "FAIL",
            scenario["wall_seconds"], scenario["failures_recovered"],
            scenario["retry_waits"], scenario["aborted_migrations"],
            ",".join(scenario["migrating_leaked"]) or "-",
        ])
    return rows


def campaign_tables(report: dict) -> str:
    """Render a campaign report dict as the CLI's text output."""
    summary = report["summary"]
    parts = [format_table(
        ["mtbf", "mttr", "trial", "outcome", "wall (s)", "steps",
         "goodput (Mflop/s)", "injected", "recovered", "retries",
         "migrations", "aborted"],
        _cell_rows(report),
        title=f"fault campaign: {summary['trials']} trials, completion "
              f"rate {summary['completion_rate']:.2f}")]
    if report["scenarios"]:
        parts.append(format_table(
            ["scenario", "result", "wall (s)", "recovered", "retries",
             "aborted migrations", "leaked"],
            _scenario_rows(report),
            title=f"kill scenarios: {summary['scenarios_passed']}/"
                  f"{summary['scenarios_total']} passed"))
    return "\n\n".join(parts)
