"""Figure 4 — N-body progress under process-swap rescheduling.

The §4.2 MicroGrid experiment: an N-body simulation runs its three
active processes on the UTK cluster of the emulated grid, with three
idle UIUC machines in the inactive set and the contract-monitor
infrastructure on the lone UCSD node.  At virtual time 80 s, two
competitive processes land on one UTK machine; the swap rescheduler
detects the slowdown and moves the work to UIUC (the paper observes
all three processes migrated by ~150 s); application progress —
iteration number against time — dips and then recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..apps.nbody import NBodySimulation, ProgressPoint
from ..microgrid.loadgen import ScheduledLoad
from ..microgrid.testbed import fig4_testbed
from ..nws.service import NetworkWeatherService
from ..rescheduling.swapping import SwapRescheduler
from ..sim.kernel import Simulator
from .common import format_series

__all__ = ["Fig4Result", "run_fig4"]

LOAD_AT_SECONDS = 80.0
LOAD_PROCS = 2


@dataclass
class Fig4Result:
    """The progress curve plus swap telemetry."""

    progress: List[ProgressPoint] = field(default_factory=list)
    swap_times: List[float] = field(default_factory=list)
    swapped_to: List[str] = field(default_factory=list)
    finished_at: float = 0.0
    policy: str = "gang"
    #: kernel/substrate perf counters for the run (sim.stats snapshot)
    stats: dict = field(default_factory=dict)

    def iterations_by(self, time: float) -> int:
        """Iterations completed by a given virtual time."""
        done = 0
        for point in self.progress:
            if point.time <= time:
                done = point.iteration
        return done

    def rate_between(self, t0: float, t1: float) -> float:
        """Average iterations/second over a window."""
        if t1 <= t0:
            raise ValueError("empty window")
        return (self.iterations_by(t1) - self.iterations_by(t0)) / (t1 - t0)

    def all_swaps_done_by(self) -> Optional[float]:
        return max(self.swap_times) if self.swap_times else None

    def to_series(self) -> str:
        return format_series(
            [(p.time, p.iteration) for p in self.progress],
            x_label="time (s)", y_label="iteration",
            title="Figure 4: emulated application progress")


def run_fig4(n_bodies: int = 9000, n_iterations: int = 120,
             policy: str = "gang", with_swapping: bool = True,
             load_at: float = LOAD_AT_SECONDS,
             load_procs: int = LOAD_PROCS,
             swap_period: float = 10.0,
             improvement: float = 1.1,
             seed: int = 0,
             tracer=None) -> Fig4Result:
    """Run the Figure 4 scenario; disable swapping for the baseline.

    ``tracer`` (a :class:`repro.trace.Tracer`) records the run's event
    timeline; the CLI's ``fig4 --trace PATH`` exports it.  ``seed``
    follows the repo-wide experiment convention (see DESIGN.md §9.5):
    it is recorded in the meta trace, and any driver randomness must be
    drawn from ``RngRegistry(seed)`` (this scenario is scripted, so the
    seed currently only labels the run).
    """
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="fig4", policy=policy,
                       iterations=n_iterations, swapping=with_swapping,
                       seed=seed)
    grid = fig4_testbed(sim)
    nws = NetworkWeatherService(sim, grid, cpu_period=5.0,
                                deploy_network_sensors=False)
    pool = grid.clusters["utk"].hosts + grid.clusters["uiuc"].hosts
    app = NBodySimulation(sim, grid.topology, pool, active_n=3,
                          n_bodies=n_bodies, n_iterations=n_iterations)
    ScheduledLoad(host=grid.clusters["utk"][0], at=load_at,
                  nprocs=load_procs).install(sim)
    if with_swapping:
        rescheduler = SwapRescheduler(sim, app.job, nws, policy=policy,
                                      period=swap_period,
                                      improvement=improvement)
        rescheduler.start()
    done = app.launch()
    sim.run(stop_event=done)
    return Fig4Result(
        progress=list(app.progress),
        swap_times=[record.time for record in app.job.swap_log],
        swapped_to=[record.new_host for record in app.job.swap_log],
        finished_at=sim.now,
        policy=policy if with_swapping else "none",
        stats=sim.stats.snapshot())
