"""Workflow-scheduler throughput benchmark (the §3.1 hot path).

PR 1's substrate bench isolates the network allocator; this one
isolates the list-scheduling engine.  The workload is an EMAN-shaped
refinement round — a linear six-stage DAG whose ``classesbymra`` stage
fans out to hundreds of independent tasks, the worst case for the
pre-overhaul O(T²·R) builder — scheduled onto a heterogeneous
multi-cluster grid.

``run_scheduler_bench(engine="fast")`` vs ``"reference"`` isolates the
incremental engine's speedup: both engines produce identical schedules
(property-tested in ``tests/scheduler/test_fast_reference.py`` and
asserted again here via :func:`schedules_equal`), so wall-clock and
evaluations/sec are directly comparable.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Sequence, Tuple

from ..apps.eman import EmanParameters, eman_refinement_workflow
from ..gis.directory import GridInformationService
from ..microgrid.cluster import Cluster
from ..microgrid.dml import Grid
from ..microgrid.host import Architecture, CacheLevel
from ..nws.service import NetworkWeatherService
from ..scheduler.heuristics import (
    HEURISTICS,
    REFERENCE_HEURISTICS,
    Schedule,
)
from ..scheduler.ranking import RankMatrix, build_rank_matrix
from ..scheduler.workflow import Workflow
from ..sim.kernel import Simulator

__all__ = ["build_scheduler_bench_env", "run_scheduler_bench",
           "schedules_equal"]

#: per-cluster sustained speeds (Mflop/s) — heterogeneous on purpose so
#: the completion-time heuristics have real choices to rank.
_CLUSTER_MFLOPS = (200.0, 300.0, 400.0, 600.0)
_GB1 = 125e6
_WAN_BW = 5e6
_WAN_LAT = 0.011


def build_scheduler_bench_env(n_tasks: int = 512, n_hosts: int = 32,
                              ) -> Tuple[Workflow, RankMatrix,
                                         NetworkWeatherService]:
    """(workflow, rank matrix, nws) for one benchmark run.

    ``n_tasks`` sizes the ``classesbymra`` fan-out; ``n_hosts`` spreads
    over four clusters of distinct speeds chained over WAN links.
    """
    if n_hosts < len(_CLUSTER_MFLOPS):
        raise ValueError(f"need at least {len(_CLUSTER_MFLOPS)} hosts")
    sim = Simulator()
    grid = Grid(sim)
    per_cluster = n_hosts // len(_CLUSTER_MFLOPS)
    extra = n_hosts - per_cluster * len(_CLUSTER_MFLOPS)
    clusters = []
    for c, mflops in enumerate(_CLUSTER_MFLOPS):
        size = per_cluster + (1 if c < extra else 0)
        arch = Architecture(
            name=f"bench-{int(mflops)}", mflops=mflops, isa="ia32",
            caches=(CacheLevel(size=512 * 1024),), memory_bytes=1 << 30)
        clusters.append(grid.add_cluster(Cluster(
            sim, grid.topology, f"c{c}", arch=arch, n_hosts=size,
            cores_per_host=1, link_bandwidth=_GB1, link_latency=1e-4,
            site=f"SITE{c}")))
    for a, b in zip(clusters, clusters[1:]):
        grid.topology.add_link(a.switch, b.switch,
                               bandwidth=_WAN_BW, latency=_WAN_LAT)

    nws = NetworkWeatherService(sim, grid)
    gis = GridInformationService()
    gis.register_grid(grid)

    workflow = eman_refinement_workflow(
        EmanParameters(), classesbymra_tasks=n_tasks,
        classalign_tasks=max(n_tasks // 32, 1), project_tasks=4)
    first_host = grid.all_hosts()[0].name
    matrix = build_rank_matrix(workflow, gis, nws,
                               data_sources={"proc3d": [first_host]})
    return workflow, matrix, nws


def schedules_equal(a: Schedule, b: Schedule) -> bool:
    """Placement-for-placement equality (resources and exact times)."""
    if set(a.placements) != set(b.placements):
        return False
    for name, p in a.placements.items():
        q = b.placements[name]
        if (p.resource != q.resource or p.est_start != q.est_start
                or p.est_finish != q.est_finish):
            return False
    return True


def run_scheduler_bench(n_tasks: int = 512, n_hosts: int = 32,
                        engine: str = "fast",
                        heuristics: Sequence[str] = ("min-min", "max-min",
                                                     "sufferage"),
                        keep_schedules: bool = False,
                        env: Optional[Tuple] = None) -> Dict[str, object]:
    """Time the requested engine over the paper's three heuristics.

    Returns wall seconds, per-heuristic makespans and the scheduler
    counters (rounds / candidate evaluations / forecast-memo hits) from
    the run.  Pass ``env`` (a :func:`build_scheduler_bench_env` result)
    to reuse one grid across engines so comparisons see identical
    forecasts.
    """
    registry = {"fast": HEURISTICS, "reference": REFERENCE_HEURISTICS}
    try:
        table = registry[engine]
    except KeyError:
        raise ValueError(f"unknown engine {engine!r}") from None
    for name in heuristics:
        if name not in table:
            raise ValueError(f"unknown heuristic {name!r}")
    if env is None:
        env = build_scheduler_bench_env(n_tasks=n_tasks, n_hosts=n_hosts)
    workflow, matrix, nws = env
    stats = nws.sim.stats
    stats.reset()  # bill only the scheduling work, not env construction

    makespans: Dict[str, float] = {}
    schedules: Dict[str, Schedule] = {}
    # simlint: the harness times *itself* in wall-clock seconds; nothing
    # inside the scheduling run reads these values.
    wall_start = perf_counter()  # simlint: ignore[SL001] — benchmark wall time
    for name in heuristics:
        schedule = table[name](workflow, matrix, nws)
        makespans[name] = float(schedule.makespan)
        if keep_schedules:
            schedules[name] = schedule
    elapsed = perf_counter() - wall_start  # simlint: ignore[SL001] — benchmark wall time

    snapshot = stats.snapshot()
    result: Dict[str, object] = {
        "engine": engine,
        "n_tasks": len(matrix.tasks),
        "n_hosts": len(matrix.resources),
        "heuristics": list(heuristics),
        "wall_seconds": elapsed,
        "makespans": makespans,
        "sched_rounds": int(snapshot["sched_rounds"]),
        "sched_evaluations": int(snapshot["sched_evaluations"]),
        "sched_memo_hits": int(snapshot["sched_memo_hits"]),
        "evaluations_per_sec": (snapshot["sched_evaluations"] / elapsed
                                if elapsed > 0 else float("inf")),
    }
    if keep_schedules:
        result["schedules"] = schedules
    return result
