"""Fault-injection campaigns over the GrADS reproduction.

The paper names fault tolerance as the VGrADS follow-on's headline
capability (§5); this package is the measurement harness for it: a
campaign runner that sweeps MTBF/MTTR grids of seeded random failure
injection over the managed QR pipeline, plus scripted kill scenarios
that pin down the recovery paths (host death mid-migration, loss of
every candidate cluster, repeated crash/recover churn).
"""

from .campaign import (
    CampaignResult,
    CampaignSpec,
    cell_seed,
    run_campaign,
    run_cell,
)
from .scenarios import (
    SCENARIOS,
    run_scenario,
    run_scenarios,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "SCENARIOS",
    "cell_seed",
    "run_campaign",
    "run_cell",
    "run_scenario",
    "run_scenarios",
]
