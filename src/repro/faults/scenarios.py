"""Scripted kill scenarios for the recovery paths.

Unlike the stochastic campaign grid, each scenario stages one specific
failure the hardening work targets and checks the invariants that used
to break:

* ``host-death-mid-migration`` — a source host dies while the job is
  checkpointing for a rescheduler-ordered migration.  The migration
  event must fail (not hang), the rescheduler must abandon the attempt
  (``_migrating`` empty, targets blacklisted), and the run must still
  complete via checkpoint restart.
* ``candidate-set-wipeout`` — every host of every candidate cluster
  dies at once; resource selection finds nothing.  The manager must
  wait out the outage with bounded exponential backoff and finish once
  a cluster recovers, instead of dying on the mapper's RuntimeError.
* ``crash-recover-churn`` — the contract-monitored job's hosts crash
  and recover repeatedly.  Every crash must restart from checkpoint,
  and the monitor must stay sane across re-attached segments.

Every scenario is fully scripted (no RNG), so its result dict is
deterministic down to the byte.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..appmanager.manager import GradsEnvironment
from ..apps.qr import QrBenchmark
from ..microgrid.failures import ScheduledFailure
from ..microgrid.loadgen import ScheduledLoad
from ..microgrid.testbed import fig3_testbed
from ..sim.kernel import Simulator

__all__ = ["SCENARIOS", "run_scenario", "run_scenarios"]

_SUBMISSION = "utk.n3"
_DEADLINE = 40000.0


def _build(sim: Simulator, n: int, mode: str, checkpoint_every: int,
           migration_timeout: float = 3600.0):
    grid = fig3_testbed(sim)
    env = GradsEnvironment(sim, grid, submission_host=_SUBMISSION)
    benchmark = QrBenchmark(n=n, nb=200)
    initial = grid.clusters["utk"].host_names()[:3]
    run, monitor, rescheduler = env.managed_qr(
        benchmark, initial_hosts=initial, rescheduler_mode=mode,
        checkpoint_every=checkpoint_every, stable_storage=True,
        migration_timeout_seconds=migration_timeout,
        blacklist_seconds=600.0)
    return grid, env, run, monitor, rescheduler


def _finish(sim: Simulator, finished, run, rescheduler) -> dict:
    error = None
    try:
        sim.run(until=_DEADLINE, stop_event=finished)
    except RuntimeError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return {
        "completed": bool(finished.triggered and finished.ok),
        "error": error,
        "wall_seconds": sim.now,
        "failures_recovered": run.failures_recovered,
        "retry_waits": run.retry_waits,
        "migrations": run.migrations,
        "aborted_migrations": rescheduler.aborted_migrations,
        "migrating_leaked": sorted(rescheduler._migrating),
        "blacklisted": rescheduler.blacklisted_hosts(),
    }


def host_death_mid_migration(tracer=None) -> dict:
    """Kill a source host during the checkpoint-for-migration write."""
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="faults",
                       scenario="host-death-mid-migration")
    grid, env, run, monitor, rescheduler = _build(
        sim, n=8000, mode="force-migrate", checkpoint_every=4)
    # The §4.1.2 trigger: artificial load lands on one UTK node, the
    # monitor confirms the violation and the rescheduler orders a
    # migration to UIUC.
    ScheduledLoad(host=grid.clusters["utk"][0], at=300.0,
                  nprocs=8).install(sim)

    def assassin():
        # Strike the moment the migration is in flight (the stop has
        # been requested, ranks are checkpointing toward the move).
        while True:
            yield sim.timeout(2.0)
            if run._migration_target is not None:
                victim = env.gis.host("utk.n0")
                if victim.alive:
                    victim.fail()
                return

    sim.process(assassin(), name="scenario:assassin")
    finished = run.start()
    result = _finish(sim, finished, run, rescheduler)
    result["name"] = "host-death-mid-migration"
    result["passed"] = (result["completed"]
                        and result["failures_recovered"] >= 1
                        and result["aborted_migrations"] >= 1
                        and not result["migrating_leaked"])
    return result


def candidate_set_wipeout(tracer=None) -> dict:
    """Kill every host of every candidate cluster at once."""
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="faults",
                       scenario="candidate-set-wipeout")
    grid, env, run, monitor, rescheduler = _build(
        sim, n=6000, mode="force-stay", checkpoint_every=3)
    # At t=150 the job's three UTK hosts die for good and all of UIUC
    # goes down too; only the submission host survives, and no cluster
    # has the >= 2 live hosts resource selection demands.  UIUC comes
    # back at t=600 — within the backoff budget.
    for name in grid.clusters["utk"].host_names()[:3]:
        ScheduledFailure(host=env.gis.host(name), at=150.0).install(sim)
    for name in grid.clusters["uiuc"].host_names():
        ScheduledFailure(host=env.gis.host(name), at=150.0,
                         recover_at=600.0).install(sim)
    finished = run.start()
    result = _finish(sim, finished, run, rescheduler)
    result["name"] = "candidate-set-wipeout"
    result["passed"] = (result["completed"]
                        and result["failures_recovered"] >= 1
                        and result["retry_waits"] >= 1)
    return result


def crash_recover_churn(tracer=None) -> dict:
    """Crash and recover the monitored job's hosts again and again."""
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="faults",
                       scenario="crash-recover-churn")
    grid, env, run, monitor, rescheduler = _build(
        sim, n=6000, mode="default", checkpoint_every=3)
    # Three crash/recover cycles, each striking a host the job occupies
    # *at that moment* — restarts may hop clusters, so the victim is
    # chosen live rather than scripted by name.
    victims: List[str] = []

    def churn():
        yield sim.timeout(80.0)
        for _cycle in range(3):
            if run.finished is not None and run.finished.triggered:
                return
            victim = None
            for name in run.current_hosts():
                host = env.gis.host(name)
                if host.alive and name != _SUBMISSION:
                    victim = host
                    break
            if victim is None:
                return
            victim.fail()
            victims.append(victim.name)
            yield sim.timeout(40.0)
            if not victim.alive:
                victim.recover()
            yield sim.timeout(110.0)

    sim.process(churn(), name="scenario:churn")
    finished = run.start()
    result = _finish(sim, finished, run, rescheduler)
    result["name"] = "crash-recover-churn"
    result["victims"] = victims
    result["monitor_ratios"] = len(monitor.ratios)
    result["passed"] = (result["completed"]
                        and result["failures_recovered"] >= 2
                        and not result["migrating_leaked"])
    return result


#: scenario registry, in report order
SCENARIOS: Dict[str, Callable[..., dict]] = {
    "host-death-mid-migration": host_death_mid_migration,
    "candidate-set-wipeout": candidate_set_wipeout,
    "crash-recover-churn": crash_recover_churn,
}


def run_scenario(name: str, tracer=None) -> dict:
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}")
    return SCENARIOS[name](tracer=tracer)


def run_scenarios(tracer=None) -> List[dict]:
    return [fn(tracer=tracer) for fn in SCENARIOS.values()]
