"""The fault-injection campaign runner.

A campaign sweeps a grid of (MTBF, MTTR) points; each grid cell runs
``trials`` independent managed QR executions on a fresh §4.1.2 testbed
with a seeded :class:`~repro.microgrid.failures.RandomFailureInjector`
driving every host except the submission/stable-storage node.  Per-cell
seeds are derived arithmetically from the campaign seed, so the whole
report is a pure function of the spec: two runs with equal specs
produce byte-identical JSON (the CI smoke job ``cmp``'s them).

Reported per trial: completion, goodput (useful Mflop per simulated
second), injected failures, recoveries and their checkpoint-restart
latencies, migrations, rescheduler decisions and aborted migrations.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from ..appmanager.manager import GradsEnvironment
from ..apps.qr import QrBenchmark
from ..experiments.common import JSON_SCHEMA_VERSION
from ..microgrid.failures import RandomFailureInjector
from ..microgrid.testbed import fig3_testbed
from ..sim.kernel import Simulator

__all__ = ["CampaignSpec", "CampaignResult", "cell_seed", "run_cell",
           "run_campaign"]

#: the node that submits the job and hosts SRS stable storage; it is
#: never handed to the failure injector (a campaign measures recovery,
#: not loss of the recovery substrate itself)
SUBMISSION_HOST = "utk.n3"


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign's outcome."""

    mtbf_grid: tuple = (400.0, 1200.0)
    mttr_grid: tuple = (90.0,)
    trials: int = 2
    seed: int = 0
    n: int = 6000
    nb: int = 200
    checkpoint_every: int = 5
    deadline: float = 20000.0
    migration_timeout_seconds: float = 3600.0
    blacklist_seconds: float = 600.0
    max_restart_attempts: int = 8
    retry_backoff_seconds: float = 5.0

    def __post_init__(self) -> None:
        if not self.mtbf_grid or not self.mttr_grid:
            raise ValueError("need at least one MTBF and one MTTR value")
        if any(v <= 0 for v in self.mtbf_grid + self.mttr_grid):
            raise ValueError("MTBF/MTTR values must be positive")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def cells(self) -> List[tuple]:
        """The (mtbf, mttr) grid, in deterministic sweep order."""
        return [(mtbf, mttr)
                for mtbf in self.mtbf_grid for mttr in self.mttr_grid]


def cell_seed(spec: CampaignSpec, cell_index: int, trial: int) -> int:
    """Derived injector seed: unique per (campaign seed, cell, trial)."""
    return spec.seed * 1_000_003 + cell_index * 10_007 + trial


def run_cell(spec: CampaignSpec, mtbf: float, mttr: float, trial: int,
             seed: int, tracer=None) -> dict:
    """One trial: managed QR under random failure injection."""
    sim = Simulator()
    if tracer is not None:
        tracer.bind(sim)
        tracer.instant("meta", "run", experiment="faults", mtbf=mtbf,
                       mttr=mttr, trial=trial, seed=seed)
    grid = fig3_testbed(sim)
    env = GradsEnvironment(sim, grid, submission_host=SUBMISSION_HOST)
    benchmark = QrBenchmark(n=spec.n, nb=spec.nb)
    initial = grid.clusters["utk"].host_names()[:3]
    run, monitor, rescheduler = env.managed_qr(
        benchmark, initial_hosts=initial,
        rescheduler_mode="default",
        checkpoint_every=spec.checkpoint_every,
        stable_storage=True,
        max_restart_attempts=spec.max_restart_attempts,
        retry_backoff_seconds=spec.retry_backoff_seconds,
        migration_timeout_seconds=spec.migration_timeout_seconds,
        blacklist_seconds=spec.blacklist_seconds)
    injector = RandomFailureInjector(
        [h for h in grid.all_hosts() if h.name != SUBMISSION_HOST],
        mtbf=mtbf, mttr=mttr, seed=seed)
    injector.install(sim)
    finished = run.start()
    error: Optional[str] = None
    try:
        sim.run(until=spec.deadline, stop_event=finished)
    except RuntimeError as exc:  # includes HostFailure
        error = f"{type(exc).__name__}: {exc}"
    completed = bool(finished.triggered and finished.ok)
    if completed:
        outcome = "completed"
    elif error is not None:
        outcome = "failed"
    else:
        outcome = "deadline"
    done_mflop = sum(benchmark.step_mflop(j) for j in range(run.progress))
    latencies = sorted(
        r["restarted_at"] - r["crashed_at"]
        for r in run.recoveries if r.get("restarted_at") is not None)
    return {
        "mtbf": mtbf,
        "mttr": mttr,
        "trial": trial,
        "seed": seed,
        "outcome": outcome,
        "completed": completed,
        "error": error,
        "wall_seconds": sim.now,
        "steps_done": run.progress,
        "steps_total": benchmark.steps,
        "goodput_mflops": done_mflop / sim.now if sim.now > 0 else 0.0,
        "injected_failures": len(injector.failures),
        "failures_recovered": run.failures_recovered,
        "retry_waits": run.retry_waits,
        "migrations": run.migrations,
        "reschedule_decisions": len(rescheduler.decisions),
        "aborted_migrations": rescheduler.aborted_migrations,
        "migrating_leaked": sorted(rescheduler._migrating),
        "restart_latencies": {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "max": latencies[-1] if latencies else 0.0,
        },
    }


@dataclass
class CampaignResult:
    """A finished campaign: per-trial rows plus scenario outcomes."""

    spec: CampaignSpec
    cells: List[dict] = field(default_factory=list)
    scenarios: List[dict] = field(default_factory=list)

    def completion_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(1 for c in self.cells if c["completed"]) / len(self.cells)

    def report(self) -> dict:
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "spec": asdict(self.spec),
            "cells": self.cells,
            "scenarios": self.scenarios,
            "summary": {
                "trials": len(self.cells),
                "completion_rate": self.completion_rate(),
                "total_injected_failures": sum(
                    c["injected_failures"] for c in self.cells),
                "total_recoveries": sum(
                    c["failures_recovered"] for c in self.cells),
                "total_migrations": sum(
                    c["migrations"] for c in self.cells),
                "total_aborted_migrations": sum(
                    c["aborted_migrations"] for c in self.cells),
                "scenarios_passed": sum(
                    1 for s in self.scenarios if s["passed"]),
                "scenarios_total": len(self.scenarios),
            },
        }

    def to_json(self) -> str:
        """Deterministic serialization: equal specs => equal bytes."""
        return json.dumps(self.report(), sort_keys=True)


def run_campaign(spec: CampaignSpec, with_scenarios: bool = True,
                 tracer=None) -> CampaignResult:
    """Run the full grid sweep (and, by default, the kill scenarios)."""
    from .scenarios import run_scenarios

    result = CampaignResult(spec=spec)
    for cell_index, (mtbf, mttr) in enumerate(spec.cells()):
        for trial in range(spec.trials):
            seed = cell_seed(spec, cell_index, trial)
            result.cells.append(
                run_cell(spec, mtbf, mttr, trial, seed, tracer=tracer))
    if with_scenarios:
        result.scenarios = run_scenarios(tracer=tracer)
    return result
