"""Yield-point dataflow: the SL020–SL023 flow rule implementations.

Only functions the :class:`~repro.simlint.symbols.ProjectGraph` marks
as simulated-process generators are analysed — a yield in a plain data
iterator is not a scheduling point, so the cross-yield hazards these
rules describe do not apply there.

The core pass (SL020/SL023) is a forward worklist dataflow over the
per-function CFG (:mod:`repro.simlint.cfg`).  The abstract state maps
local variable names to sets of ``(kind, name, crossed)`` taints: the
variable holds a value read from shared state (``self.<name>`` or a
mutable module global), and ``crossed`` records whether a yield has
been executed since the read.  A yield flips every taint to crossed;
re-reading the shared origin clears the flag (the function is
presumed to have refreshed its view — the "without a re-read"
exoneration); assigning anything non-shared to the variable kills the
taint.  Checks fire on writes/mutations/returns that consume a
crossed taint.

SL021 and SL022 are syntactic over the same symbol graph: SL021 finds
``for`` loops that iterate a shared container with a yield in the
body while *another* function mutates that container in place, and
SL022 finds named RNG streams drawn from more than one process
generator (event interleaving then reorders the draws).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .cfg import CfgNode, build_cfg, iter_parts
from .symbols import (MUTATOR_METHODS, RNG_DRAW_METHODS, ProjectGraph,
                      iter_functions, own_walk, single_file_graph)

__all__ = ["flow_findings", "CACHE_NAME_RE"]

#: Attribute names that look like memo/cache slots (SL023).
CACHE_NAME_RE = re.compile(r"(^|_)(cache[sd]?|cached|memo|memos)(_|$)")

#: Safety valve for the fixpoint loop; the lattice is finite so this
#: should never trigger, but a linter must not hang on weird input.
_MAX_VISITS_PER_NODE = 50

Origin = Tuple[str, str]              # ("self", attr) | ("global", name)
Taint = Tuple[str, str, bool]         # origin + crossed-a-yield flag
Facts = Dict[str, FrozenSet[Taint]]

Hit = Tuple[str, ast.AST, str]        # rule id, node, message


def _describe(kind: str, name: str) -> str:
    return f"self.{name}" if kind == "self" else name


def _origin_of(expr: ast.AST, shared_globals: Set[str]) -> Optional[Origin]:
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return ("self", expr.attr)
    if isinstance(expr, ast.Name) and expr.id in shared_globals:
        return ("global", expr.id)
    return None


def _taint_source(value: ast.AST,
                  shared_globals: Set[str]) -> Optional[Origin]:
    """Shared origin a plain alias/lookup assignment reads from.

    Recognises ``v = self.A``, ``v = self.A[k]`` and
    ``v = self.A.get(k)`` (and the module-global equivalents).
    Derived expressions (arithmetic, comprehensions, other calls) are
    deliberately *not* tainted — quiet beats noisy for a new rule.
    """
    direct = _origin_of(value, shared_globals)
    if direct is not None:
        return direct
    if isinstance(value, ast.Subscript):
        return _origin_of(value.value, shared_globals)
    if (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"):
        return _origin_of(value.func.value, shared_globals)
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _local_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in own_walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
    return names - declared_global


def _store_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _store_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _store_names(target.value)


def _join(into: Facts, other: Facts) -> Tuple[Facts, bool]:
    changed = False
    merged = dict(into)
    for var, taints in other.items():
        combined = merged.get(var, frozenset()) | taints
        if combined != merged.get(var):
            merged[var] = combined
            changed = True
    return merged, changed


def _transfer(node: CfgNode, facts: Facts,
              shared_globals: Set[str]) -> Facts:
    facts = dict(facts)

    # Re-read exoneration: loading a shared origin anywhere in this
    # statement clears the crossed flag for taints of that origin.
    reread: Set[Origin] = set()
    for sub in iter_parts(node):
        if isinstance(sub, (ast.Attribute, ast.Name)) and isinstance(
                getattr(sub, "ctx", None), ast.Load):
            origin = _origin_of(sub, shared_globals)
            if origin is not None:
                reread.add(origin)
    if reread:
        for var, taints in list(facts.items()):
            facts[var] = frozenset(
                (k, n, False) if (k, n) in reread else (k, n, crossed)
                for k, n, crossed in taints)

    # A yield at this node: every surviving taint has now crossed.
    if node.has_yield:
        for var, taints in list(facts.items()):
            facts[var] = frozenset((k, n, True) for k, n, _ in taints)

    # Kills and gens.
    stmt = node.stmt
    if isinstance(stmt, ast.Assign):
        origin = _taint_source(stmt.value, shared_globals)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                if origin is not None:
                    facts[target.id] = frozenset({(*origin, False)})
                else:
                    facts.pop(target.id, None)
            else:
                for name in _store_names(target):
                    facts.pop(name, None)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            origin = _taint_source(stmt.value, shared_globals)
            if origin is not None:
                facts[stmt.target.id] = frozenset({(*origin, False)})
            else:
                facts.pop(stmt.target.id, None)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        # Loop variables are rebound each iteration; not tracked.
        for name in _store_names(stmt.target):
            facts.pop(name, None)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _store_names(item.optional_vars):
                    facts.pop(name, None)
    return facts


def _crossed_vars(facts: Facts, names: Iterator[str]
                  ) -> List[Tuple[str, Origin]]:
    hits: List[Tuple[str, Origin]] = []
    for name in sorted(set(names)):
        for kind, origin_name, crossed in sorted(facts.get(name, ())):
            if crossed:
                hits.append((name, (kind, origin_name)))
                break
    return hits


def _loaded_names(expr: ast.AST) -> Iterator[str]:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            yield node.id
        stack.extend(ast.iter_child_nodes(node))


def _check_node(node: CfgNode, facts: Facts,
                shared_globals: Set[str]) -> Iterator[Hit]:
    stmt = node.stmt

    # SL020(a): shared state written back from a value captured before
    # a yield — the classic lost-update race under cooperative
    # scheduling.
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        shared_target = None
        for target in targets:
            base = target.value if isinstance(
                target, ast.Subscript) else target
            origin = _origin_of(base, shared_globals)
            if origin is None and isinstance(target, ast.Attribute):
                origin = _origin_of(target, shared_globals)
            if origin is not None:
                shared_target = origin
                break
        if shared_target is not None:
            for var, origin in _crossed_vars(
                    facts, _loaded_names(stmt.value)):
                yield ("SL020", stmt,
                       f"'{var}' was read from {_describe(*origin)} before "
                       f"a yield and is written back to "
                       f"{_describe(*shared_target)} after it")
                break

    # SL020(b): in-place mutation through an alias captured before a
    # yield — the object may have been replaced/retired meanwhile.
    mutation_roots: List[str] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if root is not None and root != "self":
                    mutation_roots.append(root)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if root is not None and root != "self":
                    mutation_roots.append(root)
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATOR_METHODS):
            root = _root_name(call.func.value)
            if root is not None and root != "self":
                mutation_roots.append(root)
    for var, origin in _crossed_vars(facts, iter(mutation_roots)):
        yield ("SL020", stmt,
               f"'{var}' aliases {_describe(*origin)} captured before a "
               f"yield; this mutation may act on stale state")
        break

    # SL023: cache contents captured before a yield returned after it.
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        for var, origin in _crossed_vars(
                facts, _loaded_names(stmt.value)):
            if CACHE_NAME_RE.search(origin[1]):
                yield ("SL023", stmt,
                       f"cached value '{var}' from {_describe(*origin)} is "
                       f"returned after a yield without re-validation")
                break


def _dataflow(func: ast.AST, shared_globals: Set[str]) -> Iterator[Hit]:
    nodes = build_cfg(func)
    if not nodes:
        return
    entry: List[Facts] = [{} for _ in nodes]
    visits = [0] * len(nodes)
    work = [0]
    while work:
        idx = work.pop()
        if visits[idx] >= _MAX_VISITS_PER_NODE:
            continue
        visits[idx] += 1
        out = _transfer(nodes[idx], entry[idx], shared_globals)
        for succ in nodes[idx].succs:
            merged, changed = _join(entry[succ], out)
            if changed or visits[succ] == 0:
                entry[succ] = merged
                work.append(succ)
    # Some nodes are only reachable as successors; make sure every
    # node gets checked against its final entry facts exactly once.
    for node in nodes:
        yield from _check_node(node, entry[node.idx], shared_globals)


def _has_own_yield(stmts: List[ast.stmt]) -> bool:
    stack: List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _short(qualname: str) -> str:
    relpath, _, dotted = qualname.partition("::")
    return f"{dotted} ({relpath})"


def _check_shared_iteration(func: ast.AST, cls: Optional[str],
                            graph: ProjectGraph, relpath: str,
                            qual: str,
                            shared_globals: Set[str]) -> Iterator[Hit]:
    for node in own_walk(func):
        if not isinstance(node, ast.For):
            continue
        iter_expr = node.iter
        if (isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Attribute)
                and iter_expr.func.attr in ("items", "values", "keys")
                and not iter_expr.args):
            iter_expr = iter_expr.func.value
        origin = _origin_of(iter_expr, shared_globals)
        if origin is None or not _has_own_yield(node.body):
            continue
        kind, name = origin
        if kind == "self":
            if cls is None:
                continue
            mutators = graph.self_mutators.get((cls, name), ())
        else:
            mutators = graph.global_mutators.get((relpath, name), ())
        others = [(q, ln) for q, ln in mutators if q != qual]
        if not others:
            continue
        other_q, other_ln = others[0]
        more = f" (+{len(others) - 1} more)" if len(others) > 1 else ""
        yield ("SL021", node,
               f"{_describe(kind, name)} is iterated across a yield while "
               f"{_short(other_q)} line {other_ln} mutates it{more}")


def _check_shared_rng(func: ast.AST, cls: Optional[str],
                      graph: ProjectGraph, relpath: str,
                      qual: str) -> Iterator[Hit]:
    for node in own_walk(func):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RNG_DRAW_METHODS):
            continue
        base = node.func.value
        key: Optional[Tuple[str, str, str]] = None
        desc = ""
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self" and cls is not None):
            key = ("cls", cls, base.attr)
            desc = f"self.{base.attr}"
        elif isinstance(base, ast.Name):
            key = ("global", relpath, base.id)
            desc = base.id
        if key is None:
            continue
        drawers = graph.rng_drawers.get(key, ())
        if len(drawers) < 2:
            continue
        others = ", ".join(_short(q) for q in drawers if q != qual)
        yield ("SL022", node,
               f"RNG stream {desc} is drawn from {len(drawers)} process "
               f"generators (also: {others}); event interleaving reorders "
               f"the draws")


def _graph_for(tree: ast.Module, ctx) -> ProjectGraph:
    if getattr(ctx, "project", None) is not None:
        return ctx.project
    scratch = ctx.scratch
    if "single_file_graph" not in scratch:
        scratch["single_file_graph"] = single_file_graph(tree, ctx.relpath)
    return scratch["single_file_graph"]


def _analyze(tree: ast.Module, ctx) -> Dict[str, List[Tuple[ast.AST, str]]]:
    scratch = ctx.scratch
    if "flow_findings" in scratch:
        return scratch["flow_findings"]
    graph = _graph_for(tree, ctx)
    module = graph.modules.get(ctx.relpath)
    mutable_globals = set(module.mutable_globals) if module else set()
    results: Dict[str, List[Tuple[ast.AST, str]]] = {
        "SL020": [], "SL021": [], "SL022": [], "SL023": []}
    for dotted, cls, func in iter_functions(tree):
        qual = graph.qualname(ctx.relpath, dotted)
        if qual not in graph.process_generators:
            continue
        shared_globals = mutable_globals - _local_names(func)
        for rule_id, node, message in _dataflow(func, shared_globals):
            results[rule_id].append((node, message))
        for rule_id, node, message in _check_shared_iteration(
                func, cls, graph, ctx.relpath, qual, shared_globals):
            results[rule_id].append((node, message))
        for rule_id, node, message in _check_shared_rng(
                func, cls, graph, ctx.relpath, qual):
            results[rule_id].append((node, message))
    scratch["flow_findings"] = results
    return results


def flow_findings(rule_id: str, tree: ast.Module,
                  ctx) -> Iterator[Tuple[ast.AST, str]]:
    """Entry point used by the SL020–SL023 rule registrations."""
    yield from _analyze(tree, ctx)[rule_id]
