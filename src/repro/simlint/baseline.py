"""Baseline files: grandfather existing findings, fail only on new ones.

A baseline is a JSON document recording the fingerprints of findings
that were reviewed and accepted (with a justification) at the time the
linter was introduced.  ``repro lint --baseline PATH`` subtracts those
findings; anything not in the baseline is *new* and fails the run.
Fingerprints are content-based (rule + normalized line text +
occurrence counter, see ``findings.fingerprint_of``), so pure line-number
shifts do not invalidate a baseline, while edits to a flagged line do —
which is the ratchet: touching grandfathered code forces a fix or an
explicit in-file suppression.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Set, Tuple

from .findings import Finding

__all__ = ["BASELINE_VERSION", "load_baseline", "make_baseline",
           "write_baseline", "apply_baseline"]

BASELINE_VERSION = 1


def load_baseline(path: str) -> Dict:
    """Load and structurally validate a baseline document."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError(f"{path}: not a simlint baseline (no 'findings')")
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})")
    if not isinstance(doc["findings"], dict):
        raise ValueError(f"{path}: 'findings' must map path -> entries")
    return doc


def make_baseline(findings: Iterable[Finding],
                  justification: str = "grandfathered at baseline "
                                       "creation") -> Dict:
    """Build a baseline document accepting every finding given."""
    by_path: Dict[str, List[Dict]] = {}
    for finding in sorted(findings):
        by_path.setdefault(finding.path, []).append({
            "rule": finding.rule,
            "fingerprint": finding.fingerprint,
            "line": finding.line,
            "justification": justification,
        })
    return {"version": BASELINE_VERSION, "findings": by_path}


def write_baseline(path: str, doc: Dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(findings: Iterable[Finding],
                   doc: Dict) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, grandfathered)`` against ``doc``."""
    accepted: Set[Tuple[str, str, str]] = set()
    for path, entries in doc["findings"].items():
        for entry in entries:
            accepted.add((path, entry["rule"], entry["fingerprint"]))
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        key = (finding.path, finding.rule, finding.fingerprint)
        (old if key in accepted else new).append(finding)
    return new, old
