"""simlint engine: file discovery, suppressions, and rule execution.

The engine parses each file once, runs every selected rule over the
tree, and filters the resulting findings through two suppression
mechanisms:

* **line suppressions** — a trailing comment on the flagged line::

      eid = pending.pop()  # simlint: ignore[SL003] — LIFO order is deterministic

  ``ignore`` without a rule list suppresses every rule on that line.
  Text after the bracket (or after ``ignore``) is a free-form
  justification and is encouraged.

* **file suppressions** — a comment line anywhere in the file (by
  convention near the top)::

      # simlint: ignore-file[SL001] — benchmark harness, wall-clock is the point

Baselines (grandfathered findings) are a third layer handled by
``repro.simlint.baseline`` on top of what this module returns.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, fingerprint_of
from .rules import PARSE_ERROR_ID, RULES, build_context

__all__ = ["lint_source", "lint_paths", "discover_files", "select_rules",
           "UnknownRuleError", "SUPPRESS_RE"]

SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>ignore-file|ignore)\s*"
    r"(?:\[(?P<rules>[A-Za-z0-9 ,]*)\])?")


class UnknownRuleError(ValueError):
    """A --select/--ignore list named a rule id that does not exist."""


def select_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> Tuple[str, ...]:
    """Resolve --select/--ignore lists to an ordered tuple of rule ids."""
    chosen = _validated(select) if select is not None else set(RULES)
    if ignore is not None:
        chosen -= _validated(ignore)
    return tuple(sorted(chosen))


def _validated(ids: Iterable[str]) -> Set[str]:
    result = set()
    for raw in ids:
        rule_id = raw.strip().upper()
        if not rule_id:
            continue
        if rule_id not in RULES:
            known = ", ".join(sorted(RULES))
            raise UnknownRuleError(
                f"unknown rule {rule_id!r} (known: {known})")
        result.add(rule_id)
    return result


def _suppressions(source: str) -> Tuple[Dict[int, Optional[Set[str]]],
                                        Optional[Set[str]]]:
    """Parse suppression comments.

    Returns ``(per_line, file_level)`` where each value is either None
    (suppress everything) or a set of rule ids; ``file_level`` is only
    present when an ignore-file comment exists.
    """
    per_line: Dict[int, Optional[Set[str]]] = {}
    file_level: Optional[Set[str]] = None
    file_suppressed_all = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The file does not even tokenize (it will be reported as
        # SL000); fall back to a plain line scan so an ignore-file
        # comment can still suppress the parse-error finding.
        comments = [(i, line) for i, line in
                    enumerate(source.splitlines(), start=1) if "#" in line]
    for line, text in comments:
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules_text = match.group("rules")
        rule_ids = (None if rules_text is None else
                    {r.strip().upper() for r in rules_text.split(",")
                     if r.strip()})
        if match.group("kind") == "ignore-file":
            if rule_ids is None:
                file_suppressed_all = True
            else:
                file_level = (file_level or set()) | rule_ids
        else:
            existing = per_line.get(line, set())
            if rule_ids is None or existing is None:
                per_line[line] = None
            else:
                per_line[line] = existing | rule_ids
    if file_suppressed_all:
        return per_line, set(RULES)
    return per_line, file_level


def lint_source(source: str, relpath: str,
                rule_ids: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one file's text; ``relpath`` appears in the findings."""
    if rule_ids is None:
        rule_ids = tuple(sorted(RULES))
    per_line, file_level = _suppressions(source)
    lines = source.splitlines()

    def suppressed(rule_id: str, line: int) -> bool:
        if file_level is not None and rule_id in file_level:
            return True
        if line in per_line:
            line_rules = per_line[line]
            return line_rules is None or rule_id in line_rules
        return False

    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        rule = RULES[PARSE_ERROR_ID]
        line = exc.lineno or 1
        if PARSE_ERROR_ID not in rule_ids or suppressed(PARSE_ERROR_ID, line):
            return []
        return [Finding(
            path=relpath, line=line, col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR_ID, severity=rule.severity,
            message=f"syntax error: {exc.msg}", hint=rule.hint,
            fingerprint=fingerprint_of(PARSE_ERROR_ID, exc.msg or "", 0))]

    ctx = build_context(relpath, tree)
    raw: List[Tuple[int, int, str, str]] = []
    for rule_id in rule_ids:
        rule = RULES[rule_id]
        for node, message in rule.check(tree, ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            raw.append((line, col, rule_id, message))

    raw.sort()
    occurrences: Dict[Tuple[str, str], int] = {}
    findings: List[Finding] = []
    for line, col, rule_id, message in raw:
        if suppressed(rule_id, line):
            continue
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        key = (rule_id, " ".join(text.split()))
        n = occurrences.get(key, 0)
        occurrences[key] = n + 1
        rule = RULES[rule_id]
        findings.append(Finding(
            path=relpath, line=line, col=col, rule=rule_id,
            severity=rule.severity, message=message, hint=rule.hint,
            fingerprint=fingerprint_of(rule_id, text, n)))
    return findings


def discover_files(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Expand files/directories to ``(abspath, relpath)`` pairs.

    Relative paths are posix-style, relative to the directory argument
    that contained the file (or the file's own directory for direct
    file arguments), so reports and baselines are location-independent.
    """
    pairs: List[Tuple[str, str]] = []
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            pairs.append((path, os.path.basename(path)))
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__"
                                 and not d.startswith("."))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    full = os.path.join(dirpath, filename)
                    rel = os.path.relpath(full, path).replace(os.sep, "/")
                    pairs.append((full, rel))
    return pairs


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint files and directories; returns sorted findings."""
    rule_ids = select_rules(select, ignore)
    findings: List[Finding] = []
    for full, rel in discover_files(paths):
        with open(full, encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, rel, rule_ids))
    findings.sort()
    return findings
