"""simlint engine: discovery, suppressions, caching, rule execution.

The engine runs in two phases.  Phase one builds the project symbol
graph: every file is summarised (:mod:`repro.simlint.symbols`) so the
flow rules know which functions are simulated-process generators and
which shared containers/RNG streams each function touches.  Phase two
lints each file against the selected rules with that graph as context
— optionally in parallel (``jobs``) and through a content-hash cache
(``cache_dir``) keyed on the file hash, the graph digest and the rule
set, so only edited files (or files whose cross-file facts changed)
are re-analysed and cached runs are byte-identical to cold ones.

Findings then pass through two suppression mechanisms:

* **line suppressions** — a trailing comment on the flagged line::

      eid = pending.pop()  # simlint: ignore[SL003] — LIFO order is deterministic

  ``ignore`` without a rule list suppresses every rule on that line.
  Text after the bracket (or after ``ignore``) is a free-form
  justification and is encouraged.  For a *multi-line* statement the
  comment may sit on any line of the statement (e.g. after the
  opening parenthesis of a spread-out call) — it covers findings
  reported on every line the statement spans.

* **file suppressions** — a comment line anywhere in the file (by
  convention near the top)::

      # simlint: ignore-file[SL001] — benchmark harness, wall-clock is the point

Baselines (grandfathered findings) are a third layer handled by
``repro.simlint.baseline`` on top of what this module returns.
"""

from __future__ import annotations

import ast
import hashlib
import io
import multiprocessing
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cache import AnalysisCache, content_hash
from .findings import Finding, fingerprint_of
from .rules import PARSE_ERROR_ID, RULES, build_context
from .symbols import (SYMBOLS_VERSION, ModuleSymbols, ProjectGraph,
                      build_graph, symbols_for_source)

__all__ = ["lint_source", "lint_paths", "lint_tree", "discover_files",
           "select_rules", "UnknownRuleError", "SUPPRESS_RE", "LintResult",
           "ENGINE_VERSION"]

#: Bump when finding generation changes in any way that should
#: invalidate cached per-file results.
ENGINE_VERSION = 2

SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>ignore-file|ignore)\s*"
    r"(?:\[(?P<rules>[A-Za-z0-9 ,]*)\])?")


class UnknownRuleError(ValueError):
    """A --select/--ignore list named a rule id that does not exist."""


def select_rules(select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> Tuple[str, ...]:
    """Resolve --select/--ignore lists to an ordered tuple of rule ids."""
    chosen = _validated(select) if select is not None else set(RULES)
    if ignore is not None:
        chosen -= _validated(ignore)
    return tuple(sorted(chosen))


def _validated(ids: Iterable[str]) -> Set[str]:
    result = set()
    for raw in ids:
        rule_id = raw.strip().upper()
        if not rule_id:
            continue
        if rule_id not in RULES:
            known = ", ".join(sorted(RULES))
            raise UnknownRuleError(
                f"unknown rule {rule_id!r} (known: {known})")
        result.add(rule_id)
    return result


def _suppressions(source: str) -> Tuple[Dict[int, Optional[Set[str]]],
                                        Optional[Set[str]]]:
    """Parse suppression comments.

    Returns ``(per_line, file_level)`` where each value is either None
    (suppress everything) or a set of rule ids; ``file_level`` is only
    present when an ignore-file comment exists.
    """
    per_line: Dict[int, Optional[Set[str]]] = {}
    file_level: Optional[Set[str]] = None
    file_suppressed_all = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The file does not even tokenize (it will be reported as
        # SL000); fall back to a plain line scan so an ignore-file
        # comment can still suppress the parse-error finding.
        comments = [(i, line) for i, line in
                    enumerate(source.splitlines(), start=1) if "#" in line]
    for line, text in comments:
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules_text = match.group("rules")
        rule_ids = (None if rules_text is None else
                    {r.strip().upper() for r in rules_text.split(",")
                     if r.strip()})
        if match.group("kind") == "ignore-file":
            if rule_ids is None:
                file_suppressed_all = True
            else:
                file_level = (file_level or set()) | rule_ids
        else:
            existing = per_line.get(line, set())
            if rule_ids is None or existing is None:
                per_line[line] = None
            else:
                per_line[line] = existing | rule_ids
    if file_suppressed_all:
        return per_line, set(RULES)
    return per_line, file_level


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """Line spans of multi-line statements (and compound headers).

    A simple statement spans ``lineno..end_lineno``; a compound
    statement contributes only its *header* (up to the line before its
    first nested statement) — findings inside the body belong to the
    body statements' own spans.
    """

    def child_line(node: ast.AST) -> int:
        lineno = getattr(node, "lineno", None)
        if lineno is not None:
            return lineno
        # match_case carries no lineno of its own.
        pattern = getattr(node, "pattern", None)
        if pattern is not None and hasattr(pattern, "lineno"):
            return pattern.lineno
        body = getattr(node, "body", None)
        if body:
            return body[0].lineno
        return 1

    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.ExceptHandler)):
            continue
        children = [c for c in ast.iter_child_nodes(node)
                    if isinstance(c, (ast.stmt, ast.ExceptHandler))
                    or type(c).__name__ == "match_case"]
        start = node.lineno
        if children:
            end = min(child_line(c) for c in children) - 1
        else:
            end = getattr(node, "end_lineno", None) or start
        if end > start:
            spans.append((start, end))
    return spans


def _expand_suppressions(
        per_line: Dict[int, Optional[Set[str]]],
        tree: ast.Module) -> Dict[int, Optional[Set[str]]]:
    """Spread each suppression over the whole statement it sits in.

    A ``# simlint: ignore[...]`` on any line of a multi-line statement
    covers findings reported on every line of that statement — the
    AST reports a nested expression (a call argument, a comprehension)
    at *its* line, not at the line a human put the comment on.
    """
    if not per_line:
        return per_line
    expanded: Dict[int, Optional[Set[str]]] = dict(per_line)
    for start, end in _statement_spans(tree):
        merged: Set[str] = set()
        found = False
        suppress_all = False
        for line in range(start, end + 1):
            if line in per_line:
                found = True
                value = per_line[line]
                if value is None:
                    suppress_all = True
                else:
                    merged |= value
        if not found:
            continue
        for line in range(start, end + 1):
            existing = expanded.get(line, set())
            if suppress_all or existing is None:
                expanded[line] = None
            else:
                expanded[line] = existing | merged
    return expanded


def lint_source(source: str, relpath: str,
                rule_ids: Optional[Sequence[str]] = None,
                project: Optional[ProjectGraph] = None) -> List[Finding]:
    """Lint one file's text; ``relpath`` appears in the findings.

    ``project`` supplies the cross-file symbol graph for the flow
    rules; when omitted they fall back to a graph built from this file
    alone.
    """
    if rule_ids is None:
        rule_ids = tuple(sorted(RULES))
    per_line, file_level = _suppressions(source)
    lines = source.splitlines()

    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        rule = RULES[PARSE_ERROR_ID]
        line = exc.lineno or 1
        if file_level is not None and PARSE_ERROR_ID in file_level:
            return []
        line_rules = per_line.get(line, set())
        if (PARSE_ERROR_ID not in rule_ids or line_rules is None
                or PARSE_ERROR_ID in line_rules):
            return []
        return [Finding(
            path=relpath, line=line, col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR_ID, severity=rule.severity,
            message=f"syntax error: {exc.msg}", hint=rule.hint,
            fingerprint=fingerprint_of(PARSE_ERROR_ID, exc.msg or "", 0))]

    per_line = _expand_suppressions(per_line, tree)

    def suppressed(rule_id: str, line: int) -> bool:
        if file_level is not None and rule_id in file_level:
            return True
        if line in per_line:
            line_rules = per_line[line]
            return line_rules is None or rule_id in line_rules
        return False

    ctx = build_context(relpath, tree, project)
    raw: List[Tuple[int, int, str, str]] = []
    for rule_id in rule_ids:
        rule = RULES[rule_id]
        for node, message in rule.check(tree, ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            raw.append((line, col, rule_id, message))

    raw.sort()
    occurrences: Dict[Tuple[str, str], int] = {}
    findings: List[Finding] = []
    for line, col, rule_id, message in raw:
        if suppressed(rule_id, line):
            continue
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        key = (rule_id, " ".join(text.split()))
        n = occurrences.get(key, 0)
        occurrences[key] = n + 1
        rule = RULES[rule_id]
        findings.append(Finding(
            path=relpath, line=line, col=col, rule=rule_id,
            severity=rule.severity, message=message, hint=rule.hint,
            fingerprint=fingerprint_of(rule_id, text, n)))
    return findings


def discover_files(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Expand files/directories to ``(abspath, relpath)`` pairs.

    Relative paths are posix-style, relative to the directory argument
    that contained the file (or the file's own directory for direct
    file arguments), so reports and baselines are location-independent.
    """
    pairs: List[Tuple[str, str]] = []
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            pairs.append((path, os.path.basename(path)))
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__"
                                 and not d.startswith("."))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    full = os.path.join(dirpath, filename)
                    rel = os.path.relpath(full, path).replace(os.sep, "/")
                    pairs.append((full, rel))
    return pairs


@dataclass
class LintResult:
    """Findings plus bookkeeping from one :func:`lint_tree` run."""

    findings: List[Finding]
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: relpath (as used in findings) -> path relative to the CWD, for
    #: renderers that must point at real files (GitHub annotations).
    display_paths: Dict[str, str] = field(default_factory=dict)


def _rules_key(rule_ids: Sequence[str]) -> str:
    blob = f"{ENGINE_VERSION}:{SYMBOLS_VERSION}:" + ",".join(rule_ids)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# Worker-process state for --jobs N: the graph and rule set are shipped
# once per worker via the pool initializer, not once per file.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(graph: ProjectGraph, rule_ids: Tuple[str, ...]) -> None:
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["rule_ids"] = rule_ids


def _worker_lint(item: Tuple[str, str]) -> List[Finding]:
    full, rel = item
    with open(full, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, rel, _WORKER_STATE["rule_ids"],
                       project=_WORKER_STATE["graph"])


def lint_tree(paths: Sequence[str],
              select: Optional[Iterable[str]] = None,
              ignore: Optional[Iterable[str]] = None,
              jobs: int = 1,
              cache_dir: Optional[str] = None) -> LintResult:
    """Two-phase project lint with optional caching and parallelism."""
    rule_ids = select_rules(select, ignore)
    pairs = discover_files(paths)
    cwd = os.getcwd()
    cache = AnalysisCache(cache_dir) if cache_dir else None

    sources: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    for full, rel in pairs:
        with open(full, "rb") as handle:
            data = handle.read()
        sources[rel] = data.decode("utf-8")
        hashes[rel] = content_hash(data, rel)

    # Phase 1: symbol summaries (cached per content hash) -> graph.
    modules: Dict[str, ModuleSymbols] = {}
    for _, rel in pairs:
        payload = cache.get_symbols(hashes[rel]) if cache else None
        if (payload is not None
                and payload.get("version") == SYMBOLS_VERSION):
            modules[rel] = ModuleSymbols.from_payload(payload["module"])
        else:
            mod = symbols_for_source(sources[rel], rel)
            modules[rel] = mod
            if cache:
                cache.put_symbols(hashes[rel], {
                    "version": SYMBOLS_VERSION,
                    "module": mod.to_payload()})
    graph = build_graph(modules)
    rules_key = _rules_key(rule_ids)

    # Phase 2: per-file findings, from cache where valid.
    cached_results: Dict[str, List[Finding]] = {}
    to_analyze: List[Tuple[str, str]] = []
    for full, rel in pairs:
        got = (cache.get_findings(hashes[rel], graph.digest, rules_key, rel)
               if cache else None)
        if got is not None:
            cached_results[rel] = got
        else:
            to_analyze.append((full, rel))

    analyzed: Dict[str, List[Finding]] = {}
    if to_analyze:
        if jobs > 1 and len(to_analyze) > 1:
            with multiprocessing.Pool(
                    processes=min(jobs, len(to_analyze)),
                    initializer=_init_worker,
                    initargs=(graph, rule_ids)) as pool:
                results = pool.map(_worker_lint, to_analyze)
            for (_, rel), result in zip(to_analyze, results):
                analyzed[rel] = result
        else:
            for _, rel in to_analyze:
                analyzed[rel] = lint_source(sources[rel], rel, rule_ids,
                                            project=graph)
        if cache:
            for _, rel in to_analyze:
                cache.put_findings(hashes[rel], graph.digest, rules_key,
                                   analyzed[rel])

    findings: List[Finding] = []
    for _, rel in pairs:
        if rel in cached_results:
            findings.extend(cached_results[rel])
        else:
            findings.extend(analyzed.get(rel, []))
    findings.sort()
    display = {rel: os.path.relpath(full, cwd).replace(os.sep, "/")
               for full, rel in pairs}
    return LintResult(findings=findings, files=len(pairs),
                      cache_hits=len(cached_results),
                      cache_misses=len(to_analyze),
                      display_paths=display)


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None,
               jobs: int = 1,
               cache_dir: Optional[str] = None) -> List[Finding]:
    """Lint files and directories; returns sorted findings."""
    return lint_tree(paths, select=select, ignore=ignore, jobs=jobs,
                     cache_dir=cache_dir).findings
