"""Project symbol graph for the flow-aware simlint rules.

Per-file :class:`ModuleSymbols` summaries are extracted from the AST
(no imports are executed) and combined into a :class:`ProjectGraph`:

* which functions are **simulated-process generators** — generators
  reachable from a kernel spawn site (``sim.process(f(...))`` /
  ``Process(sim, f(...))``), generators whose yields are event-factory
  calls, or generators whose bare name escapes as a value (the
  callback-spawned rank-body pattern), closed over ``yield from``
  delegation and nested spawns;
* which functions **mutate** which shared containers (``self.attr``
  in-place mutations keyed by class, module-global mutations keyed by
  module) — feeds SL021;
* which named **RNG streams** (attributes/globals assigned from
  ``default_rng(...)`` or ``RngRegistry.stream(...)``) are drawn from
  which process generators — feeds SL022.

Summaries serialise to JSON so the incremental cache
(:mod:`repro.simlint.cache`) can skip re-parsing unchanged files; the
graph ``digest`` fingerprints the whole project's symbol state so
cached per-file findings are invalidated when *any* file changes the
cross-file facts.

The call-graph resolution is deliberately name-based and
over-approximate: a ``self.f`` spawn matches any same-named method,
preferring the caller's own class and module.  For a linter that is
the right trade — a missed edge silently hides a hazard, an extra
edge at worst analyses one more function.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

__all__ = ["FunctionSymbol", "ModuleSymbols", "ProjectGraph",
           "extract_symbols", "build_graph", "iter_functions", "own_walk",
           "MUTATOR_METHODS", "RNG_DRAW_METHODS", "SYMBOLS_VERSION"]

#: Bump when the extraction logic changes so cached symbol summaries
#: (and therefore cached findings, via the graph digest) are rebuilt.
SYMBOLS_VERSION = 1

#: In-place container mutators — calling one of these on a shared
#: container counts as a mutation for SL021's cross-function index.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem", "sort", "reverse",
})

#: numpy.random.Generator draw methods — consuming the stream.
RNG_DRAW_METHODS = frozenset({
    "random", "integers", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "binomial",
    "gamma", "beta", "bytes",
})

_RNG_FACTORY_ATTRS = frozenset({"stream", "default_rng"})
_MUTABLE_GLOBAL_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
})
_EVENT_FACTORY_ATTRS = frozenset({
    "timeout", "process", "event", "all_of", "any_of",
})
_EVENT_FACTORY_NAMES = frozenset({"Timeout", "Event", "AllOf", "AnyOf",
                                  "Process"})

#: A by-name reference to a callable: ("self", m) for ``self.m``,
#: ("name", f) for a bare name, ("attr", m) for ``<expr>.m``.
Ref = Tuple[str, str]


def own_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body excluding nested function/lambda bodies.

    The nested ``def``s themselves are *not* yielded either: their
    headers (decorators, defaults) belong to the enclosing scope but
    none of the flow rules care about them, and skipping them keeps
    ``yield``/mutation attribution unambiguous.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def iter_functions(tree: ast.Module) -> Iterator[
        Tuple[str, Optional[str], ast.AST]]:
    """Yield ``(dotted_name, enclosing_class, func_node)`` for every
    function in ``tree``, including nested ones (``make_body.body``)."""

    def visit(node: ast.AST, stack: List[str], cls: Optional[str]
              ) -> Iterator[Tuple[str, Optional[str], ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                dotted = ".".join(stack + [child.name])
                yield dotted, cls, child
                yield from visit(child, stack + [child.name], cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, stack + [child.name], child.name)
            else:
                yield from visit(child, stack, cls)

    yield from visit(tree, [], None)


def _callable_ref(node: ast.AST) -> Optional[Ref]:
    """Name-based reference for a spawned/delegated callable."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return ("self", node.attr)
        return ("attr", node.attr)
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """The base Name of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        return node.attr
    return None


def _is_rng_factory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _RNG_FACTORY_ATTRS
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    return False


@dataclass
class FunctionSymbol:
    """Flow-relevant facts about one function."""

    dotted: str
    cls: Optional[str]
    lineno: int
    is_generator: bool = False
    yields_event_factory: bool = False
    spawn_targets: List[Ref] = field(default_factory=list)
    delegate_targets: List[Ref] = field(default_factory=list)
    self_mutations: List[Tuple[str, int]] = field(default_factory=list)
    global_mutations: List[Tuple[str, int]] = field(default_factory=list)
    rng_draws: List[Ref] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.dotted.rsplit(".", 1)[-1]

    def to_payload(self) -> dict:
        return {
            "dotted": self.dotted, "cls": self.cls, "lineno": self.lineno,
            "is_generator": self.is_generator,
            "yields_event_factory": self.yields_event_factory,
            "spawn_targets": [list(r) for r in self.spawn_targets],
            "delegate_targets": [list(r) for r in self.delegate_targets],
            "self_mutations": [list(m) for m in self.self_mutations],
            "global_mutations": [list(m) for m in self.global_mutations],
            "rng_draws": [list(r) for r in self.rng_draws],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FunctionSymbol":
        return cls(
            dotted=payload["dotted"], cls=payload["cls"],
            lineno=payload["lineno"],
            is_generator=payload["is_generator"],
            yields_event_factory=payload["yields_event_factory"],
            spawn_targets=[tuple(r) for r in payload["spawn_targets"]],
            delegate_targets=[tuple(r) for r in payload["delegate_targets"]],
            self_mutations=[tuple(m) for m in payload["self_mutations"]],
            global_mutations=[tuple(m) for m in payload["global_mutations"]],
            rng_draws=[tuple(r) for r in payload["rng_draws"]],
        )


@dataclass
class ModuleSymbols:
    """Everything the graph needs to know about one file."""

    relpath: str
    functions: List[FunctionSymbol] = field(default_factory=list)
    rng_class_attrs: List[Tuple[str, str]] = field(default_factory=list)
    rng_globals: List[str] = field(default_factory=list)
    mutable_globals: List[str] = field(default_factory=list)
    value_ref_names: List[str] = field(default_factory=list)

    def to_payload(self) -> dict:
        return {
            "relpath": self.relpath,
            "functions": [f.to_payload() for f in self.functions],
            "rng_class_attrs": [list(p) for p in self.rng_class_attrs],
            "rng_globals": list(self.rng_globals),
            "mutable_globals": list(self.mutable_globals),
            "value_ref_names": list(self.value_ref_names),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ModuleSymbols":
        return cls(
            relpath=payload["relpath"],
            functions=[FunctionSymbol.from_payload(f)
                       for f in payload["functions"]],
            rng_class_attrs=[tuple(p) for p in payload["rng_class_attrs"]],
            rng_globals=list(payload["rng_globals"]),
            mutable_globals=list(payload["mutable_globals"]),
            value_ref_names=list(payload["value_ref_names"]),
        )


def _spawned_arg(call: ast.Call) -> Optional[ast.AST]:
    """The generator expression a spawn call runs, or None."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "process":
        return call.args[0] if call.args else None
    if isinstance(func, ast.Name) and func.id == "Process":
        return call.args[1] if len(call.args) > 1 else None
    if isinstance(func, ast.Attribute) and func.attr == "Process":
        return call.args[1] if len(call.args) > 1 else None
    return None


def _extract_function(dotted: str, cls: Optional[str],
                      func: ast.AST) -> FunctionSymbol:
    sym = FunctionSymbol(dotted=dotted, cls=cls, lineno=func.lineno)
    for node in own_walk(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            sym.is_generator = True
            if isinstance(node, ast.YieldFrom):
                ref = _callable_ref(node.value)
                if ref is not None:
                    sym.delegate_targets.append(ref)
            elif isinstance(node.value, ast.Call):
                f = node.value.func
                if ((isinstance(f, ast.Attribute)
                     and f.attr in _EVENT_FACTORY_ATTRS)
                        or (isinstance(f, ast.Name)
                            and f.id in _EVENT_FACTORY_NAMES)):
                    sym.yields_event_factory = True
        elif isinstance(node, ast.Call):
            spawned = _spawned_arg(node)
            if spawned is not None:
                ref = _callable_ref(spawned)
                if ref is not None:
                    sym.spawn_targets.append(ref)
            func_expr = node.func
            if (isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in MUTATOR_METHODS):
                attr = _is_self_attr(func_expr.value)
                if attr is not None:
                    sym.self_mutations.append((attr, node.lineno))
                elif isinstance(func_expr.value, ast.Name):
                    sym.global_mutations.append(
                        (func_expr.value.id, node.lineno))
            if (isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in RNG_DRAW_METHODS):
                attr = _is_self_attr(func_expr.value)
                if attr is not None:
                    sym.rng_draws.append(("self", attr))
                elif isinstance(func_expr.value, ast.Name):
                    sym.rng_draws.append(("global", func_expr.value.id))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = _is_self_attr(target.value)
                    if attr is not None:
                        sym.self_mutations.append((attr, node.lineno))
                    elif isinstance(target.value, ast.Name):
                        sym.global_mutations.append(
                            (target.value.id, node.lineno))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _is_self_attr(target.value)
                    if attr is not None:
                        sym.self_mutations.append((attr, node.lineno))
                    elif isinstance(target.value, ast.Name):
                        sym.global_mutations.append(
                            (target.value.id, node.lineno))
    return sym


def extract_symbols(tree: ast.Module, relpath: str) -> ModuleSymbols:
    """Summarise one parsed file."""
    mod = ModuleSymbols(relpath=relpath)
    rng_class_attrs: Set[Tuple[str, str]] = set()
    rng_globals: Set[str] = set()
    mutable_globals: Set[str] = set()
    value_refs: Set[str] = set()
    called: Set[int] = set()

    for dotted, cls, func in iter_functions(tree):
        mod.functions.append(_extract_function(dotted, cls, func))
        if cls is not None:
            for node in own_walk(func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = _is_self_attr(target)
                        if attr and _is_rng_factory_call(node.value):
                            rng_class_attrs.add((cls, attr))

    for stmt in tree.body:
        value = None
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_rng_factory_call(value):
                rng_globals.add(target.id)
            if isinstance(value, (ast.List, ast.Dict, ast.Set)):
                mutable_globals.add(target.id)
            elif (isinstance(value, ast.Call)
                  and isinstance(value.func, ast.Name)
                  and value.func.id in _MUTABLE_GLOBAL_FACTORIES):
                mutable_globals.add(target.id)

    # Bare names loaded as values (not as the called function): a
    # generator whose name escapes this way is being handed to a
    # spawner somewhere (``return body``, callback registration).
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            called.add(id(node.func))
    for node in ast.walk(tree):
        if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                and id(node) not in called):
            value_refs.add(node.id)

    mod.rng_class_attrs = sorted(rng_class_attrs)
    mod.rng_globals = sorted(rng_globals)
    mod.mutable_globals = sorted(mutable_globals)
    mod.value_ref_names = sorted(value_refs)
    return mod


@dataclass
class ProjectGraph:
    """Cross-file facts consumed by the SL020–SL023 flow rules.

    ``qualname`` throughout is ``"<relpath>::<dotted>"``, e.g.
    ``"metasched/service.py::MetaScheduler._feeder"``.
    """

    modules: Dict[str, ModuleSymbols]
    process_generators: FrozenSet[str]
    self_mutators: Dict[Tuple[str, str], Tuple[Tuple[str, int], ...]]
    global_mutators: Dict[Tuple[str, str], Tuple[Tuple[str, int], ...]]
    rng_class_attrs: FrozenSet[Tuple[str, str]]
    rng_globals: FrozenSet[Tuple[str, str]]
    rng_drawers: Dict[Tuple[str, str, str], Tuple[str, ...]]
    digest: str

    def qualname(self, relpath: str, dotted: str) -> str:
        return f"{relpath}::{dotted}"


def graph_digest(modules: Dict[str, ModuleSymbols]) -> str:
    payload = {rel: mod.to_payload() for rel, mod in sorted(modules.items())}
    blob = json.dumps({"version": SYMBOLS_VERSION, "modules": payload},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_graph(modules: Dict[str, ModuleSymbols]) -> ProjectGraph:
    """Combine per-file summaries into the project graph."""
    all_funcs: Dict[str, Tuple[str, FunctionSymbol]] = {}
    by_name: Dict[str, List[str]] = {}
    by_cls_name: Dict[Tuple[str, str], List[str]] = {}
    by_mod_name: Dict[Tuple[str, str], List[str]] = {}
    for rel, mod in modules.items():
        for sym in mod.functions:
            qual = f"{rel}::{sym.dotted}"
            all_funcs[qual] = (rel, sym)
            by_name.setdefault(sym.name, []).append(qual)
            if sym.cls is not None:
                by_cls_name.setdefault((sym.cls, sym.name), []).append(qual)
            by_mod_name.setdefault((rel, sym.name), []).append(qual)

    def resolve(ref: Ref, from_rel: str,
                from_cls: Optional[str]) -> List[str]:
        kind, name = ref
        if kind == "self" and from_cls is not None:
            hits = by_cls_name.get((from_cls, name))
            if hits:
                return hits
        if kind in ("self", "name"):
            hits = by_mod_name.get((from_rel, name))
            if hits:
                return hits
        return by_name.get(name, [])

    # --- process-generator seeds ------------------------------------
    seeds: Set[str] = set()
    for qual, (rel, sym) in all_funcs.items():
        if sym.is_generator and sym.yields_event_factory:
            seeds.add(qual)
        if (sym.is_generator
                and sym.name in modules[rel].value_ref_names):
            seeds.add(qual)
        for ref in sym.spawn_targets:
            for target in resolve(ref, rel, sym.cls):
                if all_funcs[target][1].is_generator:
                    seeds.add(target)

    # Closure over yield-from delegation and nested spawns.
    process_gens: Set[str] = set()
    work = sorted(seeds)
    while work:
        qual = work.pop()
        if qual in process_gens:
            continue
        process_gens.add(qual)
        rel, sym = all_funcs[qual]
        for ref in sym.delegate_targets + sym.spawn_targets:
            for target in resolve(ref, rel, sym.cls):
                if (all_funcs[target][1].is_generator
                        and target not in process_gens):
                    work.append(target)

    # --- mutation indexes (SL021) -----------------------------------
    self_mut: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    global_mut: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    for qual, (rel, sym) in all_funcs.items():
        if sym.cls is not None:
            for attr, lineno in sym.self_mutations:
                self_mut.setdefault((sym.cls, attr), []).append(
                    (qual, lineno))
        mutable = set(modules[rel].mutable_globals)
        for name, lineno in sym.global_mutations:
            if name in mutable:
                global_mut.setdefault((rel, name), []).append((qual, lineno))

    # --- shared RNG streams (SL022) ---------------------------------
    rng_cls: Set[Tuple[str, str]] = set()
    rng_glob: Set[Tuple[str, str]] = set()
    for rel, mod in modules.items():
        rng_cls.update(tuple(p) for p in mod.rng_class_attrs)
        rng_glob.update((rel, name) for name in mod.rng_globals)

    drawers: Dict[Tuple[str, str, str], Set[str]] = {}
    for qual in sorted(process_gens):
        rel, sym = all_funcs[qual]
        for kind, name in sym.rng_draws:
            if kind == "self" and sym.cls is not None:
                if (sym.cls, name) in rng_cls:
                    drawers.setdefault(("cls", sym.cls, name),
                                       set()).add(qual)
            elif kind == "global" and (rel, name) in rng_glob:
                drawers.setdefault(("global", rel, name), set()).add(qual)

    return ProjectGraph(
        modules=dict(modules),
        process_generators=frozenset(process_gens),
        self_mutators={k: tuple(sorted(v)) for k, v in self_mut.items()},
        global_mutators={k: tuple(sorted(v)) for k, v in global_mut.items()},
        rng_class_attrs=frozenset(rng_cls),
        rng_globals=frozenset(rng_glob),
        rng_drawers={k: tuple(sorted(v)) for k, v in drawers.items()},
        digest=graph_digest(modules),
    )


def single_file_graph(tree: ast.Module, relpath: str) -> ProjectGraph:
    """Graph for one file in isolation (fixtures, ad-hoc lint_source)."""
    return build_graph({relpath: extract_symbols(tree, relpath)})


def symbols_for_source(source: str, relpath: str) -> ModuleSymbols:
    """Parse and summarise; unparseable files get an empty summary."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError:
        return ModuleSymbols(relpath=relpath)
    return extract_symbols(tree, relpath)
