"""Finding and severity primitives shared across the simlint package.

A :class:`Finding` is one rule violation at one source location.  The
``fingerprint`` identifies the violation *content-wise* (rule + the
normalized source line + an occurrence counter) rather than by line
number, so baselines survive unrelated edits that shift code up or
down — the same scheme ruff/flake8 ecosystems use for "grandfathering"
pre-existing findings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["ERROR", "WARNING", "SEVERITIES", "Finding", "fingerprint_of"]

#: Severity levels.  Both fail the lint run; severity orders the report
#: and tells a reader how confident the rule is that the finding is a
#: genuine determinism hazard (errors) vs. a discipline smell (warnings).
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # posix-style path relative to the lint root
    line: int  # 1-based
    col: int  # 0-based, as reported by the ast module
    rule: str  # e.g. "SL003"
    severity: str  # ERROR or WARNING
    message: str  # what is wrong at this site
    hint: str  # the rule's fix-it hint
    fingerprint: str  # content-based identity for baselines

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


def fingerprint_of(rule: str, line_text: str, occurrence: int) -> str:
    """Content-based identity: stable across moves, unique per repeat.

    ``occurrence`` counts earlier findings in the same file with the
    same ``(rule, normalized line)`` pair, so two identical violations
    on different lines get distinct fingerprints.
    """
    normalized = " ".join(line_text.split())
    digest = hashlib.sha1(
        f"{rule}\x00{normalized}\x00{occurrence}".encode("utf-8")
    ).hexdigest()
    return digest[:16]
