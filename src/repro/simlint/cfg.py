"""Statement-level control-flow graphs for one function body.

Each :class:`CfgNode` covers one statement.  Compound statements
contribute a *header* node whose ``parts`` are only the expressions
evaluated at the header (an ``if`` test, a ``for`` target/iter, a
``with`` item list) — never the nested bodies, which get their own
nodes.  That keeps yield detection and taint transfer local to what
actually executes at each program point.

Exception flow is approximated the standard conservative way: every
node created inside a ``try`` body gets an edge to each of that try's
handler entry nodes, so facts holding anywhere in the body reach the
handlers.  ``break``/``continue``/``return``/``raise`` cut fallthrough
edges as expected.

The graph is intentionally small and forward-only — just enough for
the worklist dataflow in :mod:`repro.simlint.flow`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["CfgNode", "build_cfg"]


@dataclass
class CfgNode:
    """One statement (or compound-statement header) in the CFG."""

    idx: int
    stmt: ast.AST
    parts: Tuple[ast.AST, ...]
    succs: List[int] = field(default_factory=list)
    has_yield: bool = False

    def link(self, succ: int) -> None:
        if succ not in self.succs:
            self.succs.append(succ)


def _own_contains_yield(parts: Sequence[ast.AST]) -> bool:
    for part in parts:
        stack = [part]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            stack.extend(ast.iter_child_nodes(node))
    return False


class _Builder:
    def __init__(self) -> None:
        self.nodes: List[CfgNode] = []
        # (handler_entry_idxs,) stack: active try contexts.
        self.handler_stack: List[List[int]] = []
        # (header_idx, break_collector) stack: active loops.
        self.loop_stack: List[Tuple[int, List[int]]] = []

    def new_node(self, stmt: ast.AST,
                 parts: Sequence[ast.AST]) -> CfgNode:
        node = CfgNode(idx=len(self.nodes), stmt=stmt, parts=tuple(parts),
                       has_yield=_own_contains_yield(parts))
        self.nodes.append(node)
        # Anything inside a try body may raise mid-statement.
        for handlers in self.handler_stack:
            for entry in handlers:
                node.link(entry)
        return node

    def block(self, stmts: Sequence[ast.stmt],
              preds: List[int]) -> List[int]:
        """Wire ``stmts`` after ``preds``; return the exit node idxs."""
        for stmt in stmts:
            preds = self.statement(stmt, preds)
        return preds

    def _enter(self, preds: List[int], node: CfgNode) -> None:
        for pred in preds:
            self.nodes[pred].link(node.idx)

    def statement(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            header = self.new_node(stmt, [stmt.test])
            self._enter(preds, header)
            body_exits = self.block(stmt.body, [header.idx])
            if stmt.orelse:
                else_exits = self.block(stmt.orelse, [header.idx])
                return body_exits + else_exits
            return body_exits + [header.idx]

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                parts: List[ast.AST] = [stmt.test]
            else:
                parts = [stmt.target, stmt.iter]
            header = self.new_node(stmt, parts)
            self._enter(preds, header)
            breaks: List[int] = []
            self.loop_stack.append((header.idx, breaks))
            body_exits = self.block(stmt.body, [header.idx])
            self.loop_stack.pop()
            for exit_idx in body_exits:
                self.nodes[exit_idx].link(header.idx)
            else_exits = (self.block(stmt.orelse, [header.idx])
                          if stmt.orelse else [header.idx])
            return else_exits + breaks

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            parts = [item.context_expr for item in stmt.items]
            parts.extend(item.optional_vars for item in stmt.items
                         if item.optional_vars is not None)
            header = self.new_node(stmt, parts)
            self._enter(preds, header)
            return self.block(stmt.body, [header.idx])

        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)

        if isinstance(stmt, ast.Match):
            header = self.new_node(stmt, [stmt.subject])
            self._enter(preds, header)
            exits: List[int] = [header.idx]
            for case in stmt.cases:
                exits.extend(self.block(case.body, [header.idx]))
            return exits

        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self.new_node(stmt, [])
            self._enter(preds, node)
            if self.loop_stack:
                header_idx, breaks = self.loop_stack[-1]
                if isinstance(stmt, ast.Break):
                    breaks.append(node.idx)
                else:
                    node.link(header_idx)
            return []

        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self.new_node(stmt, [stmt])
            self._enter(preds, node)
            return []

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Opaque: the nested body runs later (or in another scope).
            node = self.new_node(stmt, [])
            self._enter(preds, node)
            return [node.idx]

        node = self.new_node(stmt, [stmt])
        self._enter(preds, node)
        return [node.idx]

    def _try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        entry = self.new_node(stmt, [])
        self._enter(preds, entry)
        # Handler entry markers first, so body nodes can edge to them.
        handler_entries: List[int] = []
        handler_nodes: List[Tuple[ast.ExceptHandler, CfgNode]] = []
        for handler in stmt.handlers:
            marker = self.new_node(handler, [handler.type]
                                   if handler.type is not None else [])
            handler_entries.append(marker.idx)
            handler_nodes.append((handler, marker))
        self.handler_stack.append(handler_entries)
        body_exits = self.block(stmt.body, [entry.idx])
        self.handler_stack.pop()
        exits: List[int] = []
        if stmt.orelse:
            exits.extend(self.block(stmt.orelse, body_exits))
        else:
            exits.extend(body_exits)
        for handler, marker in handler_nodes:
            exits.extend(self.block(handler.body, [marker.idx]))
        if stmt.finalbody:
            exits = self.block(stmt.finalbody, exits)
        return exits


def build_cfg(func: ast.AST) -> List[CfgNode]:
    """CFG of ``func``'s body.  Node 0 is the entry (first statement's
    node has idx 0 only if the body is non-trivial — callers should
    treat index 0 as the entry regardless)."""
    builder = _Builder()
    builder.block(list(getattr(func, "body", [])), [])
    return builder.nodes


def iter_parts(node: CfgNode) -> Iterator[ast.AST]:
    """All AST nodes executed at this CFG node, nested defs excluded."""
    for part in node.parts:
        stack = [part]
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue
            yield sub
            stack.extend(ast.iter_child_nodes(sub))


def entry_index(nodes: List[CfgNode]) -> Optional[int]:
    return 0 if nodes else None
