"""The simlint rule set: simulator-discipline checks for the repro tree.

Every rule is a pure function from ``(ast.Module, FileContext)`` to an
iterator of ``(node, message)`` pairs, registered in :data:`RULES` via
the :func:`rule` decorator.  The engine (``repro.simlint.engine``)
turns those pairs into :class:`~repro.simlint.findings.Finding` records,
applies suppression comments and baselines, and renders reports.

The rules are grounded in how this repository actually achieves
byte-identical same-seed runs (see DESIGN.md §5):

* the kernel clock (``Simulator.now``) is the *only* time source, so
  any wall-clock read is a replayability bug (SL001);
* all randomness flows through ``repro.sim.rng.RngRegistry`` streams,
  so the global ``random`` / legacy ``numpy.random`` state is banned
  (SL002);
* placement and allocation loops must visit work in a deterministic
  order, so bare ``set``/``frozenset`` iteration is banned (SL003) and
  ``id()``-based ordering (which varies with the allocator) is banned
  (SL004);
* CPython ``dict`` iteration is insertion-ordered and therefore
  deterministic under same-seed execution, which is why SL003 does
  *not* flag plain dict/``.keys()`` loops;
* process coroutines talk to the kernel only by yielding Events and
  calling public APIs, never by poking agenda internals (SL006, SL007).

See AUTHORING.md in this package for the how-to-add-a-rule guide.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .findings import ERROR, WARNING
from .flow import flow_findings

__all__ = ["Rule", "FileContext", "RULES", "ALL_RULE_IDS", "PARSE_ERROR_ID"]

RuleHits = Iterator[Tuple[ast.AST, str]]


@dataclass(frozen=True)
class FileContext:
    """Per-file facts shared by every rule.

    ``relpath`` is posix-style, relative to the lint root.  The import
    maps let rules resolve a call site to a dotted module path (e.g.
    ``pc()`` after ``from time import perf_counter as pc`` resolves to
    ``"time.perf_counter"``) without any type inference.
    """

    relpath: str
    module_aliases: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: Cross-file facts for the flow rules (SL020–SL023).  None means
    #: single-file mode: the flow rules build a graph from this file
    #: alone, so fixtures and ad-hoc ``lint_source`` calls still work.
    project: Optional[object] = None
    #: Per-file scratch space so rules sharing an expensive analysis
    #: (the yield-point dataflow) run it once.
    scratch: Dict[str, object] = field(default_factory=dict)

    @property
    def in_kernel_package(self) -> bool:
        """True for files inside the ``sim`` package itself, which are
        allowed to touch kernel-private state (SL006 exemption)."""
        return "sim" in self.relpath.split("/")[:-1]

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute expression, through imports.

        Returns e.g. ``"numpy.random.rand"`` for ``np.random.rand``
        after ``import numpy as np``, or None when the expression is
        not a plain dotted chain rooted in an imported name.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.module_aliases:
            parts.append(self.module_aliases[base])
        elif base in self.from_imports:
            parts.append(self.from_imports[base])
        else:
            parts.append(base)
        return ".".join(reversed(parts))


def build_context(relpath: str, tree: ast.Module,
                  project: Optional[object] = None) -> FileContext:
    """Collect the import maps for ``tree``."""
    ctx = FileContext(relpath=relpath, project=project)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                ctx.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                # `import a.b.c` binds `a`, but `import a.b.c as x`
                # binds x to the full dotted path.
                if alias.asname:
                    ctx.module_aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name != "*":
                    ctx.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return ctx


@dataclass(frozen=True)
class Rule:
    """A registered simlint rule."""

    id: str
    severity: str
    summary: str
    hint: str
    check: Callable[[ast.Module, FileContext], RuleHits]


RULES: Dict[str, Rule] = {}

#: Pseudo-rule the engine emits when a file does not parse.  It has no
#: checker; it exists so reports, --select and baselines treat parse
#: failures like any other finding.
PARSE_ERROR_ID = "SL000"


def rule(id: str, severity: str, summary: str, hint: str):
    """Register a checker function under ``id`` (see AUTHORING.md)."""

    def register(check: Callable[[ast.Module, FileContext], RuleHits]):
        RULES[id] = Rule(id=id, severity=severity, summary=summary,
                         hint=hint, check=check)
        return check

    return register


def _none_checker(tree: ast.Module, ctx: FileContext) -> RuleHits:
    return iter(())


RULES[PARSE_ERROR_ID] = Rule(
    id=PARSE_ERROR_ID, severity=ERROR,
    summary="file does not parse",
    hint="fix the syntax error; nothing else can be checked",
    check=_none_checker)


# ---------------------------------------------------------------------------
# SL001 — wall-clock reads in simulation code
# ---------------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@rule("SL001", ERROR,
      "wall-clock read in simulation code",
      "use the kernel clock (sim.now); wall-clock reads make same-seed "
      "runs diverge across machines and break trace replay")
def check_wall_clock(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = ctx.resolve(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield node, f"call to {dotted}()"


# ---------------------------------------------------------------------------
# SL002 — global RNG state instead of seeded repro.sim.rng streams
# ---------------------------------------------------------------------------

_LEGACY_NP_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "exponential", "poisson",
    "binomial", "beta", "gamma", "bytes", "get_state", "set_state",
})


@rule("SL002", ERROR,
      "global random state instead of a seeded Generator",
      "draw from a named repro.sim.rng.RngRegistry stream (or an "
      "explicitly passed numpy.random.Generator); the global random "
      "module shares hidden state across subsystems")
def check_global_random(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node, "import of the global random module"
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and not node.level:
                yield node, "from-import of the global random module"
        elif isinstance(node, ast.Call):
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                yield node, f"call to the global {dotted}()"
            elif dotted.startswith("numpy.random."):
                tail = dotted.split(".")[-1]
                if tail in _LEGACY_NP_RANDOM:
                    yield node, (f"call to {dotted}() — the legacy global "
                                 "numpy RandomState")


# ---------------------------------------------------------------------------
# SL003 — iteration over unordered sets without sorted()
# ---------------------------------------------------------------------------

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})
#: Consumers whose result depends on element *order* (unlike len/sum/
#: min/max/any/all/sorted, which are order-insensitive and allowed).
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate"})


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_set_expr(func.value, set_names) or isinstance(
                func.value, (ast.Set, ast.SetComp))
    return False


def _set_bound_names(scope: ast.AST) -> Set[str]:
    """Names assigned a syntactically-set value anywhere in ``scope``
    (own statements only, not nested function bodies)."""
    names: Set[str] = set()
    nested: Set[int] = set()
    for node in ast.walk(scope):
        if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for sub in ast.walk(node):
                nested.add(id(sub))
    # Two passes so `b = a` after `a = set()` is caught.
    for _ in range(2):
        for node in ast.walk(scope):
            if id(node) in nested:
                continue
            value = None
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AugAssign):
                value, targets = node.value, [node.target]
            if value is not None and _is_set_expr(value, names):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


@rule("SL003", ERROR,
      "iteration over an unordered set without sorted()",
      "wrap the iterable in sorted(...); set iteration order varies "
      "with PYTHONHASHSEED and allocation history, which changes "
      "placement/allocation order and breaks byte-identical traces "
      "(dict iteration is insertion-ordered and exempt)")
def check_set_iteration(tree: ast.Module, ctx: FileContext) -> RuleHits:
    scopes: List[ast.AST] = [tree]
    scopes.extend(n for n in ast.walk(tree)
                  if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
    seen: Set[int] = set()
    for scope in scopes:
        set_names = _set_bound_names(scope)
        for node in ast.walk(scope):
            if id(node) in seen:
                continue
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters = [g.iter for g in node.generators]
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name)
                        and func.id in _ORDERED_CONSUMERS and node.args):
                    iters = [node.args[0]]
                elif (isinstance(func, ast.Attribute) and func.attr == "join"
                      and node.args):
                    iters = [node.args[0]]
            elif isinstance(node, ast.Starred):
                iters = [node.value]
            for it in iters:
                if _is_set_expr(it, set_names):
                    seen.add(id(node))
                    yield it, "unordered iteration over a set"


# ---------------------------------------------------------------------------
# SL004 — id()-based ordering or tie-breaking
# ---------------------------------------------------------------------------

def _is_id_key(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call):
        func = node.body.func
        return isinstance(func, ast.Name) and func.id == "id"
    return False


@rule("SL004", ERROR,
      "id()-based ordering or tie-break",
      "order by a stable key (name, sequence number, interned index); "
      "id() values depend on the allocator and differ run to run "
      "(membership tests on id() are fine — only ordering is flagged)")
def check_id_ordering(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "key" and _is_id_key(kw.value):
                    yield node, "key=id passed to an ordering function"
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                   for op in node.ops):
                for operand in operands:
                    if (isinstance(operand, ast.Call)
                            and isinstance(operand.func, ast.Name)
                            and operand.func.id == "id"):
                        yield node, "relational comparison of id() values"
                        break


# ---------------------------------------------------------------------------
# SL005 — float == on simulation-time values
# ---------------------------------------------------------------------------

_TIME_NAME = re.compile(
    r"(?:^|_)(now|when|deadline|makespan|eta|time)$"
    r"|_(at|ts|seconds)$"
    r"|^t[0-9]?$")


def _is_time_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return bool(_TIME_NAME.search(node.attr))
    if isinstance(node, ast.Name):
        return bool(_TIME_NAME.search(node.id))
    return False


@rule("SL005", WARNING,
      "exact float equality on a simulation-time value",
      "compare times with an explicit tolerance (math.isclose or an "
      "epsilon) or restructure so the kernel hands you the event; "
      "accumulated float error makes exact time equality fragile")
def check_time_equality(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if (any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
                    and any(_is_time_operand(o) for o in operands)):
                yield node, "== / != on a time-valued expression"


# ---------------------------------------------------------------------------
# SL006 — kernel/queue state mutated outside the sim package
# ---------------------------------------------------------------------------

_KERNEL_PRIVATE_ATTRS = frozenset({
    "_agenda", "_now", "_seq", "_active_process",
})
_KERNEL_PRIVATE_CALLS = frozenset({"_schedule", "_queue_event"})


@rule("SL006", ERROR,
      "kernel-private state touched outside repro.sim",
      "go through the public kernel API (timeout/process/event/"
      "add_callback, call_at/call_after); direct agenda or callback-"
      "list surgery bypasses the deterministic event ordering")
def check_kernel_state(tree: ast.Module, ctx: FileContext) -> RuleHits:
    if ctx.in_kernel_package:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            if node.attr == "_agenda":
                # Even *reading* the agenda couples callers to heap
                # internals (and every known read feeds a heapq call).
                yield node, "access to the kernel-private ._agenda heap"
            elif (node.attr in _KERNEL_PRIVATE_ATTRS
                    and isinstance(node.ctx, (ast.Store, ast.Del))):
                yield node, f"write to kernel-private .{node.attr}"
            elif node.attr == "callbacks" and isinstance(node.ctx, ast.Store):
                yield node, "direct assignment to an Event's .callbacks"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _KERNEL_PRIVATE_CALLS:
                    yield node, f"call to kernel-private .{func.attr}()"
                elif (func.attr in ("append", "remove", "insert", "clear")
                      and isinstance(func.value, ast.Attribute)
                      and func.value.attr == "callbacks"):
                    yield node, ("direct mutation of an Event's .callbacks "
                                 "list")


# ---------------------------------------------------------------------------
# SL007 — yielding non-Event values from a sim-process coroutine
# ---------------------------------------------------------------------------

_EVENT_FACTORY_ATTRS = frozenset({
    "timeout", "process", "event", "all_of", "any_of",
})
_EVENT_FACTORY_NAMES = frozenset({"Timeout", "Event", "AllOf", "AnyOf",
                                  "Process"})


def _own_yields(func: ast.AST) -> List[ast.Yield]:
    """Yield nodes of ``func`` itself, excluding nested functions."""
    yields: List[ast.Yield] = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Yield):
            yields.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return yields


def _yields_event_factory(yields: List[ast.Yield]) -> bool:
    for y in yields:
        value = y.value
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute):
                if func.attr in _EVENT_FACTORY_ATTRS:
                    return True
            elif isinstance(func, ast.Name):
                if func.id in _EVENT_FACTORY_NAMES:
                    return True
    return False


@rule("SL007", ERROR,
      "sim-process coroutine yields a non-Event value",
      "every yield in a process body must produce an Event (timeout/"
      "process/event/AllOf/AnyOf or another process); the kernel "
      "fails the process at runtime when it yields anything else")
def check_process_yields(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yields = _own_yields(node)
        if not yields or not _yields_event_factory(yields):
            continue
        for y in yields:
            value = y.value
            if value is None:
                yield y, "bare yield (yields None, not an Event)"
            elif isinstance(value, ast.Constant):
                yield y, f"yield of the constant {value.value!r}"
            elif isinstance(value, (ast.Tuple, ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.SetComp, ast.DictComp)):
                yield y, "yield of a container literal, not an Event"


# ---------------------------------------------------------------------------
# SL008 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray",
                                "defaultdict", "deque"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_FACTORIES
    return False


@rule("SL008", WARNING,
      "mutable default argument",
      "default to None and create the container in the body (or use a "
      "tuple/frozenset); the shared default accumulates state across "
      "calls and across same-seed runs within one process")
def check_mutable_defaults(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if _is_mutable_default(default):
                    yield default, "mutable default argument value"


# ---------------------------------------------------------------------------
# SL009 — salted builtin hash() in simulation logic
# ---------------------------------------------------------------------------

@rule("SL009", WARNING,
      "builtin hash() in simulation logic",
      "builtin hash() of str/bytes is salted per process "
      "(PYTHONHASHSEED), so hash-derived values differ across runs; "
      "use a stable hash (see repro.sim.rng._stable_hash) or key by "
      "the value itself")
def check_builtin_hash(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "hash"):
            yield node, "call to the salted builtin hash()"


# ---------------------------------------------------------------------------
# SL010 — ambient process/host entropy in simulation code
# ---------------------------------------------------------------------------

_AMBIENT_CALLS = frozenset({
    "os.urandom", "os.getpid", "os.getppid", "os.getenv", "os.cpu_count",
    "uuid.uuid1", "uuid.uuid4", "socket.gethostname", "platform.node",
})


@rule("SL010", ERROR,
      "ambient process/host entropy read in simulation code",
      "inject configuration and seeds explicitly (constructor args, "
      "RngRegistry); environment variables, pids, hostnames and "
      "urandom make runs machine-dependent")
def check_ambient_entropy(tree: ast.Module, ctx: FileContext) -> RuleHits:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            if dotted in _AMBIENT_CALLS or dotted.startswith("secrets."):
                yield node, f"call to {dotted}()"
        elif isinstance(node, ast.Attribute) and node.attr == "environ":
            dotted = ctx.resolve(node)
            if dotted == "os.environ":
                yield node, "read of os.environ"


# ---------------------------------------------------------------------------
# SL020–SL023 — flow rules over the project symbol graph
#
# These are interprocedural: repro.simlint.symbols decides which
# functions are simulated-process generators (reachable from kernel
# spawn sites) and repro.simlint.flow runs a yield-point dataflow over
# each one.  The checkers here are thin registrations; see flow.py for
# the analysis and AUTHORING.md for how to write a new flow rule.
# ---------------------------------------------------------------------------


@rule("SL020", ERROR,
      "stale read-modify-write on shared state across a yield",
      "a yield suspends the process and lets other events run; "
      "re-read the shared attribute/global after resuming (or do the "
      "read-modify-write without yielding in between) instead of "
      "writing back a value captured before the yield")
def check_stale_rmw(tree: ast.Module, ctx: FileContext) -> RuleHits:
    yield from flow_findings("SL020", tree, ctx)


@rule("SL021", ERROR,
      "shared container iterated across a yield while mutated elsewhere",
      "iterate over a snapshot (list(...)/sorted(...)) or restructure "
      "so the loop does not yield; another process generator mutates "
      "this container, so resuming mid-iteration sees a shifted or "
      "invalidated view")
def check_shared_iteration(tree: ast.Module, ctx: FileContext) -> RuleHits:
    yield from flow_findings("SL021", tree, ctx)


@rule("SL022", WARNING,
      "shared RNG stream drawn from more than one process generator",
      "give each process generator its own named RngRegistry stream; "
      "when several generators draw from one stream, any change in "
      "event interleaving reorders the draws and same-seed runs "
      "diverge after unrelated refactors")
def check_shared_rng(tree: ast.Module, ctx: FileContext) -> RuleHits:
    yield from flow_findings("SL022", tree, ctx)


@rule("SL023", WARNING,
      "cached value returned after a yield without a re-check",
      "memoised state can be invalidated while the process is "
      "suspended; re-read the cache slot (or re-validate its version) "
      "after the yield before returning it")
def check_stale_cache_return(tree: ast.Module, ctx: FileContext) -> RuleHits:
    yield from flow_findings("SL023", tree, ctx)


ALL_RULE_IDS: Tuple[str, ...] = tuple(sorted(RULES))
