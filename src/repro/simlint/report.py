"""Text and JSON reporters for simlint findings."""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .findings import ERROR, Finding
from .rules import RULES

__all__ = ["render_text", "render_json", "render_github",
           "render_rule_table"]


def render_text(findings: Sequence[Finding],
                grandfathered: int = 0) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"[{finding.severity}] {finding.message}")
        lines.append(f"    hint: {finding.hint}")
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = len(findings) - errors
    summary = (f"simlint: {len(findings)} finding(s) "
               f"({errors} error(s), {warnings} warning(s))")
    if grandfathered:
        summary += f", {grandfathered} grandfathered by baseline"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                grandfathered: Optional[Sequence[Finding]] = None) -> str:
    """Machine-readable report (stable key order, one JSON object)."""
    def as_dict(finding: Finding) -> Dict:
        return {
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule,
            "severity": finding.severity,
            "message": finding.message,
            "hint": finding.hint,
            "fingerprint": finding.fingerprint,
        }

    payload = {
        "version": 1,
        "count": len(findings),
        "findings": [as_dict(f) for f in findings],
        "grandfathered": [as_dict(f) for f in (grandfathered or [])],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _gh_escape_message(text: str) -> str:
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def _gh_escape_property(text: str) -> str:
    return (_gh_escape_message(text).replace(":", "%3A")
            .replace(",", "%2C"))


def render_github(findings: Sequence[Finding],
                  grandfathered: int = 0,
                  display_paths: Optional[Dict[str, str]] = None) -> str:
    """GitHub Actions workflow-command annotations, one per finding.

    ``display_paths`` remaps a finding's lint-root-relative path to a
    repository-relative path so the annotation anchors to the real
    file in the PR diff; unmapped paths pass through unchanged.
    """
    lines: List[str] = []
    for finding in findings:
        path = (display_paths or {}).get(finding.path, finding.path)
        level = "error" if finding.severity == ERROR else "warning"
        message = f"{finding.message} — hint: {finding.hint}"
        lines.append(
            f"::{level} file={_gh_escape_property(path)},"
            f"line={finding.line},col={finding.col + 1},"
            f"title={_gh_escape_property(f'simlint {finding.rule}')}"
            f"::{_gh_escape_message(message)}")
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = len(findings) - errors
    summary = (f"simlint: {len(findings)} finding(s) "
               f"({errors} error(s), {warnings} warning(s))")
    if grandfathered:
        summary += f", {grandfathered} grandfathered by baseline"
    lines.append(summary)
    return "\n".join(lines)


def render_rule_table(rule_ids: Optional[Iterable[str]] = None) -> str:
    """The registered rules, for ``repro lint --list-rules``."""
    lines = []
    for rule_id in sorted(rule_ids if rule_ids is not None else RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule.id}  [{rule.severity:7s}] {rule.summary}")
    return "\n".join(lines)
