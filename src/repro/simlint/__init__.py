"""repro.simlint — determinism & kernel-discipline static analysis.

An AST-based linter enforcing the invariants the rest of the repository
relies on for byte-identical same-seed runs: no wall-clock reads, no
global RNG state, ordered iteration in placement paths, no id()-based
ordering, kernel state changes only through the public event API.  Run
it with ``repro lint`` (see ``repro lint --list-rules`` for the rule
table, DESIGN.md §5 for the invariant mapping, and AUTHORING.md in this
package for how to add a rule).
"""

from .baseline import (
    apply_baseline,
    load_baseline,
    make_baseline,
    write_baseline,
)
from .engine import (
    UnknownRuleError,
    discover_files,
    lint_paths,
    lint_source,
    select_rules,
)
from .findings import ERROR, WARNING, Finding
from .report import render_json, render_rule_table, render_text
from .rules import ALL_RULE_IDS, PARSE_ERROR_ID, RULES, Rule

__all__ = [
    "ALL_RULE_IDS",
    "ERROR",
    "Finding",
    "PARSE_ERROR_ID",
    "RULES",
    "Rule",
    "UnknownRuleError",
    "WARNING",
    "apply_baseline",
    "discover_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "make_baseline",
    "render_json",
    "render_rule_table",
    "render_text",
    "select_rules",
    "write_baseline",
]
