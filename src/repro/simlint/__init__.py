"""repro.simlint — determinism & kernel-discipline static analysis.

An AST-based linter enforcing the invariants the rest of the repository
relies on for byte-identical same-seed runs: no wall-clock reads, no
global RNG state, ordered iteration in placement paths, no id()-based
ordering, kernel state changes only through the public event API.  On
top of the per-statement rules (SL001–SL010), a project symbol graph
(:mod:`repro.simlint.symbols`) and a yield-point dataflow pass
(:mod:`repro.simlint.flow`) catch cross-event interleaving hazards in
simulated-process generators: stale read-modify-writes, containers
mutated under a suspended iteration, shared RNG streams, and stale
cache returns (SL020–SL023).  Run it with ``repro lint`` (see ``repro
lint --list-rules`` for the rule table, DESIGN.md §5 for the invariant
mapping, and AUTHORING.md in this package for how to add a rule).
"""

from .baseline import (
    apply_baseline,
    load_baseline,
    make_baseline,
    write_baseline,
)
from .cache import AnalysisCache
from .engine import (
    LintResult,
    UnknownRuleError,
    discover_files,
    lint_paths,
    lint_source,
    lint_tree,
    select_rules,
)
from .findings import ERROR, WARNING, Finding
from .report import render_github, render_json, render_rule_table, render_text
from .rules import ALL_RULE_IDS, PARSE_ERROR_ID, RULES, Rule
from .symbols import ModuleSymbols, ProjectGraph, build_graph, extract_symbols

__all__ = [
    "ALL_RULE_IDS",
    "AnalysisCache",
    "ERROR",
    "Finding",
    "LintResult",
    "ModuleSymbols",
    "PARSE_ERROR_ID",
    "ProjectGraph",
    "RULES",
    "Rule",
    "UnknownRuleError",
    "WARNING",
    "apply_baseline",
    "build_graph",
    "discover_files",
    "extract_symbols",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "load_baseline",
    "make_baseline",
    "render_github",
    "render_json",
    "render_rule_table",
    "render_text",
    "select_rules",
    "write_baseline",
]
