"""Content-hash incremental cache for the simlint engine.

Two stores under ``<root>/v1/``:

* ``sym/<chash>.json`` — the per-file symbol summary
  (:class:`~repro.simlint.symbols.ModuleSymbols`), keyed only by the
  file's content hash: symbols are a local property of the file.
* ``find/<chash>-<graph16>-<rules16>.json`` — the per-file findings,
  keyed by the content hash *plus* the project-graph digest and the
  active rule set: the flow rules read cross-file facts, so a change
  anywhere that shifts the graph invalidates every cached finding
  list, while a comment-only edit elsewhere (same digest) does not.

Findings are stored without their ``path`` field and re-anchored on
load, so a cache survives the tree being linted from a different
checkout location.  Every write is atomic (tmp + ``os.replace``) and
every unreadable/corrupt entry is a miss — the cache can be deleted
at any time with no behaviour change beyond speed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import List, Optional

from .findings import Finding

__all__ = ["AnalysisCache", "content_hash", "CACHE_LAYOUT_VERSION"]

CACHE_LAYOUT_VERSION = "v1"


def content_hash(source_bytes: bytes, relpath: str) -> str:
    digest = hashlib.sha256()
    digest.update(relpath.encode("utf-8"))
    digest.update(b"\0")
    digest.update(source_bytes)
    return digest.hexdigest()


def _finding_payload(finding: Finding) -> dict:
    return {
        "line": finding.line, "col": finding.col, "rule": finding.rule,
        "severity": finding.severity, "message": finding.message,
        "hint": finding.hint, "fingerprint": finding.fingerprint,
    }


def _finding_from_payload(payload: dict, relpath: str) -> Finding:
    return Finding(
        path=relpath, line=payload["line"], col=payload["col"],
        rule=payload["rule"], severity=payload["severity"],
        message=payload["message"], hint=payload["hint"],
        fingerprint=payload["fingerprint"],
    )


class AnalysisCache:
    """Filesystem cache rooted at ``root`` (e.g. ``.simlint-cache``)."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self._base = os.path.join(self.root, CACHE_LAYOUT_VERSION)

    # -- internals ----------------------------------------------------

    def _read(self, path: str) -> Optional[dict]:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _write(self, path: str, payload: dict) -> None:
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True,
                              separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or contended cache directory must never fail
            # the lint run; it just stops being a cache.
            pass

    def _findings_path(self, chash: str, graph_digest: str,
                       rules_key: str) -> str:
        return os.path.join(
            self._base, "find",
            f"{chash}-{graph_digest[:16]}-{rules_key[:16]}.json")

    # -- symbol summaries ---------------------------------------------

    def get_symbols(self, chash: str) -> Optional[dict]:
        return self._read(os.path.join(self._base, "sym", f"{chash}.json"))

    def put_symbols(self, chash: str, payload: dict) -> None:
        self._write(os.path.join(self._base, "sym", f"{chash}.json"),
                    payload)

    # -- per-file findings --------------------------------------------

    def get_findings(self, chash: str, graph_digest: str, rules_key: str,
                     relpath: str) -> Optional[List[Finding]]:
        payload = self._read(
            self._findings_path(chash, graph_digest, rules_key))
        if payload is None or "findings" not in payload:
            return None
        try:
            return [_finding_from_payload(f, relpath)
                    for f in payload["findings"]]
        except (KeyError, TypeError):
            return None

    def put_findings(self, chash: str, graph_digest: str, rules_key: str,
                     findings: List[Finding]) -> None:
        payload = {"findings": [_finding_payload(f) for f in findings]}
        self._write(self._findings_path(chash, graph_digest, rules_key),
                    payload)
