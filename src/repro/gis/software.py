"""Software location registry — the half of GIS the binder talks to.

Section 2: "the global binder queries the GrADS Information Service
(GIS) to locate necessary software on the scheduled node, starting with
the local binder code" and then "queries GIS for the locations of
application-specific libraries".  This registry records which packages
(binder, MPI, application libraries like ScaLAPACK or EMAN kernels) are
installed on which hosts, and at what path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["SoftwarePackage", "SoftwareRegistry", "SoftwareNotFound"]


class SoftwareNotFound(KeyError):
    """Raised when a required package is not installed on a host."""


@dataclass(frozen=True)
class SoftwarePackage:
    """An installable unit: a library, the binder itself, a toolchain."""

    name: str
    version: str = "1.0"
    #: ISAs this install supports; empty means portable (source form)
    isas: Tuple[str, ...] = ()

    def supports(self, isa: str) -> bool:
        return not self.isas or isa in self.isas


class SoftwareRegistry:
    """Tracks (package, host) -> install path."""

    def __init__(self) -> None:
        self._installs: Dict[Tuple[str, str], Tuple[SoftwarePackage, str]] = {}

    def install(self, package: SoftwarePackage, host_name: str,
                path: str = "") -> None:
        """Record that ``package`` is available on ``host_name``."""
        path = path or f"/grads/sw/{package.name}-{package.version}"
        self._installs[(package.name, host_name)] = (package, path)

    def install_everywhere(self, package: SoftwarePackage,
                           host_names: Iterable[str]) -> None:
        for name in host_names:
            self.install(package, name)

    def locate(self, package_name: str, host_name: str) -> str:
        """Install path of a package on a host; raises if absent."""
        try:
            return self._installs[(package_name, host_name)][1]
        except KeyError:
            raise SoftwareNotFound(
                f"{package_name!r} is not installed on {host_name!r}") from None

    def is_installed(self, package_name: str, host_name: str) -> bool:
        return (package_name, host_name) in self._installs

    def hosts_with(self, package_name: str) -> List[str]:
        """All hosts carrying a package, sorted for determinism."""
        return sorted(h for (p, h) in self._installs if p == package_name)

    def packages_on(self, host_name: str) -> List[str]:
        return sorted(p for (p, h) in self._installs if h == host_name)

    def missing(self, package_names: Iterable[str],
                host_name: str) -> List[str]:
        """Which of ``package_names`` are absent on ``host_name``."""
        return [p for p in package_names
                if not self.is_installed(p, host_name)]
