"""Grid Information Service (GIS), in the spirit of MDS.

The GrADS scheduler and binder both start by asking "what resources
exist and what is installed where" (§2, §3.1).  This module provides
that directory: resource records for hosts with attribute-based
queries, the way MDS's LDAP-style lookups were used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..microgrid.dml import Grid
from ..microgrid.host import Host

__all__ = ["ResourceRecord", "GridInformationService", "GISError"]


class GISError(KeyError):
    """Raised when a lookup cannot be satisfied."""


@dataclass(frozen=True)
class ResourceRecord:
    """Directory entry for one compute resource."""

    name: str
    site: str
    cluster: Optional[str]
    isa: str
    mflops: float
    cores: int
    memory_bytes: int
    cache_bytes: int

    @classmethod
    def from_host(cls, host: Host) -> "ResourceRecord":
        cluster = host.cluster.name if host.cluster is not None else None
        site = host.cluster.site if host.cluster is not None else host.name
        return cls(
            name=host.name,
            site=site,
            cluster=cluster,
            isa=host.arch.isa,
            mflops=host.arch.mflops,
            cores=host.cores,
            memory_bytes=host.arch.memory_bytes,
            cache_bytes=host.arch.caches[0].size if host.arch.caches else 0,
        )


class GridInformationService:
    """An in-memory MDS: register resources, query by attributes."""

    def __init__(self) -> None:
        self._records: Dict[str, ResourceRecord] = {}
        self._hosts: Dict[str, Host] = {}

    # -- registration ---------------------------------------------------------
    def register_host(self, host: Host) -> ResourceRecord:
        record = ResourceRecord.from_host(host)
        self._records[record.name] = record
        self._hosts[record.name] = host
        return record

    def register_grid(self, grid: Grid) -> None:
        """Register every host of a built grid."""
        for host in grid.all_hosts():
            self.register_host(host)

    def unregister(self, name: str) -> None:
        if name not in self._records:
            raise GISError(f"unknown resource {name!r}")
        del self._records[name]
        del self._hosts[name]

    # -- lookups ----------------------------------------------------------------
    def lookup(self, name: str) -> ResourceRecord:
        try:
            return self._records[name]
        except KeyError:
            raise GISError(f"unknown resource {name!r}") from None

    def host(self, name: str) -> Host:
        """Resolve a record name back to the live host object."""
        try:
            return self._hosts[name]
        except KeyError:
            raise GISError(f"unknown resource {name!r}") from None

    def resources(self) -> List[ResourceRecord]:
        """All registered resources, in a stable (name) order."""
        return [self._records[k] for k in sorted(self._records)]

    def query(self, *,
              site: Optional[str] = None,
              cluster: Optional[str] = None,
              isa: Optional[str] = None,
              min_mflops: float = 0.0,
              min_memory_bytes: int = 0,
              predicate: Optional[Callable[[ResourceRecord], bool]] = None,
              ) -> List[ResourceRecord]:
        """Attribute-filtered resource search."""
        out = []
        for record in self.resources():
            if site is not None and record.site != site:
                continue
            if cluster is not None and record.cluster != cluster:
                continue
            if isa is not None and record.isa != isa:
                continue
            if record.mflops < min_mflops:
                continue
            if record.memory_bytes < min_memory_bytes:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def sites(self) -> List[str]:
        return sorted({r.site for r in self._records.values()})

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records
