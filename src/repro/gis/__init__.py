"""Grid Information Service: resource directory and software registry."""

from .directory import GISError, GridInformationService, ResourceRecord
from .software import SoftwareNotFound, SoftwarePackage, SoftwareRegistry
from .vgrid import (
    Tightness,
    VgridError,
    VgridSpec,
    VirtualGrid,
    find_and_bind,
)

__all__ = [
    "GISError",
    "GridInformationService",
    "ResourceRecord",
    "SoftwareNotFound",
    "SoftwarePackage",
    "SoftwareRegistry",
    "Tightness",
    "VgridError",
    "VgridSpec",
    "VirtualGrid",
    "find_and_bind",
]
