"""Virtual grids (vgrids) — the VGrADS abstraction layer.

"We have recently started to apply these insights in our new Virtual
Grid Application Development (VGrADS) project.  This project adds an
abstraction layer called virtual Grids (vgrids) to the current Grid
infrastructure" (§5).

A vgrid is a *specification* of the resource aggregate an application
wants ("a tight bag of 8 IA-32 machines of at least 150 Mflop/s", "a
loose bag of 30 machines anywhere") that the infrastructure *finds and
binds* against the physical grid.  Applications then schedule against
the bound vgrid instead of raw GIS records, which is how VGrADS carried
over the GrADS workflow scheduler and reschedulers unchanged.

The classic vgrid vocabulary (Kee et al.) distinguishes aggregates by
network tightness; here:

* ``TIGHT``  — all resources in one cluster (LAN latency);
* ``SITE``   — all resources at one site (clusters may differ);
* ``LOOSE``  — anywhere on the grid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..nws.service import NetworkWeatherService
from .directory import GridInformationService, ResourceRecord

__all__ = ["Tightness", "VgridSpec", "VirtualGrid", "VgridError",
           "find_and_bind"]


class VgridError(RuntimeError):
    """Raised when no physical resources satisfy a specification."""


class Tightness(enum.Enum):
    """How tightly coupled the requested aggregate must be."""

    TIGHT = "tight"  # one cluster
    SITE = "site"  # one site
    LOOSE = "loose"  # anywhere


@dataclass(frozen=True)
class VgridSpec:
    """What the application asks for."""

    n_nodes: int
    tightness: Tightness = Tightness.LOOSE
    isa: Optional[str] = None
    min_mflops: float = 0.0
    min_memory_bytes: int = 0
    #: rank candidates by effective speed (True) or leave GIS order
    prefer_fast: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a vgrid needs at least one node")
        if self.min_mflops < 0 or self.min_memory_bytes < 0:
            raise ValueError("minimum requirements cannot be negative")

    def admits(self, record: ResourceRecord) -> bool:
        """Does one physical resource satisfy the per-node constraints?"""
        if self.isa is not None and record.isa != self.isa:
            return False
        if record.mflops < self.min_mflops:
            return False
        if record.memory_bytes < self.min_memory_bytes:
            return False
        return True


@dataclass
class VirtualGrid:
    """A bound vgrid: the chosen physical resources plus the spec."""

    spec: VgridSpec
    resources: List[ResourceRecord] = field(default_factory=list)
    bound_at: float = 0.0

    def host_names(self) -> List[str]:
        return [r.name for r in self.resources]

    def aggregate_mflops(self) -> float:
        return sum(r.mflops for r in self.resources)

    def sites(self) -> List[str]:
        return sorted({r.site for r in self.resources})

    def clusters(self) -> List[str]:
        return sorted({r.cluster for r in self.resources
                       if r.cluster is not None})

    def __len__(self) -> int:
        return len(self.resources)


def find_and_bind(spec: VgridSpec, gis: GridInformationService,
                  nws: Optional[NetworkWeatherService] = None,
                  exclude: Sequence[str] = ()) -> VirtualGrid:
    """Bind a specification against the physical grid.

    Candidates are grouped by the tightness domain (cluster, site, or
    the whole grid); within each domain the best ``n_nodes`` admitted
    resources are taken; the domain with the highest aggregate
    effective speed wins.  Raises :class:`VgridError` when no domain
    can seat the request.
    """
    banned = set(exclude)
    admitted = [r for r in gis.resources()
                if r.name not in banned and spec.admits(r)]
    if spec.tightness is Tightness.TIGHT:
        domains = _group_by(admitted, lambda r: r.cluster)
    elif spec.tightness is Tightness.SITE:
        domains = _group_by(admitted, lambda r: r.site)
    else:
        domains = {"*": admitted}

    def speed(record: ResourceRecord) -> float:
        availability = (nws.cpu_forecast(record.name)
                        if nws is not None else 1.0)
        return record.mflops * availability

    best: Optional[List[ResourceRecord]] = None
    best_score = float("-inf")
    for key in sorted(domains, key=str):
        members = domains[key]
        if key is None or len(members) < spec.n_nodes:
            continue
        if spec.prefer_fast:
            members = sorted(members, key=lambda r: (-speed(r), r.name))
        chosen = members[:spec.n_nodes]
        score = sum(speed(r) for r in chosen)
        if score > best_score:
            best_score = score
            best = chosen
    if best is None:
        raise VgridError(
            f"no {spec.tightness.value} aggregate of {spec.n_nodes} nodes "
            f"satisfies the specification")
    bound_at = nws.sim.now if nws is not None else 0.0
    return VirtualGrid(spec=spec, resources=best, bound_at=bound_at)


def _group_by(records: Sequence[ResourceRecord],
              key: Callable[[ResourceRecord], Optional[str]]
              ) -> Dict[Optional[str], List[ResourceRecord]]:
    out: Dict[Optional[str], List[ResourceRecord]] = {}
    for record in records:
        out.setdefault(key(record), []).append(record)
    return out
