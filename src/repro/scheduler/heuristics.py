"""Scheduling heuristics over the performance matrix (§3.1).

"This matrix is used by the scheduling heuristics to obtain a mapping
of components onto resources.  Such a heuristic approach is necessary
since the mapping problem is NP-complete.  We apply three heuristics to
obtain three mappings and then select the schedule with the minimum
makespan.  The heuristics that we apply are the min-min, the max-min,
and the sufferage heuristics."

All heuristics share one machinery: maintain per-resource availability
and per-task data-readiness, evaluate estimated completion times, and
differ only in which ready task they commit next.  Baselines (random,
FIFO round-robin a la DAGMan without performance models, and HEFT as a
modern reference point) ride on the same machinery so comparisons are
apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nws.service import NetworkWeatherService
from .ranking import RankMatrix
from .workflow import Task, Workflow

__all__ = [
    "Placement",
    "Schedule",
    "ScheduleError",
    "min_min",
    "max_min",
    "sufferage",
    "random_schedule",
    "fifo_schedule",
    "heft_schedule",
    "HEURISTICS",
]


class ScheduleError(RuntimeError):
    """Raised when no feasible schedule exists."""


@dataclass(frozen=True)
class Placement:
    """One task's assignment with its estimated timeline."""

    task: Task
    resource: str
    est_start: float
    est_finish: float


@dataclass
class Schedule:
    """A complete mapping of workflow tasks onto resources."""

    heuristic: str
    placements: Dict[str, Placement] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Estimated overall job completion time — the §3.1 objective."""
        if not self.placements:
            return 0.0
        return max(p.est_finish for p in self.placements.values())

    def resource_of(self, task_name: str) -> str:
        return self.placements[task_name].resource

    def tasks_on(self, resource: str) -> List[Placement]:
        return sorted((p for p in self.placements.values()
                       if p.resource == resource),
                      key=lambda p: p.est_start)

    def component_resources(self, component_name: str) -> List[str]:
        return [p.resource for name, p in sorted(self.placements.items())
                if p.task.component.name == component_name]


class _Builder:
    """Shared state for list-scheduling heuristics."""

    def __init__(self, workflow: Workflow, matrix: RankMatrix,
                 nws: NetworkWeatherService) -> None:
        self.workflow = workflow
        self.matrix = matrix
        self.nws = nws
        # The tracer rides on the simulator every heuristic already
        # reaches through the NWS; keep it only when the scheduler
        # category is enabled so commit() stays a plain None test.
        trace = getattr(getattr(nws, "sim", None), "trace", None)
        self.trace = (trace if trace is not None
                      and "scheduler" in trace.active else None)
        self.task_index = {t.name: i for i, t in enumerate(matrix.tasks)}
        self.resource_free = {r.name: 0.0 for r in matrix.resources}
        self.finish: Dict[str, float] = {}
        self.location: Dict[str, str] = {}
        self.schedule = Schedule(heuristic="")
        self._component_done: Dict[str, int] = {
            c.name: 0 for c in workflow.components()}

    # -- readiness ----------------------------------------------------------
    def ready_tasks(self) -> List[Task]:
        """Tasks whose predecessor components are fully scheduled."""
        out = []
        for task in self.matrix.tasks:
            if task.name in self.schedule.placements:
                continue
            preds = self.workflow.predecessors(task.component.name)
            if all(self._component_done[p.name] == p.n_tasks for p in preds):
                out.append(task)
        return out

    def data_ready_time(self, task: Task, resource: str) -> float:
        """When the task's inputs can be present on ``resource``."""
        preds = self.workflow.predecessors(task.component.name)
        if not preds:
            return 0.0
        ready = 0.0
        volume = task.component.input_bytes_per_task
        for pred in preds:
            share = volume / pred.n_tasks if volume > 0 else 0.0
            for i in range(pred.n_tasks):
                pname = Task(pred, i).name
                arrive = self.finish[pname]
                src = self.location[pname]
                if share > 0 and src != resource:
                    arrive += self.nws.transfer_forecast(src, resource, share)
                ready = max(ready, arrive)
        return ready

    def _entry_dcost(self, task: Task, resource_index: int) -> float:
        """Static input-staging cost for components with no predecessors.

        Downstream components get their data-movement cost dynamically
        from predecessor placements (data_ready_time); entry components
        pull from the fixed data sources the rank matrix recorded, so
        their dcost column applies here and only here (no double count).
        """
        if self.workflow.predecessors(task.component.name):
            return 0.0
        i = self.task_index[task.name]
        return float(self.matrix.dcosts[i, resource_index])

    def completion_time(self, task: Task, resource_index: int
                        ) -> float:
        """Estimated finish if ``task`` went on that resource next."""
        i = self.task_index[task.name]
        exec_seconds = self.matrix.ecosts[i, resource_index]
        if not math.isfinite(exec_seconds):
            return math.inf
        record = self.matrix.resources[resource_index]
        start = max(self.resource_free[record.name],
                    self.data_ready_time(task, record.name))
        return start + exec_seconds + self._entry_dcost(task, resource_index)

    def best_resource(self, task: Task) -> Tuple[int, float, float]:
        """(best index, best completion, second-best completion)."""
        best_j, best_ct, second_ct = -1, math.inf, math.inf
        for j in range(len(self.matrix.resources)):
            ct = self.completion_time(task, j)
            if ct < best_ct:
                best_j, best_ct, second_ct = j, ct, best_ct
            elif ct < second_ct:
                second_ct = ct
        return best_j, best_ct, second_ct

    def commit(self, task: Task, resource_index: int) -> None:
        record = self.matrix.resources[resource_index]
        i = self.task_index[task.name]
        exec_seconds = self.matrix.ecosts[i, resource_index]
        start = max(self.resource_free[record.name],
                    self.data_ready_time(task, record.name))
        finish = start + exec_seconds + self._entry_dcost(task,
                                                          resource_index)
        self.schedule.placements[task.name] = Placement(
            task=task, resource=record.name,
            est_start=start, est_finish=finish)
        self.resource_free[record.name] = finish
        self.finish[task.name] = finish
        self.location[task.name] = record.name
        self._component_done[task.component.name] += 1
        if self.trace is not None:
            self.trace.complete(
                "scheduler", f"task:{task.name}", ts=start,
                dur=finish - start, host=record.name,
                heuristic=self.schedule.heuristic,
                rank=self.matrix.rank(i, resource_index))

    def run(self, select: Callable[[List[Tuple[Task, int, float, float]]],
                                   Tuple[Task, int]],
            name: str) -> Schedule:
        """Drive list scheduling with a selection rule.

        ``select`` receives ``[(task, best_j, best_ct, second_ct), ...]``
        for the current ready set and returns the chosen (task, j).
        """
        self.schedule.heuristic = name
        total = len(self.matrix.tasks)
        while len(self.schedule.placements) < total:
            ready = self.ready_tasks()
            if not ready:
                raise ScheduleError("no ready tasks but schedule incomplete "
                                    "(cycle or ineligible task)")
            candidates = []
            for task in ready:
                j, ct, second = self.best_resource(task)
                if j < 0 or math.isinf(ct):
                    raise ScheduleError(
                        f"task {task.name} has no eligible resource")
                candidates.append((task, j, ct, second))
            task, j = select(candidates)
            self.commit(task, j)
        if self.trace is not None:
            self.trace.instant("scheduler", f"heuristic:{name}",
                               makespan=self.schedule.makespan,
                               tasks=total)
        return self.schedule


def min_min(workflow: Workflow, matrix: RankMatrix,
            nws: NetworkWeatherService) -> Schedule:
    """Commit the ready task with the *smallest* best completion time."""
    def select(candidates):
        task, j, _ct, _s = min(candidates, key=lambda c: (c[2], c[0].name))
        return task, j
    return _Builder(workflow, matrix, nws).run(select, "min-min")


def max_min(workflow: Workflow, matrix: RankMatrix,
            nws: NetworkWeatherService) -> Schedule:
    """Commit the ready task with the *largest* best completion time —
    big tasks first, so they don't straggle at the end.

    Ties break toward the lexicographically smallest task name, the
    same direction as min-min, so schedules are stable under renaming.
    """
    def select(candidates):
        task, j, _ct, _s = min(candidates, key=lambda c: (-c[2], c[0].name))
        return task, j
    return _Builder(workflow, matrix, nws).run(select, "max-min")


def sufferage(workflow: Workflow, matrix: RankMatrix,
              nws: NetworkWeatherService) -> Schedule:
    """Commit the task that would suffer most if denied its best
    resource: largest (second-best - best) completion gap.

    Ties break toward the lexicographically smallest task name (see
    max_min).
    """
    def select(candidates):
        def key(c):
            _task, _j, ct, second = c
            gap = (second - ct) if math.isfinite(second) else math.inf
            return (-gap, c[0].name)
        task, j, _ct, _s = min(candidates, key=key)
        return task, j
    return _Builder(workflow, matrix, nws).run(select, "sufferage")


def random_schedule(workflow: Workflow, matrix: RankMatrix,
                    nws: NetworkWeatherService,
                    rng: Optional[np.random.Generator] = None) -> Schedule:
    """Baseline: each ready task goes to a uniformly random eligible
    resource (what scheduling without models degenerates to).

    ``rng`` defaults to a fixed seed so the registry entry (called with
    the common 3-argument signature) stays deterministic across runs.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    builder = _Builder(workflow, matrix, nws)
    builder.schedule.heuristic = "random"
    total = len(matrix.tasks)
    while len(builder.schedule.placements) < total:
        ready = builder.ready_tasks()
        if not ready:
            raise ScheduleError("no ready tasks but schedule incomplete")
        task = ready[int(rng.integers(len(ready)))]
        i = builder.task_index[task.name]
        eligible = matrix.eligible_resources(i)
        if not eligible:
            raise ScheduleError(f"task {task.name} has no eligible resource")
        builder.commit(task, int(rng.choice(eligible)))
    return builder.schedule


def fifo_schedule(workflow: Workflow, matrix: RankMatrix,
                  nws: NetworkWeatherService) -> Schedule:
    """Baseline: DAGMan-style matchmaking without performance models —
    ready tasks in declaration order onto the earliest-free eligible
    resource (resource speed is invisible to the policy)."""
    builder = _Builder(workflow, matrix, nws)
    builder.schedule.heuristic = "fifo"
    total = len(matrix.tasks)
    while len(builder.schedule.placements) < total:
        ready = builder.ready_tasks()
        if not ready:
            raise ScheduleError("no ready tasks but schedule incomplete")
        task = ready[0]
        i = builder.task_index[task.name]
        eligible = matrix.eligible_resources(i)
        if not eligible:
            raise ScheduleError(f"task {task.name} has no eligible resource")
        j = min(eligible,
                key=lambda jj: (builder.resource_free[
                    matrix.resources[jj].name], jj))
        builder.commit(task, j)
    return builder.schedule


def heft_schedule(workflow: Workflow, matrix: RankMatrix,
                  nws: NetworkWeatherService) -> Schedule:
    """HEFT (extension): order tasks by upward rank computed with mean
    execution costs, then assign each to its earliest-finish resource."""
    mean_cost = {}
    for i, task in enumerate(matrix.tasks):
        finite = matrix.ecosts[i][np.isfinite(matrix.ecosts[i])]
        if len(finite) == 0:
            raise ScheduleError(f"task {task.name} has no eligible resource")
        mean_cost[task.name] = float(np.mean(finite))
    upward: Dict[str, float] = {}
    for component in reversed(workflow.components()):
        succ = workflow.successors(component.name)
        succ_rank = max((upward[s.name] for s in succ), default=0.0)
        upward[component.name] = mean_cost[Task(component, 0).name] + succ_rank
    builder = _Builder(workflow, matrix, nws)
    builder.schedule.heuristic = "heft"

    def select(candidates):
        task, j, _ct, _s = max(
            candidates,
            key=lambda c: (upward[c[0].component.name], c[0].name))
        return task, j

    return builder.run(select, "heft")


#: name -> heuristic callable, for sweeps and benchmarks.  Every entry
#: (baselines included) accepts the (workflow, matrix, nws) signature.
HEURISTICS = {
    "min-min": min_min,
    "max-min": max_min,
    "sufferage": sufferage,
    "random": random_schedule,
    "fifo": fifo_schedule,
    "heft": heft_schedule,
}
