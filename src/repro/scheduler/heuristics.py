"""Scheduling heuristics over the performance matrix (§3.1).

"This matrix is used by the scheduling heuristics to obtain a mapping
of components onto resources.  Such a heuristic approach is necessary
since the mapping problem is NP-complete.  We apply three heuristics to
obtain three mappings and then select the schedule with the minimum
makespan.  The heuristics that we apply are the min-min, the max-min,
and the sufferage heuristics."

All heuristics share one machinery: maintain per-resource availability
and per-task data-readiness, evaluate estimated completion times, and
differ only in which ready task they commit next.  Baselines (random,
FIFO round-robin a la DAGMan without performance models, and HEFT as a
modern reference point) ride on the same machinery so comparisons are
apples-to-apples.

Two engines implement that machinery (mirroring the substrate's
incremental/reference allocator split, DESIGN §2.1):

* :class:`_FastBuilder` — the production engine behind every
  ``HEURISTICS`` entry.  Array-backed and incremental: each task's
  data-ready vector is computed once when the task becomes ready
  (readiness guarantees predecessor placements are final), NWS transfer
  forecasts are memoised per (src, dst) pair (forecasts are frozen
  while a schedule is being built), completion times are evaluated as
  vectorized rows, and after each commit only the single changed
  resource column is rescored.  Readiness itself is event-driven via
  per-component completion counts instead of a full rescan.
* :class:`_ReferenceBuilder` — the pure-Python oracle behind
  ``REFERENCE_HEURISTICS``.  Deliberately naive (full ready-set rescan,
  per-cell completion times, no memo); property tests assert both
  engines produce placement-for-placement identical schedules and
  byte-identical ``scheduler`` trace spans.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nws.service import NetworkWeatherService
from ..sim.stats import KernelStats
from .ranking import RankMatrix
from .workflow import Task, Workflow

__all__ = [
    "Placement",
    "Schedule",
    "ScheduleError",
    "min_min",
    "max_min",
    "sufferage",
    "random_schedule",
    "fifo_schedule",
    "heft_schedule",
    "HEURISTICS",
    "reference_min_min",
    "reference_max_min",
    "reference_sufferage",
    "reference_random_schedule",
    "reference_fifo_schedule",
    "reference_heft_schedule",
    "REFERENCE_HEURISTICS",
]


class ScheduleError(RuntimeError):
    """Raised when no feasible schedule exists."""


@dataclass(frozen=True)
class Placement:
    """One task's assignment with its estimated timeline."""

    task: Task
    resource: str
    est_start: float
    est_finish: float


@dataclass
class Schedule:
    """A complete mapping of workflow tasks onto resources."""

    heuristic: str
    placements: Dict[str, Placement] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Estimated overall job completion time — the §3.1 objective."""
        if not self.placements:
            return 0.0
        return max(p.est_finish for p in self.placements.values())

    def resource_of(self, task_name: str) -> str:
        return self.placements[task_name].resource

    def tasks_on(self, resource: str) -> List[Placement]:
        return sorted((p for p in self.placements.values()
                       if p.resource == resource),
                      key=lambda p: p.est_start)

    def component_resources(self, component_name: str) -> List[str]:
        """Resources of one component's tasks, ordered by task index.

        Ordering must be numeric, not lexicographic: sorting the
        placement *names* puts ``c[10]`` before ``c[2]``, which silently
        misassigns per-task resources for any component with ten or
        more tasks.
        """
        placed = [p for p in self.placements.values()
                  if p.task.component.name == component_name]
        placed.sort(key=lambda p: p.task.index)
        return [p.resource for p in placed]


def _scheduler_env(nws: NetworkWeatherService
                   ) -> Tuple[KernelStats, Optional[object]]:
    """(stats, trace) a builder bills its work to.

    Counters ride on the simulator every heuristic already reaches
    through the NWS; the tracer is kept only when the scheduler category
    is enabled so the commit hot path stays a plain None test.
    """
    sim = getattr(nws, "sim", None)
    stats = getattr(sim, "stats", None)
    if stats is None:
        stats = KernelStats()
    trace = getattr(sim, "trace", None)
    if trace is not None and "scheduler" not in trace.active:
        trace = None
    return stats, trace


def _heft_upward_ranks(workflow: Workflow,
                       matrix: RankMatrix) -> Dict[str, float]:
    """Upward rank per component from mean finite execution costs.

    Shared by both engines so HEFT's task ordering is identical.
    """
    mean_cost = {}
    for i, task in enumerate(matrix.tasks):
        finite = matrix.ecosts[i][np.isfinite(matrix.ecosts[i])]
        if len(finite) == 0:
            raise ScheduleError(f"task {task.name} has no eligible resource")
        mean_cost[task.name] = float(np.mean(finite))
    upward: Dict[str, float] = {}
    for component in reversed(workflow.components()):
        succ = workflow.successors(component.name)
        succ_rank = max((upward[s.name] for s in succ), default=0.0)
        upward[component.name] = (
            mean_cost[workflow.task_names(component.name)[0]] + succ_rank)
    return upward


_SCORED = ("min-min", "max-min", "sufferage", "heft")


class _FastBuilder:
    """Incremental array-backed engine behind every ``HEURISTICS`` entry.

    Three invariants carry the speedup (DESIGN §3.1):

    * A task's data-ready vector is fixed the moment the task becomes
      ready: readiness requires every predecessor component to be fully
      committed, so predecessor finish times and locations are final.
      The vector is computed once, as a numpy row over all resources.
    * NWS forecasts are frozen while a schedule is being built (no
      simulated time passes), so per-(src, dst) latency/bandwidth pairs
      are memoised and any transfer volume prices as ``lat + n/bw``.
    * A commit changes exactly one resource's availability, so only
      completion times in that column move — and only rows whose best
      or second-best completion lived in that column need re-ranking.
    """

    def __init__(self, workflow: Workflow, matrix: RankMatrix,
                 nws: NetworkWeatherService) -> None:
        self.workflow = workflow
        self.matrix = matrix
        self.nws = nws
        self.stats, self.trace = _scheduler_env(nws)
        self.schedule = Schedule(heuristic="")

        tasks = matrix.tasks
        self.tasks = tasks
        self.n_tasks = len(tasks)
        self.n_resources = len(matrix.resources)
        self.resource_names = [r.name for r in matrix.resources]
        self.names = [workflow.task_names(t.component.name)[t.index]
                      for t in tasks]

        comps = workflow.components()
        self._comps = comps
        comp_index = {c.name: k for k, c in enumerate(comps)}
        self.comp_of = np.empty(self.n_tasks, dtype=np.intp)
        self.comp_tasks: List[List[int]] = [[] for _ in comps]
        for i, task in enumerate(tasks):
            k = comp_index[task.component.name]
            self.comp_of[i] = k
            self.comp_tasks[k].append(i)
        self._pred_comps = [
            [comp_index[p.name] for p in workflow.predecessors(c.name)]
            for c in comps]
        self._succ_comps = [
            [comp_index[s.name] for s in workflow.successors(c.name)]
            for c in comps]
        self._pending = [len(preds) for preds in self._pred_comps]
        self._done = [0] * len(comps)

        self.ecosts = matrix.ecosts
        # Entry components pay their static dcost column (fixed data
        # sources recorded by the rank matrix); downstream components
        # get data movement dynamically through the data-ready vector,
        # so their column must not double count.
        self.extra = np.zeros_like(matrix.dcosts)
        for k in range(len(comps)):
            if not self._pred_comps[k]:
                for i in self.comp_tasks[k]:
                    self.extra[i] = matrix.dcosts[i]

        self.free = np.zeros(self.n_resources)
        self.finish = np.zeros(self.n_tasks)
        self.loc = np.full(self.n_tasks, -1, dtype=np.intp)
        self.dr = np.zeros((self.n_tasks, self.n_resources))
        self.ct = np.full((self.n_tasks, self.n_resources), np.inf)
        self.best_j = np.full(self.n_tasks, -1, dtype=np.intp)
        self.best_ct = np.full(self.n_tasks, np.inf)
        self.second_j = np.full(self.n_tasks, -1, dtype=np.intp)
        self.second_ct = np.full(self.n_tasks, np.inf)
        self.ready: List[int] = []
        self._committed = 0
        self._needs_ct = False
        self._transfer_memo: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # -- frozen-forecast memo ------------------------------------------------
    def _transfer_rows(self, src: int) -> Tuple[np.ndarray, np.ndarray]:
        """(latency, bandwidth) vectors from resource ``src`` to all."""
        rows = self._transfer_memo.get(src)
        if rows is None:
            src_name = self.resource_names[src]
            lat = np.empty(self.n_resources)
            bw = np.empty(self.n_resources)
            for j, dst_name in enumerate(self.resource_names):
                if j == src:
                    lat[j], bw[j] = 0.0, math.inf
                else:
                    lat[j], bw[j] = self.nws.transfer_params(src_name,
                                                             dst_name)
            rows = (lat, bw)
            self._transfer_memo[src] = rows
        else:
            self.stats.sched_memo_hits += 1
        return rows

    # -- readiness -----------------------------------------------------------
    def _data_ready_row(self, k: int) -> np.ndarray:
        """When component ``k``'s inputs can be present, per resource.

        All tasks of a component share one data-ready vector: the
        formula only involves the component's predecessors and volume.
        """
        preds = self._pred_comps[k]
        ready = np.zeros(self.n_resources)
        if not preds:
            return ready
        volume = self._comps[k].input_bytes_per_task
        for p in preds:
            pred = self._comps[p]
            share = volume / pred.n_tasks if volume > 0 else 0.0
            idxs = self.comp_tasks[p]
            if share <= 0:
                latest = max(self.finish[i] for i in idxs)
                np.maximum(ready, latest, out=ready)
                continue
            # Group predecessor tasks by location: tasks sharing a
            # source see one transfer-cost row, and max(finish) + cost
            # equals the per-task maximum exactly (addition is
            # monotone, so max commutes with it).
            latest_from: Dict[int, float] = {}
            for i in idxs:
                src = int(self.loc[i])
                done = self.finish[i]
                prev = latest_from.get(src)
                if prev is None or done > prev:
                    latest_from[src] = done
            for src, latest in latest_from.items():
                lat, bw = self._transfer_rows(src)
                cost = lat + share / bw
                cost[src] = 0.0  # no transfer when data is already local
                np.maximum(ready, latest + cost, out=ready)
        return ready

    def _activate(self, k: int) -> None:
        """Component ``k`` became ready: admit its tasks to the queue."""
        row = self._data_ready_row(k)
        idxs = self.comp_tasks[k]
        for i in idxs:
            self.dr[i] = row
            insort(self.ready, i)
        if self._needs_ct:
            for i in idxs:
                self.ct[i] = (np.maximum(self.free, row)
                              + self.ecosts[i] + self.extra[i])
                self._rescore(i)
            self.stats.sched_evaluations += len(idxs) * self.n_resources

    # -- scoring -------------------------------------------------------------
    def _rescore(self, i: int) -> None:
        """Recompute best/second-best completion for task ``i``'s row."""
        row = self.ct[i]
        j = int(np.argmin(row))
        best = row[j]
        if not np.isfinite(best):
            raise ScheduleError(
                f"task {self.names[i]} has no eligible resource")
        self.best_j[i] = j
        self.best_ct[i] = best
        if self.n_resources == 1:
            self.second_j[i] = -1
            self.second_ct[i] = np.inf
            return
        saved = row[j]
        row[j] = np.inf
        j2 = int(np.argmin(row))
        self.second_j[i] = j2
        self.second_ct[i] = row[j2]
        row[j] = saved

    def _select_scored(self, name: str,
                       upward: Optional[np.ndarray]) -> int:
        """Pick the next task for the completion-time-driven rules."""
        ridx = np.fromiter(self.ready, dtype=np.intp, count=len(self.ready))
        if name == "min-min":
            vals = self.best_ct[ridx]
            tied = ridx[vals == vals.min()]
        elif name == "max-min":
            vals = self.best_ct[ridx]
            tied = ridx[vals == vals.max()]
        elif name == "sufferage":
            vals = self.second_ct[ridx] - self.best_ct[ridx]
            tied = ridx[vals == vals.max()]
        else:  # heft: upward rank, ties toward the largest task name
            vals = upward[self.comp_of[ridx]]
            tied = ridx[vals == vals.max()]
            if len(tied) > 1:
                return max((self.names[i], int(i)) for i in tied)[1]
            return int(tied[0])
        if len(tied) > 1:  # ties break toward the smallest task name
            return min((self.names[i], int(i)) for i in tied)[1]
        return int(tied[0])

    def _eligible(self, i: int) -> List[int]:
        eligible = self.matrix.eligible_resources(i)
        if not eligible:
            raise ScheduleError(
                f"task {self.names[i]} has no eligible resource")
        return eligible

    # -- committing ----------------------------------------------------------
    def _commit(self, i: int, j: int) -> None:
        record = self.matrix.resources[j]
        start = float(max(self.free[j], self.dr[i, j]))
        finish = float(start + self.ecosts[i, j] + self.extra[i, j])
        name = self.names[i]
        self.schedule.placements[name] = Placement(
            task=self.tasks[i], resource=record.name,
            est_start=start, est_finish=finish)
        if self.trace is not None:
            self.trace.complete(
                "scheduler", f"task:{name}", ts=start,
                dur=finish - start, host=record.name,
                heuristic=self.schedule.heuristic,
                rank=self.matrix.rank(i, j))
        self.free[j] = finish
        self.finish[i] = finish
        self.loc[i] = j
        self.ready.remove(i)
        self._committed += 1
        # Only column j moved, and availability only grows: rows whose
        # best/second lived elsewhere keep their ranking (their other
        # columns are untouched and j can only have become worse).
        if self._needs_ct and self.ready:
            ridx = np.fromiter(self.ready, dtype=np.intp,
                               count=len(self.ready))
            self.ct[ridx, j] = (np.maximum(self.free[j], self.dr[ridx, j])
                                + self.ecosts[ridx, j] + self.extra[ridx, j])
            self.stats.sched_evaluations += len(ridx)
            stale = ridx[(self.best_j[ridx] == j)
                         | (self.second_j[ridx] == j)]
            for r in stale:
                self._rescore(int(r))
        # Event-driven readiness: a fully committed component unlocks
        # its successors, whose data-ready vectors are now final.
        k = int(self.comp_of[i])
        self._done[k] += 1
        if self._done[k] == self._comps[k].n_tasks:
            for s in self._succ_comps[k]:
                self._pending[s] -= 1
                if self._pending[s] == 0:
                    self._activate(s)

    # -- driver --------------------------------------------------------------
    def run(self, name: str,
            rng: Optional[np.random.Generator] = None) -> Schedule:
        self.schedule.heuristic = name
        self._needs_ct = name in _SCORED
        upward = None
        if name == "heft":
            by_comp = _heft_upward_ranks(self.workflow, self.matrix)
            upward = np.array([by_comp[c.name] for c in self._comps])
        for k in range(len(self._comps)):
            if self._pending[k] == 0:
                self._activate(k)
        total = self.n_tasks
        while self._committed < total:
            self.stats.sched_rounds += 1
            if not self.ready:
                raise ScheduleError("no ready tasks but schedule incomplete "
                                    "(cycle or ineligible task)")
            if name == "random":
                i = self.ready[int(rng.integers(len(self.ready)))]
                j = int(rng.choice(self._eligible(i)))
            elif name == "fifo":
                i = self.ready[0]
                free = self.free
                j = min(self._eligible(i), key=lambda jj: (free[jj], jj))
            else:
                i = self._select_scored(name, upward)
                j = int(self.best_j[i])
            self._commit(i, j)
        if self.trace is not None:
            self.trace.instant("scheduler", f"heuristic:{name}",
                               makespan=self.schedule.makespan,
                               tasks=total)
        return self.schedule


class _ReferenceBuilder:
    """Pure-Python oracle: from-scratch ready sets and per-cell costs.

    This is the pre-overhaul implementation, kept verbatim in spirit as
    the semantic baseline the fast engine is property-tested against
    (the same role ``reference_max_min`` plays for the substrate
    allocator).  O(T²·R) completion-time evaluations with per-call NWS
    forecasts — run it on small inputs only.
    """

    def __init__(self, workflow: Workflow, matrix: RankMatrix,
                 nws: NetworkWeatherService) -> None:
        self.workflow = workflow
        self.matrix = matrix
        self.nws = nws
        self.stats, self.trace = _scheduler_env(nws)
        self.task_index = {t.name: i for i, t in enumerate(matrix.tasks)}
        self.resource_free = {r.name: 0.0 for r in matrix.resources}
        self.finish: Dict[str, float] = {}
        self.location: Dict[str, str] = {}
        self.schedule = Schedule(heuristic="")
        self._component_done: Dict[str, int] = {
            c.name: 0 for c in workflow.components()}

    # -- readiness ----------------------------------------------------------
    def ready_tasks(self) -> List[Task]:
        """Tasks whose predecessor components are fully scheduled."""
        out = []
        for task in self.matrix.tasks:
            if task.name in self.schedule.placements:
                continue
            preds = self.workflow.predecessors(task.component.name)
            if all(self._component_done[p.name] == p.n_tasks for p in preds):
                out.append(task)
        return out

    def data_ready_time(self, task: Task, resource: str) -> float:
        """When the task's inputs can be present on ``resource``."""
        preds = self.workflow.predecessors(task.component.name)
        if not preds:
            return 0.0
        ready = 0.0
        volume = task.component.input_bytes_per_task
        for pred in preds:
            share = volume / pred.n_tasks if volume > 0 else 0.0
            for pname in self.workflow.task_names(pred.name):
                arrive = self.finish[pname]
                src = self.location[pname]
                if share > 0 and src != resource:
                    arrive += self.nws.transfer_forecast(src, resource, share)
                ready = max(ready, arrive)
        return ready

    def _entry_dcost(self, task: Task, resource_index: int) -> float:
        """Static input-staging cost for components with no predecessors.

        Downstream components get their data-movement cost dynamically
        from predecessor placements (data_ready_time); entry components
        pull from the fixed data sources the rank matrix recorded, so
        their dcost column applies here and only here (no double count).
        """
        if self.workflow.predecessors(task.component.name):
            return 0.0
        i = self.task_index[task.name]
        return float(self.matrix.dcosts[i, resource_index])

    def completion_time(self, task: Task, resource_index: int
                        ) -> float:
        """Estimated finish if ``task`` went on that resource next."""
        self.stats.sched_evaluations += 1
        i = self.task_index[task.name]
        exec_seconds = self.matrix.ecosts[i, resource_index]
        if not math.isfinite(exec_seconds):
            return math.inf
        record = self.matrix.resources[resource_index]
        start = max(self.resource_free[record.name],
                    self.data_ready_time(task, record.name))
        return start + exec_seconds + self._entry_dcost(task, resource_index)

    def best_resource(self, task: Task) -> Tuple[int, float, float]:
        """(best index, best completion, second-best completion)."""
        best_j, best_ct, second_ct = -1, math.inf, math.inf
        for j in range(len(self.matrix.resources)):
            ct = self.completion_time(task, j)
            if ct < best_ct:
                best_j, best_ct, second_ct = j, ct, best_ct
            elif ct < second_ct:
                second_ct = ct
        return best_j, best_ct, second_ct

    def commit(self, task: Task, resource_index: int) -> None:
        record = self.matrix.resources[resource_index]
        i = self.task_index[task.name]
        exec_seconds = self.matrix.ecosts[i, resource_index]
        start = float(max(self.resource_free[record.name],
                          self.data_ready_time(task, record.name)))
        finish = float(start + exec_seconds
                       + self._entry_dcost(task, resource_index))
        self.schedule.placements[task.name] = Placement(
            task=task, resource=record.name,
            est_start=start, est_finish=finish)
        self.resource_free[record.name] = finish
        self.finish[task.name] = finish
        self.location[task.name] = record.name
        self._component_done[task.component.name] += 1
        if self.trace is not None:
            self.trace.complete(
                "scheduler", f"task:{task.name}", ts=start,
                dur=finish - start, host=record.name,
                heuristic=self.schedule.heuristic,
                rank=self.matrix.rank(i, resource_index))

    def finish_trace(self) -> None:
        if self.trace is not None:
            self.trace.instant("scheduler",
                               f"heuristic:{self.schedule.heuristic}",
                               makespan=self.schedule.makespan,
                               tasks=len(self.matrix.tasks))

    def run(self, select: Callable[[List[Tuple[Task, int, float, float]]],
                                   Tuple[Task, int]],
            name: str) -> Schedule:
        """Drive list scheduling with a selection rule.

        ``select`` receives ``[(task, best_j, best_ct, second_ct), ...]``
        for the current ready set and returns the chosen (task, j).
        """
        self.schedule.heuristic = name
        total = len(self.matrix.tasks)
        while len(self.schedule.placements) < total:
            self.stats.sched_rounds += 1
            ready = self.ready_tasks()
            if not ready:
                raise ScheduleError("no ready tasks but schedule incomplete "
                                    "(cycle or ineligible task)")
            candidates = []
            for task in ready:
                j, ct, second = self.best_resource(task)
                if j < 0 or math.isinf(ct):
                    raise ScheduleError(
                        f"task {task.name} has no eligible resource")
                candidates.append((task, j, ct, second))
            task, j = select(candidates)
            self.commit(task, j)
        self.finish_trace()
        return self.schedule


# -- reference selection rules ----------------------------------------------
def _ref_select_min_min(candidates):
    task, j, _ct, _s = min(candidates, key=lambda c: (c[2], c[0].name))
    return task, j


def _ref_select_max_min(candidates):
    task, j, _ct, _s = min(candidates, key=lambda c: (-c[2], c[0].name))
    return task, j


def _ref_select_sufferage(candidates):
    def key(c):
        _task, _j, ct, second = c
        gap = (second - ct) if math.isfinite(second) else math.inf
        return (-gap, c[0].name)
    task, j, _ct, _s = min(candidates, key=key)
    return task, j


# -- the fast entry points (the registry) ------------------------------------
def min_min(workflow: Workflow, matrix: RankMatrix,
            nws: NetworkWeatherService) -> Schedule:
    """Commit the ready task with the *smallest* best completion time."""
    return _FastBuilder(workflow, matrix, nws).run("min-min")


def max_min(workflow: Workflow, matrix: RankMatrix,
            nws: NetworkWeatherService) -> Schedule:
    """Commit the ready task with the *largest* best completion time —
    big tasks first, so they don't straggle at the end.

    Ties break toward the lexicographically smallest task name, the
    same direction as min-min, so schedules are stable under renaming.
    """
    return _FastBuilder(workflow, matrix, nws).run("max-min")


def sufferage(workflow: Workflow, matrix: RankMatrix,
              nws: NetworkWeatherService) -> Schedule:
    """Commit the task that would suffer most if denied its best
    resource: largest (second-best - best) completion gap.

    Ties break toward the lexicographically smallest task name (see
    max_min).
    """
    return _FastBuilder(workflow, matrix, nws).run("sufferage")


def random_schedule(workflow: Workflow, matrix: RankMatrix,
                    nws: NetworkWeatherService,
                    rng: Optional[np.random.Generator] = None) -> Schedule:
    """Baseline: each ready task goes to a uniformly random eligible
    resource (what scheduling without models degenerates to).

    ``rng`` defaults to a fixed seed so the registry entry (called with
    the common 3-argument signature) stays deterministic across runs.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    return _FastBuilder(workflow, matrix, nws).run("random", rng=rng)


def fifo_schedule(workflow: Workflow, matrix: RankMatrix,
                  nws: NetworkWeatherService) -> Schedule:
    """Baseline: DAGMan-style matchmaking without performance models —
    ready tasks in declaration order onto the earliest-free eligible
    resource (resource speed is invisible to the policy)."""
    return _FastBuilder(workflow, matrix, nws).run("fifo")


def heft_schedule(workflow: Workflow, matrix: RankMatrix,
                  nws: NetworkWeatherService) -> Schedule:
    """HEFT (extension): order tasks by upward rank computed with mean
    execution costs, then assign each to its earliest-finish resource."""
    return _FastBuilder(workflow, matrix, nws).run("heft")


# -- the reference oracle entry points ---------------------------------------
def reference_min_min(workflow: Workflow, matrix: RankMatrix,
                      nws: NetworkWeatherService) -> Schedule:
    """Oracle counterpart of :func:`min_min`."""
    return _ReferenceBuilder(workflow, matrix, nws).run(
        _ref_select_min_min, "min-min")


def reference_max_min(workflow: Workflow, matrix: RankMatrix,
                      nws: NetworkWeatherService) -> Schedule:
    """Oracle counterpart of :func:`max_min`."""
    return _ReferenceBuilder(workflow, matrix, nws).run(
        _ref_select_max_min, "max-min")


def reference_sufferage(workflow: Workflow, matrix: RankMatrix,
                        nws: NetworkWeatherService) -> Schedule:
    """Oracle counterpart of :func:`sufferage`."""
    return _ReferenceBuilder(workflow, matrix, nws).run(
        _ref_select_sufferage, "sufferage")


def reference_random_schedule(workflow: Workflow, matrix: RankMatrix,
                              nws: NetworkWeatherService,
                              rng: Optional[np.random.Generator] = None
                              ) -> Schedule:
    """Oracle counterpart of :func:`random_schedule` (same rng draws)."""
    if rng is None:
        rng = np.random.default_rng(0)
    builder = _ReferenceBuilder(workflow, matrix, nws)
    builder.schedule.heuristic = "random"
    total = len(matrix.tasks)
    while len(builder.schedule.placements) < total:
        builder.stats.sched_rounds += 1
        ready = builder.ready_tasks()
        if not ready:
            raise ScheduleError("no ready tasks but schedule incomplete "
                                "(cycle or ineligible task)")
        task = ready[int(rng.integers(len(ready)))]
        i = builder.task_index[task.name]
        eligible = matrix.eligible_resources(i)
        if not eligible:
            raise ScheduleError(f"task {task.name} has no eligible resource")
        builder.commit(task, int(rng.choice(eligible)))
    builder.finish_trace()
    return builder.schedule


def reference_fifo_schedule(workflow: Workflow, matrix: RankMatrix,
                            nws: NetworkWeatherService) -> Schedule:
    """Oracle counterpart of :func:`fifo_schedule`."""
    builder = _ReferenceBuilder(workflow, matrix, nws)
    builder.schedule.heuristic = "fifo"
    total = len(matrix.tasks)
    while len(builder.schedule.placements) < total:
        builder.stats.sched_rounds += 1
        ready = builder.ready_tasks()
        if not ready:
            raise ScheduleError("no ready tasks but schedule incomplete "
                                "(cycle or ineligible task)")
        task = ready[0]
        i = builder.task_index[task.name]
        eligible = matrix.eligible_resources(i)
        if not eligible:
            raise ScheduleError(f"task {task.name} has no eligible resource")
        j = min(eligible,
                key=lambda jj: (builder.resource_free[
                    matrix.resources[jj].name], jj))
        builder.commit(task, j)
    builder.finish_trace()
    return builder.schedule


def reference_heft_schedule(workflow: Workflow, matrix: RankMatrix,
                            nws: NetworkWeatherService) -> Schedule:
    """Oracle counterpart of :func:`heft_schedule`."""
    upward = _heft_upward_ranks(workflow, matrix)

    def select(candidates):
        task, j, _ct, _s = max(
            candidates,
            key=lambda c: (upward[c[0].component.name], c[0].name))
        return task, j

    return _ReferenceBuilder(workflow, matrix, nws).run(select, "heft")


#: name -> heuristic callable, for sweeps and benchmarks.  Every entry
#: (baselines included) accepts the (workflow, matrix, nws) signature.
HEURISTICS = {
    "min-min": min_min,
    "max-min": max_min,
    "sufferage": sufferage,
    "random": random_schedule,
    "fifo": fifo_schedule,
    "heft": heft_schedule,
}

#: the pure-Python oracle under the same names — the semantic baseline
#: the fast engine is property- and benchmark-tested against.
REFERENCE_HEURISTICS = {
    "min-min": reference_min_min,
    "max-min": reference_max_min,
    "sufferage": reference_sufferage,
    "random": reference_random_schedule,
    "fifo": reference_fifo_schedule,
    "heft": reference_heft_schedule,
}
