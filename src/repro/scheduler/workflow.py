"""Workflow application model (§3).

"A workflow application consists of a collection of components that
need to be executed in a partial order determined by control and data
dependences."  Components may be *parallelizable* (the EMAN
``classesbymra`` step fans out over particle classes); the scheduler
treats a parallelizable component as a bag of independent tasks, which
is exactly the setting the min-min/max-min/sufferage heuristics come
from (Casanova et al., HCW 2000).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from ..perfmodel.model import ComponentModel

__all__ = ["WorkflowComponent", "Workflow", "Task", "WorkflowError"]


class WorkflowError(ValueError):
    """Raised for malformed workflow graphs."""


@dataclass(frozen=True)
class WorkflowComponent:
    """One node of the application DAG."""

    name: str
    model: ComponentModel
    problem_size: float
    #: number of independent tasks this component splits into (1 = serial)
    n_tasks: int = 1
    #: bytes each task must receive from each predecessor component
    input_bytes_per_task: float = 0.0
    #: bytes each task hands to each successor component
    output_bytes_per_task: float = 0.0

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise WorkflowError(f"{self.name}: n_tasks must be >= 1")
        if self.problem_size < 0:
            raise WorkflowError(f"{self.name}: negative problem size")

    def task_mflop(self) -> float:
        """Work of one task: the component's work divided over its tasks."""
        return self.model.mflop(self.problem_size) / self.n_tasks


@dataclass(frozen=True)
class Task:
    """One schedulable unit: (component, index within the component)."""

    component: WorkflowComponent
    index: int

    @property
    def name(self) -> str:
        return f"{self.component.name}[{self.index}]"

    def mflop(self) -> float:
        return self.component.task_mflop()


class Workflow:
    """A DAG of :class:`WorkflowComponent` with data-dependence edges."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self.graph = nx.DiGraph()
        self._components: Dict[str, WorkflowComponent] = {}
        self._task_names: Dict[str, Tuple[str, ...]] = {}

    def add_component(self, component: WorkflowComponent) -> WorkflowComponent:
        if component.name in self._components:
            raise WorkflowError(f"duplicate component {component.name!r}")
        self._components[component.name] = component
        self.graph.add_node(component.name)
        return component

    def add_dependence(self, producer: str, consumer: str) -> None:
        """Declare that ``consumer`` needs ``producer``'s output."""
        for name in (producer, consumer):
            if name not in self._components:
                raise WorkflowError(f"unknown component {name!r}")
        self.graph.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(producer, consumer)
            raise WorkflowError(
                f"dependence {producer!r} -> {consumer!r} creates a cycle")

    # -- queries -----------------------------------------------------------
    def component(self, name: str) -> WorkflowComponent:
        try:
            return self._components[name]
        except KeyError:
            raise WorkflowError(f"unknown component {name!r}") from None

    def components(self) -> List[WorkflowComponent]:
        """Components in a topological order (stable across runs)."""
        order = list(nx.lexicographical_topological_sort(self.graph))
        return [self._components[name] for name in order]

    def predecessors(self, name: str) -> List[WorkflowComponent]:
        return [self._components[p] for p in sorted(self.graph.predecessors(name))]

    def successors(self, name: str) -> List[WorkflowComponent]:
        return [self._components[s] for s in sorted(self.graph.successors(name))]

    def tasks(self) -> List[Task]:
        """All tasks of all components, in topological component order."""
        out: List[Task] = []
        for component in self.components():
            out.extend(Task(component, i) for i in range(component.n_tasks))
        return out

    def task_names(self, component_name: str) -> Tuple[str, ...]:
        """Task-name strings of one component, cached.

        ``Task.name`` builds an f-string on every access; the schedulers
        sit in loops over predecessor task names, so they read this
        cache instead.  Component names and ``n_tasks`` are frozen, so
        entries never go stale.
        """
        cached = self._task_names.get(component_name)
        if cached is None:
            component = self.component(component_name)
            cached = tuple(f"{component_name}[{i}]"
                           for i in range(component.n_tasks))
            self._task_names[component_name] = cached
        return cached

    def levels(self) -> List[List[WorkflowComponent]]:
        """Components grouped by topological generation."""
        return [[self._components[n] for n in sorted(generation)]
                for generation in nx.topological_generations(self.graph)]

    def total_mflop(self) -> float:
        return sum(c.model.mflop(c.problem_size)
                   for c in self._components.values())

    def critical_path_mflop(self) -> float:
        """Work along the heaviest dependence chain (a lower bound on
        any schedule's compute time for one task per step)."""
        best: Dict[str, float] = {}
        for component in self.components():
            preds = [best[p.name] for p in self.predecessors(component.name)]
            best[component.name] = (max(preds) if preds else 0.0) \
                + component.task_mflop()
        return max(best.values()) if best else 0.0

    def __len__(self) -> int:
        return len(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._components
