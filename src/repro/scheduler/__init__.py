"""The GrADS workflow scheduler (paper §3)."""

from .analysis import (
    ScheduleStats,
    analyze,
    gantt,
    load_balance,
    makespan_lower_bound,
    utilization,
)
from .executor import ExecutionTrace, TaskTrace, WorkflowExecutor
from .heuristics import (
    HEURISTICS,
    Placement,
    Schedule,
    ScheduleError,
    fifo_schedule,
    heft_schedule,
    max_min,
    min_min,
    random_schedule,
    sufferage,
)
from .ranking import RankMatrix, build_rank_matrix, dcost, ecost
from .scheduler import GradsWorkflowScheduler, SchedulingResult
from .workflow import Task, Workflow, WorkflowComponent, WorkflowError

__all__ = [
    "ExecutionTrace",
    "GradsWorkflowScheduler",
    "HEURISTICS",
    "Placement",
    "RankMatrix",
    "Schedule",
    "ScheduleStats",
    "ScheduleError",
    "SchedulingResult",
    "Task",
    "TaskTrace",
    "Workflow",
    "WorkflowComponent",
    "WorkflowError",
    "WorkflowExecutor",
    "analyze",
    "build_rank_matrix",
    "dcost",
    "ecost",
    "fifo_schedule",
    "gantt",
    "heft_schedule",
    "load_balance",
    "makespan_lower_bound",
    "max_min",
    "min_min",
    "random_schedule",
    "sufferage",
    "utilization",
]
