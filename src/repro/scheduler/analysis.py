"""Schedule analysis: bounds, utilization, and Gantt rendering.

Tools for judging how good a mapping is, independent of which policy
produced it:

* lower bounds on any schedule's makespan (critical path and aggregate
  capacity), so heuristic results can be reported as "x% above bound";
* per-resource utilization and load-balance statistics;
* an ASCII Gantt chart of a schedule's estimated timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..gis.directory import ResourceRecord
from .heuristics import Schedule
from .workflow import Workflow

__all__ = ["makespan_lower_bound", "utilization", "load_balance",
           "gantt", "ScheduleStats", "analyze"]


def makespan_lower_bound(workflow: Workflow,
                         resources: Sequence[ResourceRecord]) -> float:
    """max(critical path on the fastest node, total work / total speed).

    Both classic bounds ignore data movement, so they hold for every
    schedule under our execution model.
    """
    if not resources:
        raise ValueError("need at least one resource")
    fastest = max(r.mflops for r in resources)
    aggregate = sum(r.mflops for r in resources)
    critical = workflow.critical_path_mflop() / fastest
    volume = workflow.total_mflop() / aggregate
    return max(critical, volume)


@dataclass(frozen=True)
class ScheduleStats:
    """Summary numbers for one schedule."""

    makespan: float
    lower_bound: float
    n_resources_used: int
    mean_utilization: float
    max_utilization: float
    imbalance: float  # max resource busy time / mean busy time

    @property
    def optimality_gap(self) -> float:
        """makespan / lower bound (1.0 = provably optimal)."""
        if self.lower_bound <= 0:
            return math.inf
        return self.makespan / self.lower_bound


def utilization(schedule: Schedule) -> Dict[str, float]:
    """Busy fraction of the makespan per resource that got work."""
    span = schedule.makespan
    out: Dict[str, float] = {}
    if span <= 0:
        return out
    for placement in schedule.placements.values():
        busy = placement.est_finish - placement.est_start
        out[placement.resource] = out.get(placement.resource, 0.0) + busy
    return {name: busy / span for name, busy in out.items()}


def load_balance(schedule: Schedule) -> float:
    """max busy time over mean busy time across used resources.

    1.0 is perfect balance; large values flag a straggler resource.
    """
    busy: Dict[str, float] = {}
    for placement in schedule.placements.values():
        duration = placement.est_finish - placement.est_start
        busy[placement.resource] = busy.get(placement.resource, 0.0) \
            + duration
    if not busy:
        return 1.0
    values = list(busy.values())
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    return max(values) / mean


def analyze(workflow: Workflow, schedule: Schedule,
            resources: Sequence[ResourceRecord]) -> ScheduleStats:
    """All the summary statistics in one call."""
    util = utilization(schedule)
    return ScheduleStats(
        makespan=schedule.makespan,
        lower_bound=makespan_lower_bound(workflow, resources),
        n_resources_used=len(util),
        mean_utilization=(sum(util.values()) / len(util)) if util else 0.0,
        max_utilization=max(util.values()) if util else 0.0,
        imbalance=load_balance(schedule),
    )


def gantt(schedule: Schedule, width: int = 64) -> str:
    """ASCII Gantt chart: one row per resource, time left to right."""
    if not schedule.placements:
        return "(empty schedule)"
    span = schedule.makespan
    if span <= 0:
        return "(zero-length schedule)"
    by_resource: Dict[str, List] = {}
    for placement in schedule.placements.values():
        by_resource.setdefault(placement.resource, []).append(placement)
    label_w = max(len(name) for name in by_resource)
    lines = [f"Gantt ({schedule.heuristic}, makespan {span:.1f} s, "
             f"1 column = {span / width:.2f} s)"]
    for name in sorted(by_resource):
        row = ["."] * width
        for placement in by_resource[name]:
            start = int(placement.est_start / span * (width - 1))
            finish = int(placement.est_finish / span * (width - 1))
            glyph = placement.task.component.name[0]
            for col in range(start, max(finish, start) + 1):
                row[col] = glyph
        lines.append(f"{name.ljust(label_w)} |{''.join(row)}|")
    return "\n".join(lines)
