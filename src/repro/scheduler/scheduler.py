"""The GrADS workflow scheduler facade (§3.1).

Builds the model of grid resources (GIS + NWS), obtains the application
performance models, computes the rank matrix, runs the three heuristics,
and "select[s] the schedule with the minimum makespan".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..gis.directory import GridInformationService, ResourceRecord
from ..nws.service import NetworkWeatherService
from .heuristics import Schedule, max_min, min_min, sufferage
from .ranking import RankMatrix, build_rank_matrix
from .workflow import Workflow

__all__ = ["GradsWorkflowScheduler", "SchedulingResult"]


@dataclass
class SchedulingResult:
    """The chosen schedule plus every candidate, for inspection."""

    best: Schedule
    candidates: Dict[str, Schedule] = field(default_factory=dict)
    matrix: Optional[RankMatrix] = None

    def makespans(self) -> Dict[str, float]:
        return {name: s.makespan for name, s in self.candidates.items()}


class GradsWorkflowScheduler:
    """min(makespan) over {min-min, max-min, sufferage} mappings."""

    def __init__(self, gis: GridInformationService,
                 nws: NetworkWeatherService,
                 w1: float = 1.0, w2: float = 1.0) -> None:
        self.gis = gis
        self.nws = nws
        self.w1 = w1
        self.w2 = w2

    def schedule(self, workflow: Workflow,
                 data_sources: Optional[Dict[str, List[str]]] = None,
                 resources: Optional[Sequence[ResourceRecord]] = None,
                 ) -> SchedulingResult:
        """Map ``workflow`` onto the grid; returns the best schedule.

        ``data_sources`` tells the ranking where each component's input
        data currently lives (submission host for entry components).
        """
        matrix = build_rank_matrix(
            workflow, self.gis, self.nws, data_sources=data_sources,
            w1=self.w1, w2=self.w2, resources=resources)
        candidates: Dict[str, Schedule] = {}
        for heuristic in (min_min, max_min, sufferage):
            schedule = heuristic(workflow, matrix, self.nws)
            candidates[schedule.heuristic] = schedule
        best = min(candidates.values(), key=lambda s: (s.makespan, s.heuristic))
        trace = getattr(getattr(self.nws, "sim", None), "trace", None)
        if trace is not None:
            trace.instant("scheduler", "chosen", heuristic=best.heuristic,
                          makespan=best.makespan)
        return SchedulingResult(best=best, candidates=candidates,
                                matrix=matrix)
