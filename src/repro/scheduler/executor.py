"""Workflow schedule execution on the live grid.

The scheduler's makespans are *estimates*; this executor actually runs
a schedule through the simulator — real compute tasks on real hosts,
real transfers over the network — so experiments can compare estimated
against achieved makespans (and so the EMAN demonstration of §3.3 runs
end to end: schedule, bind, execute).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..gis.directory import GridInformationService
from ..microgrid.network import Topology
from ..sim.events import AllOf, Event
from ..sim.kernel import Simulator
from .heuristics import Schedule
from .workflow import Task, Workflow

__all__ = ["WorkflowExecutor", "ExecutionTrace", "TaskTrace"]


@dataclass(frozen=True)
class TaskTrace:
    """Measured timeline of one executed task."""

    name: str
    resource: str
    data_wait_seconds: float
    started_at: float
    finished_at: float


@dataclass
class ExecutionTrace:
    """Measured result of running a whole schedule."""

    schedule: Schedule
    tasks: Dict[str, TaskTrace] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at


class WorkflowExecutor:
    """Runs a :class:`Schedule` for a :class:`Workflow` on the grid."""

    def __init__(self, sim: Simulator, topology: Topology,
                 gis: GridInformationService) -> None:
        self.sim = sim
        self.topology = topology
        self.gis = gis

    def execute(self, workflow: Workflow, schedule: Schedule) -> Event:
        """Start execution; the event's value is an :class:`ExecutionTrace`."""
        missing = [t.name for t in workflow.tasks()
                   if t.name not in schedule.placements]
        if missing:
            raise ValueError(f"schedule misses tasks: {missing[:3]}...")
        return self.sim.process(self._run(workflow, schedule),
                                name=f"exec:{workflow.name}")

    def _run(self, workflow: Workflow, schedule: Schedule):
        trace = ExecutionTrace(schedule=schedule, started_at=self.sim.now)
        done_events: Dict[str, Event] = {
            t.name: self.sim.event(name=f"done:{t.name}")
            for t in workflow.tasks()}
        procs = [
            self.sim.process(
                self._run_task(workflow, schedule, task, done_events, trace),
                name=f"task:{task.name}")
            for task in workflow.tasks()
        ]
        yield AllOf(self.sim, procs)
        trace.finished_at = self.sim.now
        return trace

    def _run_task(self, workflow: Workflow, schedule: Schedule, task: Task,
                  done_events: Dict[str, Event], trace: ExecutionTrace):
        placement = schedule.placements[task.name]
        host = self.gis.host(placement.resource)
        arrived_here = self.sim.now
        # Wait for every predecessor task, then pull our input share
        # from wherever each predecessor ran.
        preds = workflow.predecessors(task.component.name)
        volume = task.component.input_bytes_per_task
        transfers: List[Event] = []
        for pred in preds:
            share = volume / pred.n_tasks if volume > 0 else 0.0
            for i in range(pred.n_tasks):
                pname = Task(pred, i).name
                yield done_events[pname]
                src = schedule.placements[pname].resource
                if share > 0 and src != placement.resource:
                    transfers.append(self.topology.transfer(
                        src, placement.resource, share,
                        tag=f"wf:{pname}->{task.name}"))
        if transfers:
            yield AllOf(self.sim, transfers)
        started = self.sim.now
        yield host.compute(task.mflop(), tag=task.name)
        finished = self.sim.now
        trace.tasks[task.name] = TaskTrace(
            name=task.name, resource=placement.resource,
            data_wait_seconds=started - arrived_here,
            started_at=started, finished_at=finished)
        done_events[task.name].succeed()
