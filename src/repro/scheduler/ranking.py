"""Rank values and the performance matrix (§3.1).

"For each application component, the GrADS workflow scheduler ranks
each eligible resource ...  rank(c_i, r_j) = w1 * ecost(c_i, r_j) +
w2 * dcost(c_i, r_j)".  ``ecost`` comes from the §3.2 performance
models; ``dcost`` is "a product of the total volume of data required by
the component and the expected time to transfer data given current
network conditions", with NWS supplying latency and bandwidth.
Resources failing the component's minimum requirements get rank
infinity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..gis.directory import GridInformationService, ResourceRecord
from ..microgrid.host import Architecture, CacheLevel
from ..nws.service import NetworkWeatherService
from .workflow import Task, Workflow

__all__ = ["RankMatrix", "build_rank_matrix", "ecost", "dcost"]


def _record_arch(record: ResourceRecord) -> Architecture:
    """Reconstitute an Architecture from a GIS record (the scheduler
    works from directory data, not live host objects)."""
    caches = (CacheLevel(size=record.cache_bytes),) if record.cache_bytes \
        else ()
    return Architecture(name=record.name, mflops=record.mflops,
                        isa=record.isa, caches=caches,
                        memory_bytes=record.memory_bytes)


def ecost(task: Task, record: ResourceRecord,
          nws: NetworkWeatherService) -> float:
    """Expected execution seconds of one task on one resource."""
    component = task.component
    arch = _record_arch(record)
    if not component.model.eligible(component.problem_size, arch):
        return math.inf
    availability = nws.cpu_forecast(record.name)
    if availability <= 0:
        return math.inf
    per_task_mflop = task.mflop()
    flop_seconds = per_task_mflop / (record.mflops * availability)
    memory_seconds = component.model.memory_seconds(
        component.problem_size, arch) / component.n_tasks
    return flop_seconds + memory_seconds


def dcost(task: Task, record: ResourceRecord,
          nws: NetworkWeatherService, data_sources: Sequence[str]) -> float:
    """Expected data-movement seconds for one task onto one resource.

    ``data_sources`` are the host names currently holding the task's
    inputs (its predecessors' outputs, or the submission host for entry
    components)."""
    volume = task.component.input_bytes_per_task
    if volume <= 0 or not data_sources:
        return 0.0
    per_source = volume / len(data_sources)
    return sum(nws.transfer_forecast(src, record.name, per_source)
               for src in data_sources)


@dataclass
class RankMatrix:
    """The §3.1 performance matrix: p[i][j] = rank of task i on resource j.

    The matrix is immutable once built, so the eligibility lists and the
    task-name index are computed on first use and cached — the scheduling
    engines hit both in their inner loops.
    """

    tasks: List[Task]
    resources: List[ResourceRecord]
    values: np.ndarray  # shape (n_tasks, n_resources), float, inf = ineligible
    ecosts: np.ndarray  # execution-seconds component of the rank
    dcosts: np.ndarray  # data-movement component of the rank
    _eligible: Optional[List[List[int]]] = None
    _task_index: Optional[Dict[str, int]] = None

    def rank(self, task_index: int, resource_index: int) -> float:
        return float(self.values[task_index, resource_index])

    def task_index(self, task_name: str) -> int:
        """Row of ``task_name`` in the matrix (cached name -> index map)."""
        if self._task_index is None:
            self._task_index = {t.name: i for i, t in enumerate(self.tasks)}
        return self._task_index[task_name]

    def eligible_resources(self, task_index: int) -> List[int]:
        if self._eligible is None:
            finite = np.isfinite(self.values)
            self._eligible = [
                [int(j) for j in np.nonzero(finite[i])[0]]
                for i in range(len(self.tasks))]
        return self._eligible[task_index]

    @property
    def shape(self):
        return self.values.shape


def build_rank_matrix(workflow: Workflow, gis: GridInformationService,
                      nws: NetworkWeatherService,
                      data_sources: Optional[Dict[str, List[str]]] = None,
                      w1: float = 1.0, w2: float = 1.0,
                      resources: Optional[Sequence[ResourceRecord]] = None,
                      ) -> RankMatrix:
    """Compute rank(c, r) for every task/resource pair.

    ``data_sources`` maps component name -> host names holding its
    input data (default: unknown, dcost = 0 — pure compute ranking).
    ``w1``/``w2`` are the §3.1 weights.
    """
    if w1 < 0 or w2 < 0:
        raise ValueError("rank weights must be non-negative")
    records = list(resources) if resources is not None else gis.resources()
    if not records:
        raise ValueError("no resources to rank against")
    tasks = workflow.tasks()
    n, m = len(tasks), len(records)
    e = np.zeros((n, m))
    d = np.zeros((n, m))
    for i, task in enumerate(tasks):
        sources = (data_sources or {}).get(task.component.name, [])
        for j, record in enumerate(records):
            e[i, j] = ecost(task, record, nws)
            d[i, j] = dcost(task, record, nws, sources)
    values = w1 * e + w2 * d
    return RankMatrix(tasks=tasks, resources=records, values=values,
                      ecosts=e, dcosts=d)
