"""The metascheduler: a multi-tenant grid submission service.

The front door for a stream of heterogeneous jobs competing for one
testbed.  Lifecycle per submission::

    submit -> admission control -> fair-share queue -> plan
           -> (advance reservation | immediate start | backfill)
           -> place via the GrADS workflow scheduler -> execute
           -> release + fair-share charge

Planning is a *rolling re-plan*: at every scheduling round (triggered
by a submission, a completion, or a reservation's start time arriving)
the un-started plan is brought up to date in fair-share order against
live GIS/NWS state, while claims (running jobs) are immutable.  The
head of the queue gets an advance reservation at the earliest window
the calendars allow; lower-priority jobs may *backfill* — start
immediately — only when their estimated run fits without delaying any
reservation ahead of them.  Claims therefore never overlap by
construction, and :meth:`MetaScheduler.audit_conflicts` re-proves it
from the recorded claim history.

Two planning engines produce that plan (DESIGN.md §9.6):

* ``engine="fast"`` (default) — a **delta re-plan**: the fair-share
  order is computed once per round, and the prefix of jobs whose
  planning inputs (queue position, candidate host set, estimate) are
  unchanged since the previous round *keep* their reservations instead
  of being cancelled and re-booked; the first changed position is the
  dirty watermark from which the plan is rebuilt.  Any occupancy
  change outside planning itself (a claim, a release, an overrunning
  job) invalidates the whole plan — a kept reservation is therefore
  provably identical to what a full rebuild would produce.  Estimates
  are memoized per (job, candidate-prefix), candidate sets are
  resolved once per ISA per round, and jobs behind a full reservation
  depth get a single "free now?" probe instead of a full window sweep.
* ``engine="reference"`` — the pre-overhaul planner: cancel every
  un-started reservation, rebuild the plan from scratch with the
  linear-scan window search.  Same decisions, byte-identical same-seed
  reports; the equivalence suite asserts it.

Everything the service does lands in the ``metasched`` trace lane
(submit/queue/admit/reserve/backfill/start/complete/reject instants
and one span per executed job) and in the always-on ``meta_*``
counters of :class:`~repro.sim.stats.KernelStats`; the ``meta_plan_*``
family (rounds, kept vs rebuilt reservations, window probes, estimate
memo hits, scheduled wakes) exposes what the planning engine did.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..gis.directory import GridInformationService
from ..microgrid.dml import Grid
from ..nws.service import NetworkWeatherService
from ..scheduler.executor import WorkflowExecutor
from ..scheduler.scheduler import GradsWorkflowScheduler
from ..scheduler.workflow import Workflow
from ..sim.events import Event
from ..sim.kernel import Simulator
from .admission import AdmissionController
from .jobs import JobSpec, build_workflow
from .queueing import FairShareQueue
from .reservations import Reservation, ReservationBook

__all__ = ["MetaScheduler", "JobState", "ENGINES"]

_EPS = 1e-9

#: terminal job states
_TERMINAL = ("rejected", "completed", "failed")

#: selectable planning engines
ENGINES = ("fast", "reference")

#: per-position plan-signature kinds (fast engine bookkeeping)
_SIG_SKIP = "skip"    # candidate set smaller than n_hosts
_SIG_RESV = "resv"    # holds a planned advance reservation
_SIG_PROBE = "probe"  # behind a full reservation depth; not startable


@dataclass
class JobState:
    """Everything the service tracks about one submission."""

    spec: JobSpec
    workflow: Workflow
    status: str = "queued"
    reject_reason: str = ""
    error: str = ""
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    hosts: Tuple[str, ...] = ()
    backfilled: bool = False
    est_seconds: float = 0.0
    #: claims held while running
    claims: List[Reservation] = field(default_factory=list)
    #: the current advance reservation (planning only; the fast engine
    #: carries it across rounds, the reference engine rebuilds it)
    planned: List[Reservation] = field(default_factory=list)
    #: last traced plan, to keep re-plans from spamming the trace
    last_plan: Optional[Tuple[float, Tuple[str, ...]]] = None

    @property
    def queue_wait(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.spec.submit_time


class MetaScheduler:
    """Queueing + admission control + reservations over one grid."""

    def __init__(self, sim: Simulator, grid: Grid,
                 gis: GridInformationService, nws: NetworkWeatherService,
                 submission_host: Optional[str] = None,
                 max_queue: Optional[int] = None,
                 max_per_user: Optional[int] = None,
                 min_forecast: float = 0.05,
                 aging_weight: float = 1e-4,
                 reserve_depth: int = 4,
                 safety_factor: float = 2.0,
                 grace_seconds: float = 30.0,
                 engine: str = "fast") -> None:
        if reserve_depth < 1:
            raise ValueError("reserve_depth must be >= 1")
        if safety_factor < 1.0:
            raise ValueError("safety_factor must be >= 1.0")
        if grace_seconds <= 0:
            raise ValueError("grace_seconds must be positive")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
        self.sim = sim
        self.grid = grid
        self.gis = gis
        self.nws = nws
        host_names = sorted(h.name for h in grid.all_hosts())
        if not host_names:
            raise ValueError("grid has no hosts")
        self.submission_host = submission_host or host_names[0]
        self.admission = AdmissionController(
            gis, nws, max_queue=max_queue, max_per_user=max_per_user,
            min_forecast=min_forecast)
        self.queue = FairShareQueue(aging_weight=aging_weight)
        self.book = ReservationBook(host_names)
        self.book.stats = sim.stats
        self.scheduler = GradsWorkflowScheduler(gis, nws)
        self.executor = WorkflowExecutor(sim, grid.topology, gis)
        self.reserve_depth = reserve_depth
        self.safety_factor = safety_factor
        self.grace_seconds = grace_seconds
        self.engine = engine
        self.jobs: Dict[str, JobState] = {}
        self.job_order: List[str] = []
        self._expected: Optional[int] = None
        self._done_event: Optional[Event] = None
        self._n_terminal = 0
        #: start instants of armed-but-unfired wake callbacks, sorted
        self._pending_wakes: List[float] = []
        # -- fast-engine planning state (DESIGN.md §9.6) --
        #: last round's per-position decisions: (name, candidates, kind, est)
        self._plan_sig: List[Tuple[str, Tuple[str, ...], str, float]] = []
        #: book.version() snapshot when that plan was recorded
        self._plan_version: Optional[int] = None
        #: interned candidate tuples per ISA (identity-comparable)
        self._cand_intern: Dict[Optional[str], Tuple[str, ...]] = {}
        #: (job, candidate-prefix) -> estimated seconds
        self._est_memo: Dict[Tuple[str, Tuple[str, ...]], float] = {}

    # -- tracing ------------------------------------------------------------
    def _instant(self, name: str, **args) -> None:
        trace = self.sim.trace
        if trace is not None and "metasched" in trace.active:
            trace.instant("metasched", name, **args)

    # -- submission --------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobState:
        """Accept or reject one job at the current simulated time."""
        if spec.name in self.jobs:
            raise ValueError(f"duplicate job name {spec.name!r}")
        state = JobState(spec=spec, workflow=build_workflow(spec))
        self.jobs[spec.name] = state
        self.job_order.append(spec.name)
        stats = self.sim.stats
        stats.meta_submitted += 1
        self._instant("submit", job=spec.name, user=spec.user,
                      kind=spec.kind, n_hosts=spec.n_hosts)
        admitted, reason = self.admission.admit(
            spec, len(self.queue), self.queue.user_queued(spec.user))
        if not admitted:
            state.status = "rejected"
            state.reject_reason = reason
            stats.meta_rejected += 1
            self._n_terminal += 1
            self._instant("reject", job=spec.name, reason=reason)
            self._check_all_done()
            return state
        self._instant("admit", job=spec.name)
        self.queue.push(spec)
        self._instant("queue", job=spec.name, depth=len(self.queue))
        self._round()
        return state

    def run_stream(self, specs: Sequence[JobSpec]) -> Event:
        """Submit each spec at its arrival time; the returned event
        triggers once every job has reached a terminal state."""
        ordered = sorted(specs, key=lambda s: (s.submit_time, s.name))
        self._expected = len(ordered)
        self._done_event = self.sim.event("metasched:done")
        if not ordered:
            self._done_event.succeed(0)
            return self._done_event
        self.sim.process(self._feeder(ordered), name="metasched:arrivals")
        return self._done_event

    def _feeder(self, ordered: Sequence[JobSpec]):
        for spec in ordered:
            delay = spec.submit_time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self.submit(spec)

    # -- planning rounds ----------------------------------------------------
    def _round(self) -> None:
        """Bring the un-started plan up to date with live resource state."""
        now = self.sim.now
        self.sim.stats.meta_plan_rounds += 1
        ordered = self.queue.ordered(now)
        if self.engine == "reference":
            self._round_reference(now, ordered)
        else:
            self._round_fast(now, ordered)
        self._schedule_wake(now)

    # .. the reference planner (pre-overhaul): cancel-all / rebuild-all ....
    def _round_reference(self, now: float,
                         ordered: Sequence[JobSpec]) -> None:
        for spec in ordered:
            state = self.jobs[spec.name]
            if state.planned:
                self.book.release_block(state.planned, now)
                state.planned = []
        blocked = False
        reservations_made = 0
        for spec in ordered:
            state = self.jobs[spec.name]
            candidates = self.admission.usable_hosts(spec)
            if len(candidates) < spec.n_hosts:
                blocked = True
                continue
            est = self._estimate_seconds(spec, candidates)
            window = self.book.find_window_reference(
                spec.n_hosts, est, now, candidates, now, self.grace_seconds)
            if window is None:
                blocked = True
                continue
            start, hosts = window
            if start <= now + _EPS:
                self._start_job(state, hosts, est, backfilled=blocked)
            else:
                blocked = True
                if reservations_made < self.reserve_depth:
                    state.planned = self.book.reserve_block(
                        spec.name, hosts, start, start + est)
                    reservations_made += 1
                    self.sim.stats.meta_plan_rebuilt += 1
                    self._note_plan(state, start, hosts, est)

    # .. the fast planner: delta re-plan from the dirty watermark ..........
    def _round_fast(self, now: float, ordered: Sequence[JobSpec]) -> None:
        stats = self.sim.stats
        book = self.book
        round_cands: Dict[Optional[str], Tuple[str, ...]] = {}

        def candidates(spec: JobSpec) -> Tuple[str, ...]:
            """Usable hosts, resolved once per ISA per round and
            interned across rounds so unchanged sets compare by
            identity in the plan signature."""
            got = round_cands.get(spec.isa)
            if got is None:
                fresh = tuple(self.admission.usable_hosts(spec))
                last = self._cand_intern.get(spec.isa)
                got = last if last == fresh else fresh
                self._cand_intern[spec.isa] = got
                round_cands[spec.isa] = got
            return got

        # A kept reservation must be provably identical to a rebuild:
        # any occupancy edit outside our own planning (claim/release/
        # foreign booking) or an overrunning claim (whose effective end
        # moves with `now`) voids the proof — rebuild everything.
        dirty = (self._plan_version is None
                 or book.version() != self._plan_version
                 or book.has_overrun(now))
        sig = self._plan_sig
        new_sig: List[Tuple[str, Tuple[str, ...], str, float]] = []
        blocked = False
        reservations_made = 0
        idx = 0
        if not dirty:
            # Replay the unchanged prefix of last round's decisions.
            while idx < len(ordered) and idx < len(sig):
                spec = ordered[idx]
                entry = sig[idx]
                if entry[0] != spec.name or entry[1] is not candidates(spec):
                    break  # dirty watermark: order or candidates changed
                state = self.jobs[spec.name]
                kind = entry[2]
                if kind == _SIG_SKIP:
                    blocked = True
                    new_sig.append(entry)
                    idx += 1
                    continue
                est = entry[3]
                if kind == _SIG_RESV:
                    start = state.planned[0].start
                    if start > now + _EPS:
                        blocked = True
                        reservations_made += 1
                        stats.meta_plan_kept += 1
                        new_sig.append(entry)
                        idx += 1
                        continue
                    # The reserved start has arrived: convert the
                    # reservation into a start on the very hosts it
                    # booked (what a rebuild would re-derive).
                    hosts = [resv.host for resv in state.planned]
                    book.release_block(state.planned, now)
                    state.planned = []
                    self._start_job(state, hosts, est, backfilled=blocked)
                    idx += 1
                    break  # depth accounting changed; rebuild the rest
                # _SIG_PROBE: behind a full depth — start now or stay.
                free = book.free_now(spec.n_hosts, est, entry[1], now,
                                     self.grace_seconds)
                if free is None:
                    blocked = True
                    new_sig.append(entry)
                    idx += 1
                    continue
                self._start_job(state, free, est, backfilled=blocked)
                idx += 1
                break  # a new claim landed; rebuild the rest

        # Cancel what was not kept, then re-plan from the watermark.
        for spec in ordered[idx:]:
            state = self.jobs[spec.name]
            if state.planned and state.status == "queued":
                book.release_block(state.planned, now)
                state.planned = []
        for spec in ordered[idx:]:
            state = self.jobs[spec.name]
            if state.status != "queued":
                continue
            cand = candidates(spec)
            if len(cand) < spec.n_hosts:
                blocked = True
                new_sig.append((spec.name, cand, _SIG_SKIP, 0.0))
                continue
            est = self._estimate(spec, cand)
            if reservations_made >= self.reserve_depth:
                # Depth exhausted: the only observable decision left is
                # "start immediately or stay blocked" — one probe.
                free = book.free_now(spec.n_hosts, est, cand, now,
                                     self.grace_seconds)
                if free is not None:
                    self._start_job(state, free, est, backfilled=blocked)
                else:
                    blocked = True
                    new_sig.append((spec.name, cand, _SIG_PROBE, est))
                continue
            window = book.find_window(spec.n_hosts, est, now, cand, now,
                                      self.grace_seconds)
            if window is None:
                blocked = True
                continue
            start, hosts = window
            if start <= now + _EPS:
                self._start_job(state, hosts, est, backfilled=blocked)
            else:
                blocked = True
                state.planned = book.reserve_block(
                    spec.name, hosts, start, start + est)
                reservations_made += 1
                stats.meta_plan_rebuilt += 1
                self._note_plan(state, start, hosts, est)
                new_sig.append((spec.name, cand, _SIG_RESV, est))
        self._plan_sig = new_sig
        self._plan_version = book.version()

    def _note_plan(self, state: JobState, start: float,
                   hosts: Sequence[str], est: float) -> None:
        """Count/trace a reservation only when the plan actually moved."""
        plan = (start, tuple(hosts))
        if plan != state.last_plan:
            state.last_plan = plan
            self.sim.stats.meta_reservations += 1
            self._instant("reserve", job=state.spec.name,
                          start=start, end=start + est,
                          hosts=",".join(hosts))

    def _schedule_wake(self, now: float) -> None:
        """Arm a wake at the earliest planned start, unless a pending
        wake at or before it will already trigger a round (which would
        re-arm for anything still planned then).  Fired wakes remove
        themselves from the pending list, so a stale past instant can
        never force a redundant re-arm."""
        earliest = float("inf")
        for spec in self.queue.specs():
            planned = self.jobs[spec.name].planned
            if planned and planned[0].start < earliest:
                earliest = planned[0].start
        if earliest == float("inf"):
            return
        pending = self._pending_wakes
        if pending and pending[0] <= earliest + _EPS:
            return
        insort(pending, earliest)
        self.sim.stats.meta_plan_wakes += 1
        self.sim.call_at(earliest, lambda when=earliest: self._wake(when))

    def _wake(self, when: float) -> None:
        pending = self._pending_wakes
        i = bisect_left(pending, when)
        if i < len(pending) and pending[i] == when:  # simlint: ignore[SL005] — removes the exact float armed earlier, no arithmetic in between
            del pending[i]
        self._round()

    def _estimate(self, spec: JobSpec,
                  candidates: Tuple[str, ...]) -> float:
        """Memoized :meth:`_estimate_seconds` — the estimate is a pure
        function of the job and the candidate prefix that sizes it."""
        key = (spec.name, candidates[:spec.n_hosts])
        est = self._est_memo.get(key)
        if est is None:
            est = self._estimate_seconds(spec, candidates)
            self._est_memo[key] = est
        else:
            self.sim.stats.meta_plan_estimate_memo_hits += 1
        return est

    def _estimate_seconds(self, spec: JobSpec,
                          candidates: Sequence[str]) -> float:
        """Pessimistic runtime bound used to size reservations."""
        records = [self.gis.lookup(name)
                   for name in candidates[:spec.n_hosts]]
        speed = min(record.mflops for record in records)
        workflow = self.jobs[spec.name].workflow
        total = workflow.total_mflop()
        critical = workflow.critical_path_mflop()
        parallel = max(total - critical, 0.0) / (speed * spec.n_hosts)
        return self.safety_factor * (critical / speed + parallel) + 10.0

    # -- execution ---------------------------------------------------------
    def _start_job(self, state: JobState, hosts: Sequence[str], est: float,
                   backfilled: bool) -> None:
        spec = state.spec
        now = self.sim.now
        self.queue.remove(spec.name)
        if state.planned:  # safety net; engines release before starting
            self.book.release_block(state.planned, now)
            state.planned = []
        state.claims = self.book.reserve_block(
            spec.name, hosts, now, now + est)
        self.book.claim_block(state.claims, now)
        state.status = "running"
        state.started_at = now
        state.hosts = tuple(hosts)
        state.est_seconds = est
        state.backfilled = backfilled
        stats = self.sim.stats
        stats.meta_started += 1
        wait = now - spec.submit_time
        stats.meta_queue_wait_seconds += wait
        if backfilled:
            stats.meta_backfilled += 1
            self._instant("backfill", job=spec.name,
                          hosts=",".join(hosts))
        self._instant("start", job=spec.name, user=spec.user,
                      kind=spec.kind, hosts=",".join(hosts),
                      queue_wait=wait)
        entry = [component.name
                 for component in state.workflow.components()
                 if not state.workflow.predecessors(component.name)]
        data_sources = {name: [self.submission_host] for name in entry}
        try:
            result = self.scheduler.schedule(
                state.workflow, data_sources=data_sources,
                resources=[self.gis.lookup(name) for name in hosts])
            event = self.executor.execute(state.workflow, result.best)
        except Exception as exc:
            self._finish(state, ok=False,
                         error=f"{type(exc).__name__}: {exc}")
            return
        event.add_callback(
            lambda ev, s=state: self._on_job_event(s, ev))

    def _on_job_event(self, state: JobState, event: Event) -> None:
        if event.ok:
            self._finish(state, ok=True)
        else:
            event.defused = True
            self._finish(state, ok=False,
                         error=f"{type(event.value).__name__}: "
                               f"{event.value}")
        self._round()

    def _finish(self, state: JobState, ok: bool, error: str = "") -> None:
        now = self.sim.now
        self.book.release_block(state.claims, now)
        state.finished_at = now
        state.status = "completed" if ok else "failed"
        state.error = error
        self._n_terminal += 1
        elapsed = now - (state.started_at if state.started_at is not None
                         else now)
        cpu_seconds = elapsed * len(state.hosts)
        self.queue.charge(state.spec.user, cpu_seconds)
        stats = self.sim.stats
        stats.meta_cpu_seconds += cpu_seconds
        if ok:
            stats.meta_completed += 1
        trace = self.sim.trace
        if trace is not None and "metasched" in trace.active:
            trace.instant("metasched", "complete", job=state.spec.name,
                          ok=ok, elapsed=elapsed)
            if state.started_at is not None:
                trace.complete("metasched", f"job:{state.spec.name}",
                               ts=state.started_at, dur=elapsed,
                               user=state.spec.user, kind=state.spec.kind,
                               hosts=",".join(state.hosts),
                               backfilled=state.backfilled)
        self._check_all_done()

    # -- bookkeeping -------------------------------------------------------
    def _check_all_done(self) -> None:
        """O(1): a maintained terminal counter replaces the per-call
        scan over every job state."""
        if self._done_event is None or self._done_event.triggered:
            return
        if self._expected is None:
            return
        if (len(self.jobs) >= self._expected
                and self._n_terminal == len(self.jobs)):
            self._done_event.succeed(self._n_terminal)

    def audit_conflicts(self) -> List[str]:
        """Claim-overlap violations across all hosts; must be empty."""
        return self.book.audit()

    def states(self) -> List[JobState]:
        """Job states in submission order."""
        return [self.jobs[name] for name in self.job_order]
