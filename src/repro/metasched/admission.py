"""Admission control for the submission service.

Every submission is checked against *live* directory state before it
may queue: the GIS must hold enough registered, currently-alive hosts
matching the job's requirements, the NWS forecasts for those hosts
must show usable capacity, and per-service/per-user queue caps must
hold.  A rejection carries a stable reason string (the trace and the
report group by it).

The same validity predicate (:meth:`AdmissionController.usable_hosts`)
is re-evaluated by the service at every planning round, so a host that
is unregistered or crashes *after* its jobs were admitted is dropped
from candidate sets before any placement happens — stale directory
entries can never be admitted onto (the churn tests pin this).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..gis.directory import GISError, GridInformationService
from ..nws.service import NetworkWeatherService
from .jobs import JobSpec

__all__ = ["AdmissionController"]


class AdmissionController:
    """GIS/NWS-backed admission decisions."""

    def __init__(self, gis: GridInformationService,
                 nws: NetworkWeatherService,
                 max_queue: Optional[int] = None,
                 max_per_user: Optional[int] = None,
                 min_forecast: float = 0.05) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_per_user is not None and max_per_user < 1:
            raise ValueError("max_per_user must be >= 1")
        if not 0.0 <= min_forecast <= 1.0:
            raise ValueError("min_forecast must be in [0, 1]")
        self.gis = gis
        self.nws = nws
        self.max_queue = max_queue
        self.max_per_user = max_per_user
        self.min_forecast = min_forecast

    # -- live resource state ------------------------------------------------
    def usable_hosts(self, spec: JobSpec) -> List[str]:
        """Names of registered, alive hosts matching the spec, ordered
        fastest-first (then by name) — the planner's preference order."""
        records = self.gis.query(isa=spec.isa)
        usable = []
        for record in records:
            try:
                host = self.gis.host(record.name)
            except GISError:
                continue  # unregistered between query and resolve
            if host.alive:
                usable.append(record)
        usable.sort(key=lambda r: (-r.mflops, r.name))
        return [r.name for r in usable]

    # -- the admission rule ---------------------------------------------------
    def admit(self, spec: JobSpec, queue_length: int,
              user_queued: int) -> Tuple[bool, str]:
        """``(admitted, reason)``; reason is "" when admitted."""
        if self.max_queue is not None and queue_length >= self.max_queue:
            return False, "queue-full"
        if self.max_per_user is not None and user_queued >= self.max_per_user:
            return False, "user-quota"
        hosts = self.usable_hosts(spec)
        if len(hosts) < spec.n_hosts:
            return False, "insufficient-resources"
        forecasts = sorted(
            (self.nws.cpu_forecast(name) for name in hosts), reverse=True)
        if forecasts[spec.n_hosts - 1] < self.min_forecast:
            return False, "resources-overloaded"
        return True, ""
