"""Per-host advance-reservation calendars.

Each host owns a :class:`HostCalendar` of non-overlapping time
intervals; a :class:`ReservationBook` aggregates the calendars of a
whole testbed and answers the planning questions the metascheduler
asks: "when is the earliest window in which ``n`` hosts are free for
``duration`` seconds?" and "which hosts are spoken for during this
interval?" (the latter is what keeps the rescheduler from migrating an
application onto capacity another job has booked).

Invariants (DESIGN.md §9):

* intervals of unreleased reservations on one host never overlap —
  :meth:`HostCalendar.reserve` refuses conflicting inserts, and
  :meth:`ReservationBook.reserve_block` rolls back partial blocks;
* a **claim** records actual occupancy: it starts when the job starts
  and is truncated to the release instant when the job ends, so the
  claim history is exactly the execution timeline.  ``audit()`` proves
  no two claims ever overlapped on any host;
* a claimed reservation whose estimated ``end`` has passed while the
  job is still running occupies its hosts until released — planners
  see an *effective* end pushed ``grace`` seconds past "now", which
  bounds how often an overrun forces a re-plan.

The planning hot path (DESIGN.md §9.6) is incremental: a calendar
keeps its reservations bisect-sorted by start, so a conflict check or
an insert costs O(log R) neighbour comparisons instead of a linear
scan plus a full re-sort, and the *effective ends* (overrunning claims
pushed ``grace`` past now) are computed once per (now, grace, state)
and shared by :meth:`HostCalendar.busy_during` /
:meth:`HostCalendar.horizon_times`.  :meth:`ReservationBook.find_window`
sweeps one merged, tolerance-deduplicated list of per-host event
points instead of re-scanning every calendar at every candidate start.
The pre-overhaul linear algorithms are retained verbatim as
:meth:`HostCalendar.busy_during_reference` and
:meth:`ReservationBook.find_window_reference` — the oracle the
equivalence tests (and ``MetaScheduler(engine="reference")``) run
against.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover — typing-only import
    from ..sim.stats import KernelStats

__all__ = ["Reservation", "ReservationConflict", "HostCalendar",
           "ReservationBook"]

#: slack when comparing simulated times (floats accumulated over events)
_EPS = 1e-9

#: reservation lifecycle states
RESERVED = "reserved"
CLAIMED = "claimed"
RELEASED = "released"


class ReservationConflict(RuntimeError):
    """Raised when an insert would overlap an existing reservation."""


class Reservation:
    """One job's booking of one host over ``[start, end)``."""

    __slots__ = ("job", "host", "start", "end", "state")

    def __init__(self, job: str, host: str, start: float, end: float) -> None:
        if end <= start:
            raise ValueError(f"empty reservation [{start}, {end})")
        self.job = job
        self.host = host
        self.start = float(start)
        self.end = float(end)
        self.state = RESERVED

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end - _EPS and start < self.end - _EPS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Reservation {self.job}@{self.host} "
                f"[{self.start:.1f}, {self.end:.1f}) {self.state}>")


def _dedup_times(times: List[float]) -> List[float]:
    """Sort and collapse instants within ``_EPS`` of each other.

    Floats that differ by accumulated event noise are one candidate
    start, not several; keeping them distinct made ``find_window``
    re-scan every host for starts that cannot differ observably.
    """
    times.sort()
    out = [times[0]]
    for t in times[1:]:
        if t > out[-1] + _EPS:
            out.append(t)
    return out


class HostCalendar:
    """Non-overlapping reservations for a single host, sorted by start."""

    def __init__(self, host: str) -> None:
        self.host = host
        #: live (reserved or claimed) reservations, sorted by start
        self._active: List[Reservation] = []
        #: parallel array of starts — the bisect index over ``_active``
        self._starts: List[float] = []
        #: actual ends of claimed reservations (overrun detection)
        self._claim_ends: List[float] = []
        #: monotone edit counter; any mutation bumps it (cache keys)
        self.mutations = 0
        #: shared with the owning book (see ReservationBook.calendar) so
        #: the book-wide version stamp is O(1) instead of a sum over hosts
        self.version_cell = [0]
        #: released claims, as (job, start, release_time) — the audit log
        self.claim_history: List[Tuple[str, float, float]] = []
        #: memo for :meth:`_effective_ends`
        self._eff_cache: Tuple[int, float, float, List[float]] = (
            -1, 0.0, 0.0, [])
        #: memo for :meth:`first_live` — (mutations, now, index)
        self._live_cache: Tuple[int, float, int] = (-1, 0.0, 0)

    # -- queries -----------------------------------------------------------
    def active(self) -> List[Reservation]:
        return list(self._active)

    def has_overrun(self, now: float) -> bool:
        """Does any claimed reservation's estimate end at/before now?

        While an overrun exists, effective ends move with ``now`` and
        window decisions stop being time-invariant — the fast planner
        falls back to a full re-plan (DESIGN.md §9.6).
        """
        if not self._claim_ends:
            return False
        return self._claim_ends[0] <= now + _EPS

    def _effective_ends(self, now: float, grace: float) -> List[float]:
        """Effective end per live reservation, in start order.

        An overrunning claim (still running past its estimate) blocks
        until ``now + grace``.  Cached per (state, now, grace): one
        planning round asks for the same horizon many times.
        """
        key = (self.mutations, now, grace)
        cached = self._eff_cache
        if cached[:3] == key:
            return cached[3]
        horizon = now + grace
        out = []
        for resv in self._active:
            r_end = resv.end
            if resv.state == CLAIMED and r_end <= now + _EPS:
                r_end = horizon
            out.append(r_end)
        self._eff_cache = (self.mutations, now, grace, out)
        return out

    def busy_during(self, start: float, end: float,
                    now: float, grace: float) -> bool:
        """Is any live reservation in the way of ``[start, end)``?

        A claimed reservation that has outlived its estimate (the job is
        still running past ``end``) blocks until ``now + grace``: the
        planner re-checks at that horizon instead of busy-waiting.

        O(log R) bisect on the start-sorted array when no claim is
        overrunning; with an overrun in play, effective ends are no
        longer monotone and the linear reference scan runs instead.
        """
        if self.has_overrun(now):
            return self.busy_during_reference(start, end, now, grace)
        # Non-overlapping intervals sorted by start have (eps-)monotone
        # ends, so the only candidate is the last start before `end`.
        pos = bisect_left(self._starts, end - _EPS)
        return pos > 0 and start < self._active[pos - 1].end - _EPS

    def busy_during_reference(self, start: float, end: float,
                              now: float, grace: float) -> bool:
        """The pre-overhaul linear scan — oracle for :meth:`busy_during`."""
        for resv in self._active:
            r_end = resv.end
            if resv.state == CLAIMED and r_end <= now + _EPS:
                r_end = now + grace
            if resv.start < end - _EPS and start < r_end - _EPS:
                return True
        return False

    def first_live(self, now: float) -> int:
        """Index of the first reservation whose end is past ``now`` —
        the only ones that can block an interval starting there.

        With no overrunning claim (callers check :meth:`has_overrun`),
        non-overlapping start-sorted intervals have (eps-)monotone
        ends, so ``[now, end)`` is busy iff
        ``_starts[first_live(now)] < end - _EPS`` — which turns the
        per-(host, job) probes of one planning round (all sharing
        ``start = now``) into two comparisons after one cached bisect.
        """
        key = (self.mutations, now)
        cached = self._live_cache
        if cached[:2] == key:
            return cached[2]
        lo, hi = 0, len(self._active)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._active[mid].end > now + _EPS:
                hi = mid
            else:
                lo = mid + 1
        self._live_cache = (self.mutations, now, lo)
        return lo

    def horizon_times(self, now: float, grace: float) -> List[float]:
        """Candidate window-start instants: each live reservation's
        effective end (overrunning claims push ``grace`` past now)."""
        return list(self._effective_ends(now, grace))

    # -- mutation ----------------------------------------------------------
    def _index_of(self, resv: Reservation) -> int:
        """Position of ``resv`` in the sorted arrays (identity match)."""
        i = bisect_left(self._starts, resv.start)
        while i < len(self._active):
            if self._active[i] is resv:
                return i
            if self._starts[i] > resv.start:
                break
            i += 1
        raise ValueError("reservation does not belong to this calendar")

    def reserve(self, job: str, start: float, end: float) -> Reservation:
        """Book ``[start, end)``; raises :class:`ReservationConflict`.

        Non-overlap means only the bisect neighbours can conflict, so
        the check is O(log R) instead of a scan of every reservation.
        """
        start = float(start)
        end = float(end)
        if end <= start:
            raise ValueError(f"empty reservation [{start}, {end})")
        i = bisect_right(self._starts, start)
        if i > 0 and self._active[i - 1].overlaps(start, end):
            raise ReservationConflict(
                f"{self.host}: [{start:.1f}, {end:.1f}) for {job} "
                f"overlaps {self._active[i - 1]!r}")
        if i < len(self._active) and self._active[i].overlaps(start, end):
            raise ReservationConflict(
                f"{self.host}: [{start:.1f}, {end:.1f}) for {job} "
                f"overlaps {self._active[i]!r}")
        resv = Reservation(job, self.host, start, end)
        self._active.insert(i, resv)
        self._starts.insert(i, start)
        self.mutations += 1
        self.version_cell[0] += 1
        return resv

    def claim(self, resv: Reservation, now: float) -> None:
        """Mark a reservation as actually occupied from ``now`` on."""
        if resv.state != RESERVED:
            raise ValueError(f"cannot claim a {resv.state} reservation")
        i = self._index_of(resv)
        if now < resv.start:
            # Backdating can change the sort position: re-insert.
            del self._active[i]
            del self._starts[i]
            resv.start = now
            i = bisect_right(self._starts, resv.start)
            self._active.insert(i, resv)
            self._starts.insert(i, resv.start)
        resv.state = CLAIMED
        insort(self._claim_ends, resv.end)
        self.mutations += 1
        self.version_cell[0] += 1

    def release(self, resv: Reservation, now: float) -> None:
        """End a reservation.  Claims are truncated/extended to the
        actual release instant and logged for the overlap audit;
        un-started reservations are simply cancelled."""
        if resv.state == RELEASED:
            raise ValueError("reservation already released")
        i = self._index_of(resv)
        del self._active[i]
        del self._starts[i]
        if resv.state == CLAIMED:
            j = bisect_left(self._claim_ends, resv.end)
            del self._claim_ends[j]
            resv.end = max(now, resv.start + _EPS)
            self.claim_history.append((resv.job, resv.start, resv.end))
        resv.state = RELEASED
        self.mutations += 1
        self.version_cell[0] += 1

    def audit(self) -> List[str]:
        """Overlap violations among all claims, past and present."""
        intervals = list(self.claim_history)
        intervals.extend((r.job, r.start, math.inf)
                         for r in self._active if r.state == CLAIMED)
        intervals.sort(key=lambda item: (item[1], item[2], item[0]))
        problems = []
        for (job_a, start_a, end_a), (job_b, start_b, end_b) in zip(
                intervals, intervals[1:]):
            if start_b < end_a - _EPS:
                problems.append(
                    f"{self.host}: claims overlap — {job_a} "
                    f"[{start_a:.3f}, {end_a:.3f}) and {job_b} "
                    f"[{start_b:.3f}, {end_b:.3f})")
        return problems


class ReservationBook:
    """The calendars of every host the metascheduler may book."""

    def __init__(self, hosts: Iterable[str] = ()) -> None:
        #: one shared edit counter: every calendar mutation bumps it
        self._vcell = [0]
        self._calendars: Dict[str, HostCalendar] = {}
        for name in hosts:
            self.calendar(name)
        #: optional :class:`~repro.sim.stats.KernelStats` sink for the
        #: ``meta_plan_window_probes`` counter (set by the service)
        self.stats: Optional[KernelStats] = None
        #: memo for :meth:`has_overrun` — ((version, now), bool)
        self._overrun_cache: Optional[Tuple[Tuple[int, float], bool]] = None
        #: memo for :meth:`_now_gaps` — (version, now, cands, gaps, ranked)
        self._gap_cache: Optional[Tuple[int, float, Tuple[str, ...],
                                        List[float], List[float]]] = None

    def calendar(self, host: str) -> HostCalendar:
        cal = self._calendars.get(host)
        if cal is None:
            cal = self._calendars[host] = HostCalendar(host)
            cal.version_cell = self._vcell
        return cal

    def hosts(self) -> List[str]:
        return sorted(self._calendars)

    def version(self) -> int:
        """Monotone edit stamp over every calendar, O(1).

        The fast planner snapshots this at the end of a round; a
        mismatch at the next round means occupancy changed outside its
        own planning (a claim, a release, a foreign booking) and kept
        reservations can no longer be proven identical to a rebuild.
        """
        return self._vcell[0]

    def has_overrun(self, now: float) -> bool:
        """Any overrunning claim anywhere (see HostCalendar.has_overrun).
        Cached per (version, now) — planning probes ask per job."""
        key = (self._vcell[0], now)
        cached = self._overrun_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        val = any(cal.has_overrun(now)
                  for cal in self._calendars.values())
        self._overrun_cache = (key, val)
        return val

    # -- block operations --------------------------------------------------
    def reserve_block(self, job: str, hosts: Sequence[str], start: float,
                      end: float) -> List[Reservation]:
        """Reserve ``[start, end)`` on every host, atomically."""
        made: List[Reservation] = []
        try:
            for host in hosts:
                made.append(self.calendar(host).reserve(job, start, end))
        except ReservationConflict:
            for resv in made:
                self.calendar(resv.host).release(resv, start)
            raise
        return made

    def claim_block(self, reservations: Sequence[Reservation],
                    now: float) -> None:
        for resv in reservations:
            self.calendar(resv.host).claim(resv, now)

    def release_block(self, reservations: Sequence[Reservation],
                      now: float) -> None:
        for resv in reservations:
            if resv.state != RELEASED:
                self.calendar(resv.host).release(resv, now)

    # -- planning ----------------------------------------------------------
    def _candidate_times(self, not_before: float, candidates: Sequence[str],
                         now: float, grace: float) -> List[float]:
        """Merged, eps-deduplicated window-start candidates: ``not_before``
        plus every later effective reservation end on any candidate."""
        times = [not_before]
        for host in candidates:
            for t in self.calendar(host)._effective_ends(now, grace):
                if t > not_before + _EPS:
                    times.append(t)
        return _dedup_times(times)

    def find_window(self, n_hosts: int, duration: float, not_before: float,
                    candidates: Sequence[str], now: float,
                    grace: float = 30.0
                    ) -> Optional[Tuple[float, List[str]]]:
        """Earliest ``(start, hosts)`` where ``n_hosts`` of the candidate
        list (tried in the given preference order) are simultaneously
        free for ``duration`` seconds.  ``None`` when no finite window
        exists (never happens while calendars hold finite intervals).

        One merged sweep: the candidate starts of every host calendar
        are collected once (deduplicated within ``_EPS``), and each
        (start, host) feasibility probe is an O(log R) bisect.  The
        result is identical to :meth:`find_window_reference` — the
        equivalence suite asserts it.
        """
        if n_hosts < 1 or n_hosts > len(candidates):
            return None
        times = self._candidate_times(not_before, candidates, now, grace)
        # Monotone pointer sweep: candidate starts ascend, and a host
        # with no overrunning claim has both its start and end arrays
        # sorted — so one per-host cursor to its first still-live
        # reservation advances monotonically across the whole sweep,
        # making each (start, host) feasibility probe O(1) amortized.
        # Overrun is a per-host condition (only that host's effective
        # ends are rewritten to now + grace and stop being monotone),
        # so only the few overrunning hosts fall back to the linear
        # reference scan per probe.
        cals = [self._calendars[host] for host in candidates]
        overrun = [cal.has_overrun(now) for cal in cals]
        starts_arrs = [cal._starts for cal in cals]
        ends_arrs = [cal._effective_ends(now, grace) for cal in cals]
        ptrs = [0] * len(cals)
        probes = 0
        try:
            for start in times:
                free: List[str] = []
                end = start + duration
                for i, host in enumerate(candidates):
                    probes += 1
                    if overrun[i]:
                        if cals[i].busy_during_reference(start, end,
                                                         now, grace):
                            continue
                    else:
                        ends = ends_arrs[i]
                        p = ptrs[i]
                        while p < len(ends) and ends[p] <= start + _EPS:
                            p += 1
                        ptrs[i] = p
                        starts = starts_arrs[i]
                        if p < len(starts) and starts[p] < end - _EPS:
                            continue
                    free.append(host)
                    if len(free) == n_hosts:
                        return start, free
            return None
        finally:
            if self.stats is not None:
                self.stats.meta_plan_window_probes += probes

    def find_window_reference(self, n_hosts: int, duration: float,
                              not_before: float, candidates: Sequence[str],
                              now: float, grace: float = 30.0
                              ) -> Optional[Tuple[float, List[str]]]:
        """The pre-overhaul window search: every candidate start is
        re-checked against every host calendar with the linear busy
        scan.  Kept as the byte-equivalent oracle for
        :meth:`find_window` (same candidate-time dedup fix applied —
        eps-close floats are one start, not several)."""
        if n_hosts < 1 or n_hosts > len(candidates):
            return None
        times = [not_before]
        for host in candidates:
            for t in self.calendar(host).horizon_times(now, grace):
                if t > not_before + _EPS:
                    times.append(t)
        for start in _dedup_times(times):
            free = [host for host in candidates
                    if not self.calendar(host).busy_during_reference(
                        start, start + duration, now, grace)]
            if len(free) >= n_hosts:
                return start, free[:n_hosts]
        return None

    def free_now(self, n_hosts: int, duration: float,
                 candidates: Sequence[str], now: float,
                 grace: float = 30.0) -> Optional[List[str]]:
        """First ``n_hosts`` candidates (preference order) free for
        ``[now, now + duration)``, or ``None`` if fewer are free.

        Exactly the first iteration of the :meth:`find_window` sweep
        (the ``start = not_before = now`` probe): when a job's only
        observable decision is "start immediately or stay blocked" —
        a backfill candidate behind a full reservation depth — this
        answers it without sweeping any later windows.
        """
        if n_hosts < 1 or n_hosts > len(candidates):
            return None
        # All of one round's probes share start = now, so each host's
        # availability collapses to one number: the gap until its first
        # live reservation begins (zero on a host whose claim is
        # overrunning — it is occupied *at* now for any duration).
        # Computed once per (version, now, candidate set); the
        # descending-ranked copy answers the common backlogged case —
        # "no n-host window exists right now" — in one comparison.
        gaps, ranked = self._now_gaps(candidates, now)
        stats = self.stats
        threshold = duration - _EPS
        if ranked[n_hosts - 1] < threshold:
            if stats is not None:
                stats.meta_plan_window_probes += 1
            return None
        probes = 0
        free: List[str] = []
        for host, gap in zip(candidates, gaps):
            probes += 1
            if gap >= threshold:
                free.append(host)
                if len(free) == n_hosts:
                    break
        if stats is not None:
            stats.meta_plan_window_probes += probes
        return free

    def _now_gaps(self, candidates: Sequence[str], now: float
                  ) -> Tuple[List[float], List[float]]:
        """Per-candidate free gap at ``now`` (preference order) plus a
        descending-sorted copy.

        A host whose own claim is overrunning has gap zero: the claim
        occupies it from before ``now`` until ``now + grace``, so no
        positive-duration window starts there.  Hosts without an
        overrunning claim have monotone actual ends, so
        :meth:`HostCalendar.first_live` applies.
        """
        cands = (candidates if isinstance(candidates, tuple)
                 else tuple(candidates))
        version = self._vcell[0]
        cached = self._gap_cache
        if (cached is not None and cached[0] == version
                and cached[1] == now  # simlint: ignore[SL005] — exact cache-key match, not a tolerance decision
                and (cached[2] is cands or cached[2] == cands)):
            return cached[3], cached[4]
        gaps: List[float] = []
        for host in cands:
            cal = self.calendar(host)
            if cal.has_overrun(now):
                gaps.append(0.0)
                continue
            k = cal.first_live(now)
            if k == len(cal._starts):
                gaps.append(math.inf)
            else:
                gaps.append(cal._starts[k] - now)
        ranked = sorted(gaps, reverse=True)
        self._gap_cache = (version, now, cands, gaps, ranked)
        return gaps, ranked

    def unavailable_hosts(self, start: float,
                          end: float = math.inf) -> List[str]:
        """Hosts with any live reservation overlapping ``[start, end)``
        — the set a reservation-respecting rescheduler must avoid."""
        out = []
        for name in sorted(self._calendars):
            for resv in self._calendars[name].active():
                if resv.overlaps(start, end):
                    out.append(name)
                    break
        return out

    def audit(self) -> List[str]:
        """All claim-overlap violations across every host (must be [])."""
        problems: List[str] = []
        for name in sorted(self._calendars):
            problems.extend(self._calendars[name].audit())
        return problems
