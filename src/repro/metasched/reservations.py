"""Per-host advance-reservation calendars.

Each host owns a :class:`HostCalendar` of non-overlapping time
intervals; a :class:`ReservationBook` aggregates the calendars of a
whole testbed and answers the planning questions the metascheduler
asks: "when is the earliest window in which ``n`` hosts are free for
``duration`` seconds?" and "which hosts are spoken for during this
interval?" (the latter is what keeps the rescheduler from migrating an
application onto capacity another job has booked).

Invariants (DESIGN.md §9):

* intervals of unreleased reservations on one host never overlap —
  :meth:`HostCalendar.reserve` refuses conflicting inserts, and
  :meth:`ReservationBook.reserve_block` rolls back partial blocks;
* a **claim** records actual occupancy: it starts when the job starts
  and is truncated to the release instant when the job ends, so the
  claim history is exactly the execution timeline.  ``audit()`` proves
  no two claims ever overlapped on any host;
* a claimed reservation whose estimated ``end`` has passed while the
  job is still running occupies its hosts until released — planners
  see an *effective* end pushed ``grace`` seconds past "now", which
  bounds how often an overrun forces a re-plan.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Reservation", "ReservationConflict", "HostCalendar",
           "ReservationBook"]

#: slack when comparing simulated times (floats accumulated over events)
_EPS = 1e-9

#: reservation lifecycle states
RESERVED = "reserved"
CLAIMED = "claimed"
RELEASED = "released"


class ReservationConflict(RuntimeError):
    """Raised when an insert would overlap an existing reservation."""


class Reservation:
    """One job's booking of one host over ``[start, end)``."""

    __slots__ = ("job", "host", "start", "end", "state")

    def __init__(self, job: str, host: str, start: float, end: float) -> None:
        if end <= start:
            raise ValueError(f"empty reservation [{start}, {end})")
        self.job = job
        self.host = host
        self.start = float(start)
        self.end = float(end)
        self.state = RESERVED

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end - _EPS and start < self.end - _EPS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Reservation {self.job}@{self.host} "
                f"[{self.start:.1f}, {self.end:.1f}) {self.state}>")


class HostCalendar:
    """Non-overlapping reservations for a single host."""

    def __init__(self, host: str) -> None:
        self.host = host
        #: live (reserved or claimed) reservations, sorted by start
        self._active: List[Reservation] = []
        #: released claims, as (job, start, release_time) — the audit log
        self.claim_history: List[Tuple[str, float, float]] = []

    # -- queries -----------------------------------------------------------
    def active(self) -> List[Reservation]:
        return list(self._active)

    def busy_during(self, start: float, end: float,
                    now: float, grace: float) -> bool:
        """Is any live reservation in the way of ``[start, end)``?

        A claimed reservation that has outlived its estimate (the job is
        still running past ``end``) blocks until ``now + grace``: the
        planner re-checks at that horizon instead of busy-waiting.
        """
        for resv in self._active:
            r_end = resv.end
            if resv.state == CLAIMED and r_end <= now + _EPS:
                r_end = now + grace
            if resv.start < end - _EPS and start < r_end - _EPS:
                return True
        return False

    def horizon_times(self, now: float, grace: float) -> List[float]:
        """Candidate window-start instants: each live reservation's
        effective end (overrunning claims push ``grace`` past now)."""
        out = []
        for resv in self._active:
            r_end = resv.end
            if resv.state == CLAIMED and r_end <= now + _EPS:
                r_end = now + grace
            out.append(r_end)
        return out

    # -- mutation ----------------------------------------------------------
    def reserve(self, job: str, start: float, end: float) -> Reservation:
        """Book ``[start, end)``; raises :class:`ReservationConflict`."""
        for resv in self._active:
            if resv.overlaps(start, end):
                raise ReservationConflict(
                    f"{self.host}: [{start:.1f}, {end:.1f}) for {job} "
                    f"overlaps {resv!r}")
        resv = Reservation(job, self.host, start, end)
        self._active.append(resv)
        self._active.sort(key=lambda r: r.start)
        return resv

    def claim(self, resv: Reservation, now: float) -> None:
        """Mark a reservation as actually occupied from ``now`` on."""
        if resv.state != RESERVED:
            raise ValueError(f"cannot claim a {resv.state} reservation")
        if resv not in self._active:
            raise ValueError("reservation does not belong to this calendar")
        resv.start = min(resv.start, now)
        resv.state = CLAIMED

    def release(self, resv: Reservation, now: float) -> None:
        """End a reservation.  Claims are truncated/extended to the
        actual release instant and logged for the overlap audit;
        un-started reservations are simply cancelled."""
        if resv.state == RELEASED:
            raise ValueError("reservation already released")
        self._active.remove(resv)
        if resv.state == CLAIMED:
            resv.end = max(now, resv.start + _EPS)
            self.claim_history.append((resv.job, resv.start, resv.end))
        resv.state = RELEASED

    def audit(self) -> List[str]:
        """Overlap violations among all claims, past and present."""
        intervals = list(self.claim_history)
        intervals.extend((r.job, r.start, math.inf)
                         for r in self._active if r.state == CLAIMED)
        intervals.sort(key=lambda item: (item[1], item[2], item[0]))
        problems = []
        for (job_a, start_a, end_a), (job_b, start_b, end_b) in zip(
                intervals, intervals[1:]):
            if start_b < end_a - _EPS:
                problems.append(
                    f"{self.host}: claims overlap — {job_a} "
                    f"[{start_a:.3f}, {end_a:.3f}) and {job_b} "
                    f"[{start_b:.3f}, {end_b:.3f})")
        return problems


class ReservationBook:
    """The calendars of every host the metascheduler may book."""

    def __init__(self, hosts: Iterable[str] = ()) -> None:
        self._calendars: Dict[str, HostCalendar] = {
            name: HostCalendar(name) for name in hosts}

    def calendar(self, host: str) -> HostCalendar:
        cal = self._calendars.get(host)
        if cal is None:
            cal = self._calendars[host] = HostCalendar(host)
        return cal

    def hosts(self) -> List[str]:
        return sorted(self._calendars)

    # -- block operations --------------------------------------------------
    def reserve_block(self, job: str, hosts: Sequence[str], start: float,
                      end: float) -> List[Reservation]:
        """Reserve ``[start, end)`` on every host, atomically."""
        made: List[Reservation] = []
        try:
            for host in hosts:
                made.append(self.calendar(host).reserve(job, start, end))
        except ReservationConflict:
            for resv in made:
                self.calendar(resv.host).release(resv, start)
            raise
        return made

    def claim_block(self, reservations: Sequence[Reservation],
                    now: float) -> None:
        for resv in reservations:
            self.calendar(resv.host).claim(resv, now)

    def release_block(self, reservations: Sequence[Reservation],
                      now: float) -> None:
        for resv in reservations:
            if resv.state != RELEASED:
                self.calendar(resv.host).release(resv, now)

    # -- planning ----------------------------------------------------------
    def find_window(self, n_hosts: int, duration: float, not_before: float,
                    candidates: Sequence[str], now: float,
                    grace: float = 30.0
                    ) -> Optional[Tuple[float, List[str]]]:
        """Earliest ``(start, hosts)`` where ``n_hosts`` of the candidate
        list (tried in the given preference order) are simultaneously
        free for ``duration`` seconds.  ``None`` when no finite window
        exists (never happens while calendars hold finite intervals).
        """
        if n_hosts < 1 or n_hosts > len(candidates):
            return None
        times = {not_before}
        for host in candidates:
            for t in self.calendar(host).horizon_times(now, grace):
                if t > not_before + _EPS:
                    times.add(t)
        for start in sorted(times):
            free = [host for host in candidates
                    if not self.calendar(host).busy_during(
                        start, start + duration, now, grace)]
            if len(free) >= n_hosts:
                return start, free[:n_hosts]
        return None

    def unavailable_hosts(self, start: float,
                          end: float = math.inf) -> List[str]:
        """Hosts with any live reservation overlapping ``[start, end)``
        — the set a reservation-respecting rescheduler must avoid."""
        out = []
        for name in sorted(self._calendars):
            for resv in self._calendars[name].active():
                if resv.overlaps(start, end):
                    out.append(name)
                    break
        return out

    def audit(self) -> List[str]:
        """All claim-overlap violations across every host (must be [])."""
        problems: List[str] = []
        for name in sorted(self._calendars):
            problems.extend(self._calendars[name].audit())
        return problems
