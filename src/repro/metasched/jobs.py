"""Job specifications for the submission service.

A :class:`JobSpec` is what a user hands the front door: a kind (one of
the reproduction's application families), a size, and a host count.
:func:`build_workflow` turns a spec into a schedulable
:class:`~repro.scheduler.workflow.Workflow` — the metascheduler places
every admitted job through the existing GrADS workflow scheduler, so
one placement engine serves both the single-app experiments and the
multi-tenant stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.eman import EmanParameters, eman_refinement_workflow
from ..apps.kernels import qr_matrix_bytes, qr_total_mflop
from ..perfmodel.model import AnalyticComponentModel
from ..scheduler.workflow import Workflow, WorkflowComponent

__all__ = ["JobSpec", "JOB_KINDS", "build_workflow"]

#: the heterogeneous application mix of the stream generator
JOB_KINDS = ("qr", "eman", "nbody")


@dataclass(frozen=True)
class JobSpec:
    """One submission: who wants what, when, and how big."""

    name: str
    user: str
    kind: str
    submit_time: float
    n_hosts: int
    size: float
    priority: int = 0
    isa: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"have {list(JOB_KINDS)}")
        if self.n_hosts < 1:
            raise ValueError(f"{self.name}: n_hosts must be >= 1")
        if self.size <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.submit_time < 0:
            raise ValueError(f"{self.name}: negative submit time")


def _qr_workflow(spec: JobSpec) -> Workflow:
    """A block-QR factor/solve chain: a parallel panel sweep feeding a
    serial back-substitution."""
    n = float(spec.size)
    wf = Workflow(spec.name)
    wf.add_component(WorkflowComponent(
        name="factor",
        model=AnalyticComponentModel(mflop_fn=qr_total_mflop),
        problem_size=n,
        n_tasks=spec.n_hosts,
        input_bytes_per_task=qr_matrix_bytes(int(n)) / spec.n_hosts,
        output_bytes_per_task=qr_matrix_bytes(int(n)) / spec.n_hosts))
    wf.add_component(WorkflowComponent(
        name="solve",
        model=AnalyticComponentModel(
            mflop_fn=lambda size: 2.0 * size * size / 1e6),
        problem_size=n,
        n_tasks=1,
        input_bytes_per_task=qr_matrix_bytes(int(n)) / 50.0))
    wf.add_dependence("factor", "solve")
    return wf


def _eman_workflow(spec: JobSpec) -> Workflow:
    """A reduced EMAN refinement round scaled by particle count."""
    params = EmanParameters(n_particles=max(int(spec.size), 1),
                            n_classes=16, box_size=16)
    wf = eman_refinement_workflow(
        params,
        classesbymra_tasks=spec.n_hosts,
        classalign_tasks=max(spec.n_hosts // 2, 1),
        project_tasks=min(2, spec.n_hosts))
    wf.name = spec.name
    return wf


def _nbody_workflow(spec: JobSpec) -> Workflow:
    """One N-body step: an all-pairs force sweep and a serial reduce."""
    bodies = float(spec.size)
    wf = Workflow(spec.name)
    wf.add_component(WorkflowComponent(
        name="forces",
        model=AnalyticComponentModel(
            mflop_fn=lambda n: 20.0 * n * n / 1e6),
        problem_size=bodies,
        n_tasks=spec.n_hosts,
        output_bytes_per_task=bodies * 48.0 / spec.n_hosts))
    wf.add_component(WorkflowComponent(
        name="reduce",
        model=AnalyticComponentModel(
            mflop_fn=lambda n: 10.0 * n / 1e6),
        problem_size=bodies,
        n_tasks=1,
        input_bytes_per_task=bodies * 48.0))
    wf.add_dependence("forces", "reduce")
    return wf


_BUILDERS = {
    "qr": _qr_workflow,
    "eman": _eman_workflow,
    "nbody": _nbody_workflow,
}


def build_workflow(spec: JobSpec) -> Workflow:
    """Materialize a spec as a schedulable workflow DAG."""
    return _BUILDERS[spec.kind](spec)
