"""The fair-share submission queue.

Priority is *fair share with aging*: a job's effective priority is its
owner's accumulated resource usage (cpu-seconds, normalized by the
heaviest user) minus an aging credit that grows with time spent
queued.  Light users therefore go first, but nobody starves — any job
eventually ages past the usage spread.  Ties (including the cold-start
case where nobody has usage) break by submission order, which keeps
the queue deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .jobs import JobSpec

__all__ = ["FairShareQueue"]


class FairShareQueue:
    """Queued specs ordered by fair-share priority (lower = sooner)."""

    def __init__(self, aging_weight: float = 1e-4) -> None:
        """``aging_weight`` converts queue-wait seconds into priority
        credit; at the default a job gains the full usage spread after
        ``1/aging_weight`` seconds of waiting."""
        if aging_weight < 0:
            raise ValueError("aging_weight must be non-negative")
        self.aging_weight = aging_weight
        self._entries: List[tuple] = []  # (seq, spec)
        self._ticket = 0
        #: cpu-seconds each user has consumed so far
        self.usage: Dict[str, float] = {}
        #: memoized dispatch order; valid until push/remove/charge
        self._order_cache: Optional[List[JobSpec]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return any(spec.name == name for _seq, spec in self._entries)

    def user_queued(self, user: str) -> int:
        return sum(1 for _seq, spec in self._entries if spec.user == user)

    def specs(self) -> List[JobSpec]:
        """Queued specs in arrival order (no priority sort)."""
        return [spec for _seq, spec in self._entries]

    def push(self, spec: JobSpec) -> None:
        self._entries.append((self._ticket, spec))
        self._ticket += 1
        self._order_cache = None

    def remove(self, name: str) -> JobSpec:
        for i, (_seq, spec) in enumerate(self._entries):
            if spec.name == name:
                del self._entries[i]
                self._order_cache = None
                return spec
        raise KeyError(f"job {name!r} is not queued")

    def charge(self, user: str, cpu_seconds: float) -> None:
        """Account completed work against a user's fair share."""
        self.usage[user] = self.usage.get(user, 0.0) + cpu_seconds
        self._order_cache = None

    def _key(self, seq: int, spec: JobSpec, now: float, scale: float):
        share = self.usage.get(spec.user, 0.0) / scale
        aging = self.aging_weight * max(now - spec.submit_time, 0.0)
        return (share - aging - spec.priority, seq)

    def ordered(self, now: float) -> List[JobSpec]:
        """Queued specs in dispatch order at simulated time ``now``.

        The order is memoized between mutations: every queued job's
        aging credit grows at the same ``aging_weight`` rate, so the
        *relative* ranking is invariant in ``now`` while the entry set,
        priorities and usage table are unchanged — only push/remove/
        charge can reorder, and each of those drops the cache.
        """
        cached = self._order_cache
        if cached is not None:
            return list(cached)
        scale = max(max(self.usage.values(), default=0.0), 1.0)
        ranked = sorted(self._entries,
                        key=lambda entry: self._key(entry[0], entry[1],
                                                    now, scale))
        order = [spec for _seq, spec in ranked]
        self._order_cache = order
        return list(order)
