"""Open-loop synthetic job streams.

Arrivals are a Poisson process: exponential inter-arrival gaps at an
aggregate ``arrival_rate`` (jobs per simulated second across all
users), drawn from a dedicated :mod:`repro.sim.rng` stream so the
stream for a given seed never changes when other subsystems add
randomness.  Users, job kinds and sizes are sampled from further named
streams, which makes each facet independently reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..sim.rng import RngRegistry
from .jobs import JOB_KINDS, JobSpec

__all__ = ["generate_stream", "DEFAULT_MIX"]

#: (kind, weight, (min_size, max_size), (min_hosts, max_hosts)) —
#: sizes chosen so a job runs minutes of simulated time on the Fig. 3
#: testbed, long enough that a realistic arrival rate produces queue
#: contention (and therefore reservations and backfill)
DEFAULT_MIX: Tuple[tuple, ...] = (
    ("qr", 0.4, (4000.0, 9000.0), (2, 4)),
    ("eman", 0.3, (30000.0, 120000.0), (2, 6)),
    ("nbody", 0.3, (50000.0, 200000.0), (1, 4)),
)


def generate_stream(n_users: int, arrival_rate: float, duration: float,
                    rng: RngRegistry,
                    mix: Sequence[tuple] = DEFAULT_MIX,
                    max_jobs: Optional[int] = None) -> List[JobSpec]:
    """Draw the full arrival schedule for one run, up front (open loop).

    Returns specs ordered by submit time.  ``max_jobs`` caps the stream
    length regardless of ``duration`` (the benchmark uses it to pin an
    exact job count).
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not mix:
        raise ValueError("empty job mix")
    kinds = [entry[0] for entry in mix]
    unknown = sorted(set(kinds) - set(JOB_KINDS))
    if unknown:
        raise ValueError(f"unknown kinds in mix: {unknown}")
    weights = [float(entry[1]) for entry in mix]
    total_weight = sum(weights)
    probabilities = [w / total_weight for w in weights]

    gaps = rng.stream("metasched-arrivals")
    users = rng.stream("metasched-users")
    kind_picks = rng.stream("metasched-kinds")
    sizes = rng.stream("metasched-sizes")
    host_counts = rng.stream("metasched-hosts")

    specs: List[JobSpec] = []
    now = 0.0
    while True:
        now += float(gaps.exponential(1.0 / arrival_rate))
        if now > duration:
            break
        if max_jobs is not None and len(specs) >= max_jobs:
            break
        index = len(specs)
        user = f"u{int(users.integers(0, n_users))}"
        pick = int(kind_picks.choice(len(mix), p=probabilities))
        kind, _weight, (lo_size, hi_size), (lo_hosts, hi_hosts) = mix[pick]
        size = float(sizes.uniform(lo_size, hi_size))
        n_hosts = int(host_counts.integers(lo_hosts, hi_hosts + 1))
        specs.append(JobSpec(
            name=f"{user}-j{index}", user=user, kind=kind,
            submit_time=now, n_hosts=n_hosts, size=size))
    return specs
