"""repro.metasched — a multi-tenant grid submission service.

The layer the single-application GrADS stack is missing: a front-door
service that accepts a stream of heterogeneous jobs from many users,
holds them in a fair-share queue, admits them against live GIS/NWS
state, books capacity in per-host advance-reservation calendars
(with backfill of small jobs into the gaps), and places every admitted
job through the existing workflow scheduler.  See DESIGN.md §9.
"""

from .admission import AdmissionController
from .arrivals import DEFAULT_MIX, generate_stream
from .jobs import JOB_KINDS, JobSpec, build_workflow
from .queueing import FairShareQueue
from .reservations import (
    HostCalendar,
    Reservation,
    ReservationBook,
    ReservationConflict,
)
from .service import JobState, MetaScheduler

__all__ = [
    "AdmissionController",
    "DEFAULT_MIX",
    "FairShareQueue",
    "HostCalendar",
    "JOB_KINDS",
    "JobSpec",
    "JobState",
    "MetaScheduler",
    "Reservation",
    "ReservationBook",
    "ReservationConflict",
    "build_workflow",
    "generate_stream",
]
