"""Internet Backplane Protocol storage depots.

"The SRS library uses the Internet Backplane Protocol (IBP) for
checkpoint data storage" (§4.1.1), and in the Figure 3 experiments
"checkpoints are written to IBP storage on local disks" — which is why
checkpoint *writing* is cheap while checkpoint *reading* from another
cluster "involves moving data across the Internet" and dominates.

A depot lives on one host: writes/reads from that host hit only the
disk; remote access pays a network transfer plus the disk, pipelined
(the slower of the two stages bounds the time; we charge
max(network, disk) + latency, a standard store-and-stream model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..microgrid.host import Host
from ..microgrid.network import Topology
from ..sim.events import Event
from ..sim.kernel import Simulator

__all__ = ["Depot", "DepotError", "Allocation"]


class DepotError(RuntimeError):
    """Raised for missing allocations or capacity violations."""


@dataclass
class Allocation:
    """A named byte range stored in a depot."""

    key: str
    nbytes: float
    written_at: float


class Depot:
    """IBP storage attached to one host's local disks."""

    def __init__(self, sim: Simulator, topology: Topology, host: Host,
                 capacity_bytes: float = 100e9) -> None:
        self.sim = sim
        self.topology = topology
        self.host = host
        self.capacity_bytes = float(capacity_bytes)
        self._allocations: Dict[str, Allocation] = {}

    # -- bookkeeping ----------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return sum(a.nbytes for a in self._allocations.values())

    def has(self, key: str) -> bool:
        return key in self._allocations

    def allocation(self, key: str) -> Allocation:
        try:
            return self._allocations[key]
        except KeyError:
            raise DepotError(f"no allocation {key!r} in depot "
                             f"{self.host.name}") from None

    def delete(self, key: str) -> None:
        if key not in self._allocations:
            raise DepotError(f"no allocation {key!r} to delete")
        del self._allocations[key]

    # -- data movement -----------------------------------------------------------
    def write(self, src_host_name: str, key: str, nbytes: float) -> Event:
        """Store ``nbytes`` arriving from ``src_host_name`` under ``key``.

        The returned event triggers when the data is durable; its value
        is the elapsed seconds.
        """
        if nbytes < 0:
            raise DepotError("negative write size")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise DepotError(
                f"depot {self.host.name} over capacity "
                f"({self.used_bytes + nbytes:.0f} > {self.capacity_bytes:.0f})")
        done = self.sim.event(name=f"ibp-write:{key}")
        if not self.host.alive:
            done.fail(DepotError(
                f"depot host {self.host.name} is down"))
            return done
        start = self.sim.now
        disk_seconds = nbytes / self.host.disk_write_bw

        if src_host_name == self.host.name:
            total = disk_seconds
            latency = 0.0
        else:
            net_seconds = nbytes / self._path_bw(src_host_name, self.host.name)
            latency = self.topology.path_latency(src_host_name, self.host.name)
            total = max(disk_seconds, net_seconds)

        def finish() -> None:
            self._allocations[key] = Allocation(key=key, nbytes=nbytes,
                                                written_at=self.sim.now)
            done.succeed(self.sim.now - start)

        self.sim.call_after(latency + total, finish)
        return done

    def read(self, dst_host_name: str, key: str) -> Event:
        """Deliver allocation ``key`` to ``dst_host_name``.

        Remote reads stream through the real network (so they contend
        with other traffic); the local disk stage is charged only if it
        is the bottleneck.
        """
        return self.read_partial(dst_host_name, key,
                                 self.allocation(key).nbytes)

    def read_partial(self, dst_host_name: str, key: str,
                     nbytes: float) -> Event:
        """Deliver the first ``nbytes`` of allocation ``key``.

        SRS uses this for N-to-M redistribution reads, where a restarted
        rank needs only part of each old rank's partition.
        """
        allocation = self.allocation(key)
        if nbytes < 0 or nbytes > allocation.nbytes + 1e-6:
            raise DepotError(
                f"partial read of {nbytes} from {allocation.nbytes}-byte "
                f"allocation {key!r}")
        done = self.sim.event(name=f"ibp-read:{key}")
        if not self.host.alive:
            done.fail(DepotError(
                f"depot host {self.host.name} is down"))
            return done
        start = self.sim.now
        disk_seconds = nbytes / self.host.disk_read_bw

        if dst_host_name == self.host.name:
            self.sim.call_after(disk_seconds,
                                lambda: done.succeed(self.sim.now - start))
            return done

        transfer = self.topology.transfer(self.host.name, dst_host_name,
                                          nbytes, tag=f"ibp:{key}")

        def finish(_ev: Event) -> None:
            elapsed = self.sim.now - start
            extra = max(disk_seconds - elapsed, 0.0)
            if extra > 0:
                self.sim.call_after(
                    extra, lambda: done.succeed(self.sim.now - start))
            else:
                done.succeed(elapsed)

        transfer.add_callback(finish)
        return done

    def _path_bw(self, src: str, dst: str) -> float:
        return self.topology.path_bottleneck_bw(src, dst)
