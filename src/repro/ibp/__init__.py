"""IBP network storage."""

from .depot import Allocation, Depot, DepotError

__all__ = ["Allocation", "Depot", "DepotError"]
