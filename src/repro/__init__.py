"""repro — a reproduction of the GrADS grid scheduling and rescheduling
system ("New Grid Scheduling and Rescheduling Methods in the GrADS
Project", IPPS 2004) on a from-scratch discrete-event grid emulator.

Subpackages
-----------

=====================  ====================================================
``repro.sim``          discrete-event kernel (events, processes, RNG)
``repro.microgrid``    virtual hosts, clusters, networks, load, testbeds
``repro.gis``          grid information service + software registry
``repro.nws``          network weather service (sensors + forecasting)
``repro.perfmodel``    flop-count fitting and memory-reuse-distance models
``repro.mpi``          simulated MPI runtime with swapping and counters
``repro.cop``          configurable object programs and mappers
``repro.binder``       distributed binder and launcher
``repro.scheduler``    workflow DAGs, rank matrices, heuristics, executor
``repro.contracts``    Autopilot, fuzzy logic, performance contracts
``repro.ibp``          network storage depots
``repro.rescheduling`` SRS/RSS, redistribution, reschedulers, swapping
``repro.faults``       failure injection and recovery campaigns
``repro.metasched``    multi-tenant submission service with reservations
``repro.apps``         ScaLAPACK QR, N-body, EMAN refinement workflow
``repro.appmanager``   the wired-up GrADS execution environment
``repro.experiments``  drivers regenerating the paper's figures
``repro.trace``        structured tracing, export, analysis, determinism diff
=====================  ====================================================

Quickstart: see ``examples/quickstart.py`` and the README.
"""

from . import (
    appmanager,
    apps,
    binder,
    contracts,
    cop,
    experiments,
    faults,
    gis,
    ibp,
    metasched,
    microgrid,
    mpi,
    nws,
    perfmodel,
    rescheduling,
    scheduler,
    sim,
    trace,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "__version__",
    "appmanager",
    "apps",
    "binder",
    "contracts",
    "cop",
    "experiments",
    "faults",
    "gis",
    "ibp",
    "metasched",
    "microgrid",
    "mpi",
    "nws",
    "perfmodel",
    "rescheduling",
    "scheduler",
    "sim",
    "trace",
]
