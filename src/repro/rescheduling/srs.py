"""SRS — the Stop Restart Software checkpoint library (§4.1.1).

"Via calls to SRS, the application can checkpoint data, be stopped at a
particular execution point, be restarted later on a different processor
configuration and be continued from the previous point of execution."

The library is used from inside MPI rank bodies:

* ``should_stop()`` — poll the RSS stop flag at safe execution points.
* ``checkpoint(ctx, dataset, progress, n_procs)`` — write this rank's
  block-cyclic partition to an IBP depot on its local disk (cheap) and
  register the location with RSS.
* ``restore(ctx, dataset, new_n_procs)`` — on restart, pull the blocks
  this rank owns under the *new* distribution from wherever the old
  ranks checkpointed them (expensive across the Internet): the
  transparent N-to-M block-cyclic redistribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ibp.depot import Depot
from ..microgrid.host import Host
from ..microgrid.network import Topology
from ..mpi.comm import MpiContext
from ..sim.events import AllOf, Event
from ..sim.kernel import Simulator
from .redistribution import partition_bytes
from .rss import CheckpointLocation, CheckpointRecord, RuntimeSupportSystem

__all__ = ["SRSLibrary", "RegisteredData", "restore_plan"]


@dataclass(frozen=True)
class RegisteredData:
    """One array registered for checkpointing (e.g. matrix A, vector B)."""

    name: str
    total_bytes: float
    block_bytes: float  # block-cyclic deal unit

    def __post_init__(self) -> None:
        if self.total_bytes < 0 or self.block_bytes <= 0:
            raise ValueError("data sizes must be positive")


def restore_plan(total_bytes: float, block_bytes: float,
                 p: int, q: int, dst_rank: int) -> Dict[int, float]:
    """Bytes new rank ``dst_rank`` (of ``q``) must pull from each old
    rank's checkpoint (of ``p``).  All blocks are pulled — a restarted
    process starts with no data, even for blocks whose old and new rank
    numbers coincide."""
    if p < 1 or q < 1:
        raise ValueError("process counts must be >= 1")
    if not 0 <= dst_rank < q:
        raise ValueError(f"rank {dst_rank} out of range for {q}")
    n_blocks = int(math.ceil(total_bytes / block_bytes)) if total_bytes else 0
    need: Dict[int, float] = {}
    remaining = total_bytes
    for k in range(n_blocks):
        size = min(block_bytes, remaining)
        remaining -= size
        if k % q == dst_rank:
            src = k % p
            need[src] = need.get(src, 0.0) + size
    return need


class SRSLibrary:
    """Checkpoint/restart services shared by all ranks of one app."""

    def __init__(self, sim: Simulator, topology: Topology,
                 rss: RuntimeSupportSystem,
                 stable_host: Optional[Host] = None) -> None:
        """``stable_host`` redirects checkpoints to one depot on that
        host instead of each rank's local disk.  Local-disk checkpoints
        (the paper's configuration) are cheap to write but die with the
        machine; stable-storage checkpoints pay a network transfer but
        survive host failures — the trade the fault-tolerance extension
        needs."""
        self.sim = sim
        self.topology = topology
        self.rss = rss
        self.stable_host = stable_host
        self._registered: Dict[str, RegisteredData] = {}
        self._depots: Dict[str, Depot] = {}
        self._pending: Dict[str, CheckpointRecord] = {}

    # -- registration ------------------------------------------------------------
    def register_data(self, data: RegisteredData) -> None:
        self._registered[data.name] = data

    def registered(self, name: str) -> RegisteredData:
        try:
            return self._registered[name]
        except KeyError:
            raise KeyError(f"data {name!r} was never registered") from None

    def depot_on(self, host: Host) -> Depot:
        """The IBP depot on a host's local disk (created on first use)."""
        depot = self._depots.get(host.name)
        if depot is None:
            depot = Depot(self.sim, self.topology, host)
            self._depots[host.name] = depot
        return depot

    # -- stop flag ----------------------------------------------------------------
    def should_stop(self) -> bool:
        """Poll at safe points; mirrors SRS_Check."""
        return self.rss.stop_requested

    # -- checkpoint --------------------------------------------------------------
    def checkpoint(self, ctx: MpiContext, dataset: str, progress: int,
                   n_procs: int):
        """Generator: write this rank's partition to local IBP storage.

        Every rank calls this.  The checkpoint record is assembled
        cooperatively and published to RSS once the last rank's write
        lands, so a partially written checkpoint is never visible.
        """
        data = self.registered(dataset)
        # Key pending records by (dataset, progress): ranks arriving with
        # different progress values build separate candidate checkpoints
        # instead of corrupting each other's.
        pending_key = f"{dataset}@{progress}"
        pending = self._pending.get(pending_key)
        if pending is None:
            pending = CheckpointRecord(
                dataset=dataset, progress=progress, n_procs=n_procs,
                total_bytes=data.total_bytes, block_bytes=data.block_bytes)
            self._pending[pending_key] = pending
        my_bytes = partition_bytes(data.total_bytes, data.block_bytes,
                                   ctx.rank, n_procs)
        target = self.stable_host if self.stable_host is not None \
            else ctx.host
        depot = self.depot_on(target)
        key = f"{dataset}:ckpt:{progress}:r{ctx.rank}"
        if depot.has(key):
            depot.delete(key)
        t0 = self.sim.now
        yield depot.write(ctx.host.name, key, my_bytes)
        trace = self.sim.trace
        if trace is not None and "reschedule" in trace.active:
            trace.complete("reschedule", "checkpoint", ts=t0,
                           dur=self.sim.now - t0, dataset=dataset,
                           rank=ctx.rank, progress=progress,
                           bytes=my_bytes, host=ctx.host.name)
        # `pending` cannot go stale across the depot write: the record
        # is only dropped from _pending by the last rank to land (the
        # branch below), and that branch cannot have run yet while this
        # rank's own write is still missing.
        pending.locations[ctx.rank] = CheckpointLocation(
            rank=ctx.rank, depot_host=target.name, key=key,
            nbytes=my_bytes)  # simlint: ignore[SL020] — completion protocol above
        if len(pending.locations) == n_procs:
            self.rss.store_checkpoint(pending)
            del self._pending[pending_key]

    # -- restore --------------------------------------------------------------------
    def restore(self, ctx: MpiContext, dataset: str, new_n_procs: int):
        """Generator: pull this rank's new partition from the old depots.

        Returns the checkpointed progress value, or None when there is
        no checkpoint (fresh start).
        """
        record = self.rss.checkpoint(dataset)
        if record is None:
            return None
        need = restore_plan(record.total_bytes, record.block_bytes,
                            record.n_procs, new_n_procs, ctx.rank)
        reads: List[Event] = []
        for src_rank, nbytes in sorted(need.items()):
            location = record.location(src_rank)
            depot = self._depots.get(location.depot_host)
            if depot is None:
                raise KeyError(f"depot on {location.depot_host} vanished")
            reads.append(depot.read_partial(ctx.host.name, location.key,
                                            min(nbytes, location.nbytes)))
        t0 = self.sim.now
        if reads:
            yield AllOf(self.sim, reads)
        trace = self.sim.trace
        if trace is not None and "reschedule" in trace.active:
            trace.complete("reschedule", "restore", ts=t0,
                           dur=self.sim.now - t0, dataset=dataset,
                           rank=ctx.rank, progress=record.progress,
                           bytes=sum(need.values()), host=ctx.host.name)
        return record.progress
