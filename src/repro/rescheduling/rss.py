"""The Runtime Support System (RSS) daemon.

"An external component (e.g., the rescheduler) interacts with a daemon
called Runtime Support System (RSS).  RSS exists for the duration of
the application execution and can span multiple migrations.  Before the
application is started, the launcher initiates the RSS daemon on the
machine where the user invokes the GrADS application manager.  The
actual application, through the SRS, interacts with RSS to perform some
initialization, to check if the application needs to be checkpointed
and stopped, and to store and retrieve checkpointed data." (§4.1.1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.kernel import Simulator

__all__ = ["CheckpointLocation", "CheckpointRecord", "RuntimeSupportSystem"]


@dataclass(frozen=True)
class CheckpointLocation:
    """Where one rank's partition of one dataset is stored."""

    rank: int
    depot_host: str
    key: str
    nbytes: float


@dataclass
class CheckpointRecord:
    """Metadata for one consistent application checkpoint."""

    dataset: str
    progress: int  # application-defined resume point (e.g. iteration)
    n_procs: int  # distribution width at checkpoint time
    total_bytes: float
    block_bytes: float
    locations: Dict[int, CheckpointLocation] = field(default_factory=dict)
    stored_at: float = 0.0

    def location(self, rank: int) -> CheckpointLocation:
        try:
            return self.locations[rank]
        except KeyError:
            raise KeyError(f"dataset {self.dataset!r} has no checkpoint "
                           f"partition for rank {rank}") from None


class RuntimeSupportSystem:
    """Stop-flag and checkpoint-metadata service, one per application run."""

    def __init__(self, sim: Simulator, home_host: str) -> None:
        self.sim = sim
        self.home_host = home_host
        self._stop_requested = False
        self._checkpoints: Dict[str, CheckpointRecord] = {}
        self.stop_requests: List[float] = []

    # -- stop flag ------------------------------------------------------------
    def request_stop(self) -> None:
        """Called by the rescheduler; the app polls via SRS."""
        self._stop_requested = True
        self.stop_requests.append(self.sim.now)

    def clear_stop(self) -> None:
        """Reset before (re)starting the application."""
        self._stop_requested = False

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    # -- checkpoint metadata ------------------------------------------------------
    def store_checkpoint(self, record: CheckpointRecord) -> None:
        record.stored_at = self.sim.now
        self._checkpoints[record.dataset] = record

    def checkpoint(self, dataset: str) -> Optional[CheckpointRecord]:
        return self._checkpoints.get(dataset)

    def has_checkpoint(self, dataset: str) -> bool:
        return dataset in self._checkpoints

    def forget_checkpoint(self, dataset: str) -> None:
        self._checkpoints.pop(dataset, None)

    def datasets(self) -> List[str]:
        return sorted(self._checkpoints)
