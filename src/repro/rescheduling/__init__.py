"""Rescheduling: stop/migrate/restart and process swapping (paper §4)."""

from .redistribution import (
    block_owner,
    moved_fraction,
    partition_bytes,
    redistribution_plan,
    redistribution_volume,
)
from .rescheduler import (
    DecisionRecord,
    MigratableApp,
    MigrationEvaluation,
    Rescheduler,
)
from .rss import CheckpointLocation, CheckpointRecord, RuntimeSupportSystem
from .srs import RegisteredData, SRSLibrary, restore_plan
from .swapping import (
    SWAP_POLICIES,
    SwapDecision,
    SwapRescheduler,
    gang_policy,
    greedy_policy,
    single_policy,
    threshold_policy,
)

__all__ = [
    "CheckpointLocation",
    "CheckpointRecord",
    "DecisionRecord",
    "MigratableApp",
    "MigrationEvaluation",
    "RegisteredData",
    "Rescheduler",
    "RuntimeSupportSystem",
    "SRSLibrary",
    "SWAP_POLICIES",
    "SwapDecision",
    "SwapRescheduler",
    "block_owner",
    "gang_policy",
    "greedy_policy",
    "moved_fraction",
    "partition_bytes",
    "redistribution_plan",
    "redistribution_volume",
    "restore_plan",
    "single_policy",
    "threshold_policy",
]
