"""Block-cyclic N-to-M data redistribution.

"SRS can transparently handle the redistribution of certain data
distributions (e.g., block cyclic) between different numbers of
processors (i.e., N to M processors)" (§4.1.1).  These functions
compute exactly which blocks move between which ranks when a block-
cyclically distributed matrix is re-laid-out from P to Q processes —
the redistribution that makes checkpoint *reads* expensive in Figure 3.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

__all__ = [
    "block_owner",
    "redistribution_plan",
    "redistribution_volume",
    "moved_fraction",
    "partition_bytes",
]


def block_owner(block_index: int, n_procs: int) -> int:
    """Owner of a block in a 1-D block-cyclic layout."""
    if n_procs < 1:
        raise ValueError("need at least one process")
    if block_index < 0:
        raise ValueError("negative block index")
    return block_index % n_procs


def redistribution_plan(total_bytes: float, block_bytes: float,
                        p: int, q: int) -> Dict[Tuple[int, int], float]:
    """Bytes each (src_rank, dst_rank) pair must move when going P -> Q.

    The data is ``total_bytes`` long, cut into blocks of ``block_bytes``
    dealt cyclically.  Pairs with src == dst (no movement) are omitted.
    """
    if total_bytes < 0 or block_bytes <= 0:
        raise ValueError("sizes must be positive")
    if p < 1 or q < 1:
        raise ValueError("process counts must be >= 1")
    n_blocks = int(math.ceil(total_bytes / block_bytes))
    plan: Dict[Tuple[int, int], float] = {}
    remaining = total_bytes
    for k in range(n_blocks):
        size = min(block_bytes, remaining)
        remaining -= size
        src = block_owner(k, p)
        dst = block_owner(k, q)
        if src != dst:
            key = (src, dst)
            plan[key] = plan.get(key, 0.0) + size
    return plan


def redistribution_volume(total_bytes: float, block_bytes: float,
                          p: int, q: int) -> float:
    """Total bytes that change owner going P -> Q."""
    return sum(redistribution_plan(total_bytes, block_bytes, p, q).values())


def moved_fraction(p: int, q: int, n_blocks: int = 10_000) -> float:
    """Fraction of blocks that change rank going P -> Q.

    For co-prime P and Q this approaches 1 - 1/max(P,Q) * gcd-pattern;
    computed exactly over ``n_blocks`` for the analytic models.
    """
    if p < 1 or q < 1:
        raise ValueError("process counts must be >= 1")
    if p == q:
        return 0.0
    moved = sum(1 for k in range(n_blocks) if k % p != k % q)
    return moved / n_blocks


def partition_bytes(total_bytes: float, block_bytes: float,
                    rank: int, n_procs: int) -> float:
    """Bytes a given rank owns under 1-D block-cyclic distribution."""
    if rank < 0 or rank >= n_procs:
        raise ValueError(f"rank {rank} out of range for {n_procs} procs")
    if total_bytes < 0 or block_bytes <= 0:
        raise ValueError("sizes must be positive")
    n_blocks = int(math.ceil(total_bytes / block_bytes))
    owned = 0.0
    remaining = total_bytes
    for k in range(n_blocks):
        size = min(block_bytes, remaining)
        remaining -= size
        if k % n_procs == rank:
            owned += size
    return owned
