"""The swap rescheduler and its policies (§4.2, after [14]).

"The swapping rescheduler gathers information from sensors, analyzes
performance information and determines whether and where to swap
processes.  We have designed and evaluated several policies."

A policy looks at the effective speed (peak Mflop/s x NWS availability
forecast) of every pool machine and proposes (logical rank, new host)
swaps.  Four policies are provided:

* ``greedy``    — swap every active machine for any strictly better
                  idle machine (most aggressive, most swap traffic);
* ``single``    — swap only the single worst active machine per check;
* ``threshold`` — swap an active machine only when an idle one beats it
                  by a configurable factor (guards against thrashing on
                  small, noisy differences);
* ``gang``      — move the whole active set to the best single site
                  (what the paper's demonstration did: all three
                  processes were on UIUC by t=150 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..microgrid.host import Host
from ..mpi.swap import SwappableJob
from ..nws.service import NetworkWeatherService
from ..sim.kernel import Simulator
from ..sim.process import Interrupt, Process

__all__ = ["SwapDecision", "SwapRescheduler", "greedy_policy",
           "single_policy", "threshold_policy", "gang_policy",
           "SWAP_POLICIES"]


@dataclass(frozen=True)
class SwapDecision:
    """One proposed swap."""

    logical_rank: int
    old_host: str
    new_host: str
    old_speed: float
    new_speed: float
    #: simulated time the decision was made (0.0 for hand-built ones)
    time: float = 0.0


PolicyFn = Callable[[List[Tuple[int, str, float]], List[Tuple[str, float]]],
                    List[Tuple[int, str]]]


def greedy_policy(active: List[Tuple[int, str, float]],
                  inactive: List[Tuple[str, float]],
                  improvement: float = 1.05) -> List[Tuple[int, str]]:
    """Pair the slowest active machines with the fastest idle ones, for
    every pairing that improves effective speed by ``improvement``x."""
    swaps: List[Tuple[int, str]] = []
    pool = sorted(inactive, key=lambda x: -x[1])
    for rank, _host, speed in sorted(active, key=lambda x: x[2]):
        if not pool:
            break
        best_name, best_speed = pool[0]
        if best_speed >= speed * improvement:
            swaps.append((rank, best_name))
            pool.pop(0)
    return swaps


def single_policy(active: List[Tuple[int, str, float]],
                  inactive: List[Tuple[str, float]],
                  improvement: float = 1.05) -> List[Tuple[int, str]]:
    """Swap at most the one worst active machine per invocation."""
    swaps = greedy_policy(active, inactive, improvement)
    return swaps[:1]


def threshold_policy(active: List[Tuple[int, str, float]],
                     inactive: List[Tuple[str, float]],
                     improvement: float = 1.5) -> List[Tuple[int, str]]:
    """Greedy, but requiring a large (default 1.5x) speed advantage."""
    return greedy_policy(active, inactive, improvement)


def gang_policy(active: List[Tuple[int, str, float]],
                inactive: List[Tuple[str, float]],
                improvement: float = 1.05) -> List[Tuple[int, str]]:
    """Move the whole active set to one site when its slowest member
    would improve.

    Bulk-synchronous applications are gated by their slowest process
    *and* pay wide-area latency every iteration if their ranks span
    sites, so piecemeal swaps that split the gang across the WAN can
    lose even when each individual swap looks profitable.  This policy
    reproduces the paper's demonstration, where all three processes
    had moved to the UIUC cluster by t=150 s.
    """
    if not active or not inactive:
        return []
    gate = min(speed for _r, _n, speed in active)
    by_site: Dict[str, List[Tuple[str, float]]] = {}
    for name, speed in inactive:
        by_site.setdefault(name.split(".")[0], []).append((name, speed))
    best_site_hosts: List[Tuple[str, float]] = []
    threshold = gate * improvement
    best_gate = threshold
    for site in sorted(by_site):
        hosts = sorted(by_site[site], key=lambda x: -x[1])[:len(active)]
        if len(hosts) < len(active):
            continue
        site_gate = min(speed for _n, speed in hosts)
        if site_gate < threshold:
            continue
        # Strictly-better gate wins; equal gates keep the first site in
        # sorted order, so adding an unrelated site can never flip an
        # established destination.
        if not best_site_hosts or site_gate > best_gate:
            best_gate = site_gate
            best_site_hosts = hosts
    if not best_site_hosts:
        return []
    ranks = sorted(rank for rank, _n, _s in active)
    return [(rank, name)
            for rank, (name, _speed) in zip(ranks, best_site_hosts)]


SWAP_POLICIES: Dict[str, PolicyFn] = {
    "greedy": greedy_policy,
    "single": single_policy,
    "threshold": threshold_policy,
    "gang": gang_policy,
}


class SwapRescheduler:
    """Periodically inspects pool machines and requests profitable swaps.

    Swaps queue on the :class:`SwappableJob` and take effect at the
    application's next iteration boundary, as in the real architecture.
    """

    def __init__(self, sim: Simulator, job: SwappableJob,
                 nws: NetworkWeatherService,
                 policy: str = "greedy", period: float = 10.0,
                 improvement: float = 1.05) -> None:
        if policy not in SWAP_POLICIES:
            raise ValueError(f"unknown swap policy {policy!r}; "
                             f"have {sorted(SWAP_POLICIES)}")
        if period <= 0:
            raise ValueError("period must be positive")
        if improvement < 1.0:
            raise ValueError("improvement factor must be >= 1")
        self.sim = sim
        self.job = job
        self.nws = nws
        self.policy_name = policy
        self.policy = SWAP_POLICIES[policy]
        self.period = period
        self.improvement = improvement
        self.decisions: List[SwapDecision] = []
        self._stopped = False
        self._proc: Optional[Process] = None

    # -- speed model ---------------------------------------------------------
    def effective_speed(self, host: Host, is_active: bool = False) -> float:
        """Deliverable Mflop/s: peak rate times the share our process
        gets (or would get) on that host.

        NWS availability is the fraction a *new* task would receive, so
        on a host already running one of our ranks it counts our own
        process as competing load; naively comparing it against idle
        machines makes every active machine look half-busy and the
        policy thrash.  For active hosts we invert the measurement to
        the share our *existing* process receives.
        """
        share = self.nws.cpu_forecast(host.name)
        if is_active:
            share = self._existing_task_share(share, host.cores)
        return host.arch.mflops * share

    @staticmethod
    def _existing_task_share(new_task_share: float, cores: int) -> float:
        """Share of one core an existing task gets, given the measured
        share a new task would get (which counted the existing task)."""
        s = min(max(new_task_share, 0.0), 1.0)
        if s >= 1.0:
            return 1.0
        # s = cores / (n + 1) with our task among the n runnable ones.
        denominator = cores - s
        if denominator <= 0:
            return 1.0
        return min(1.0, s * cores / denominator)

    # -- one decision round -----------------------------------------------------
    def check_and_swap(self) -> List[SwapDecision]:
        """Evaluate the pool once and queue any swaps the policy wants."""
        if self.job.has_pending_swaps:
            return []  # let the queued swaps land before deciding again
        active = [(rank, host.name, self.effective_speed(host,
                                                         is_active=True))
                  for rank, host in enumerate(self.job.active_hosts())]
        inactive = [(host.name, self.effective_speed(host))
                    for host in self.job.inactive_hosts()]
        by_name = {h.name: h for h in self.job.pool_hosts()}
        proposals = self.policy(active, inactive, self.improvement)
        decisions = []
        speed_of = {name: s for name, s in inactive}
        active_speed = {rank: s for rank, _n, s in active}
        active_name = {rank: n for rank, n, _s in active}
        trace = self.sim.trace
        if trace is not None and "reschedule" not in trace.active:
            trace = None
        for rank, new_name in proposals:
            decision = SwapDecision(
                logical_rank=rank, old_host=active_name[rank],
                new_host=new_name, old_speed=active_speed[rank],
                new_speed=speed_of[new_name], time=self.sim.now)
            self.job.request_swap(rank, by_name[new_name])
            self.decisions.append(decision)
            decisions.append(decision)
            if trace is not None:
                trace.instant("reschedule", "swap-decision",
                              policy=self.policy_name, rank=rank,
                              old_host=decision.old_host,
                              new_host=decision.new_host,
                              old_speed=decision.old_speed,
                              new_speed=decision.new_speed)
        return decisions

    # -- daemon ----------------------------------------------------------------
    def start(self) -> None:
        """Run periodic checks until :meth:`stop` or the job finishes."""
        self._proc = self.sim.process(self._loop(), name="swap-rescheduler")

    def stop(self) -> None:
        """Stop immediately: the pending period timeout is cancelled,
        so no further decision can be made after this instant."""
        self._stopped = True
        proc, self._proc = self._proc, None
        if proc is not None and proc.is_alive:
            proc.interrupt("swap-rescheduler stopped")

    def _job_finished(self) -> bool:
        fin = self.job.job.finished
        if fin is None:
            return False
        if fin.triggered:
            return True
        # Same-instant window: every rank has finished but the AllOf
        # joining them has not been processed yet.  Deciding now would
        # queue swaps that no iteration boundary will ever apply.
        events = getattr(fin, "events", None)
        return (events is not None and bool(events)
                and all(ev.triggered for ev in events))

    def _loop(self):
        while not self._stopped:
            try:
                yield self.sim.timeout(self.period)
            except Interrupt:
                return
            if self._stopped or self._job_finished():
                return
            self.check_and_swap()
