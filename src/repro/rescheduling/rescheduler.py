"""The GrADS rescheduler (§4, §4.1.1).

"The rescheduling process must determine whether rescheduling is
profitable, based on the sensor data, estimates of the remaining work
in the application, and the cost of moving to new resources."

Two operating triggers, exactly as in the paper:

* **migration on request** — the contract monitor detects unacceptable
  performance loss and calls :meth:`Rescheduler.handle_request`;
* **opportunistic rescheduling** — a periodic daemon notices a GrADS
  application that recently completed and asks whether any running
  application would benefit from the freed resources.

The cost model reproduces the paper's pessimism knob: by default the
rescheduler assumes an experimentally determined *worst-case*
rescheduling cost (900 s in the Figure 3 runs) rather than the
application's own estimate, which is precisely what produces the wrong
"don't migrate" decision at matrix size 8000.

The rescheduler also supports the paper's *default* and *forced* modes:
forced mode makes it take the opposite of (or a fixed) decision so
experiments can measure both sides of every case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..contracts.monitor import MigrationRequest
from ..gis.directory import GridInformationService
from ..nws.service import NetworkWeatherService
from ..sim.events import Event
from ..sim.kernel import Simulator

__all__ = ["MigratableApp", "MigrationEvaluation", "Rescheduler",
           "DecisionRecord"]


class MigratableApp:
    """What the rescheduler needs from an application under management."""

    name: str = "app"

    def current_hosts(self) -> List[str]:
        """Hosts the application currently occupies."""
        raise NotImplementedError

    def propose_hosts(self, exclude: Sequence[str] = ()) -> List[str]:
        """A candidate new resource set (via the COP's mapper)."""
        raise NotImplementedError

    def predicted_remaining_seconds(self, host_names: Sequence[str]) -> float:
        """Model estimate of remaining execution time on those hosts,
        at their *current* NWS-forecast availability."""
        raise NotImplementedError

    def migration_cost_estimate(self, new_hosts: Sequence[str]) -> float:
        """The application's own estimate of stop+move+restart seconds."""
        raise NotImplementedError

    def migrate(self, new_hosts: Sequence[str]) -> Event:
        """Initiate the actual migration; event triggers when the app
        is running again on the new resources."""
        raise NotImplementedError

    @property
    def finished(self) -> Optional[Event]:
        """Completion event, if the app has been launched."""
        return None


@dataclass(frozen=True)
class MigrationEvaluation:
    """The rescheduler's cost/benefit analysis for one decision."""

    time: float
    current_hosts: tuple
    new_hosts: tuple
    remaining_current: float
    remaining_new: float
    migration_cost: float
    app_cost_estimate: float

    @property
    def benefit(self) -> float:
        """Seconds saved by migrating (negative: migration loses)."""
        return self.remaining_current - (self.remaining_new
                                         + self.migration_cost)

    @property
    def profitable(self) -> bool:
        return self.benefit > 0


@dataclass(frozen=True)
class DecisionRecord:
    """One rescheduling decision, for experiment traces."""

    time: float
    app: str
    trigger: str  # "request" or "opportunistic"
    evaluation: MigrationEvaluation
    migrated: bool


class Rescheduler:
    """Cost/benefit migration decisions over managed applications."""

    def __init__(self, sim: Simulator, gis: GridInformationService,
                 nws: NetworkWeatherService,
                 mode: str = "default",
                 worst_case_migration_seconds: Optional[float] = 900.0,
                 min_benefit_seconds: float = 0.0) -> None:
        """``mode``: "default" (cost/benefit), "force-migrate",
        "force-stay".  ``worst_case_migration_seconds`` replaces the
        application's own migration estimate when not None — the
        paper's pessimistic assumption."""
        if mode not in ("default", "force-migrate", "force-stay"):
            raise ValueError(f"unknown mode {mode!r}")
        self.sim = sim
        self.gis = gis
        self.nws = nws
        self.mode = mode
        self.worst_case_migration_seconds = worst_case_migration_seconds
        self.min_benefit_seconds = min_benefit_seconds
        self.decisions: List[DecisionRecord] = []
        self._apps: List[MigratableApp] = []
        self._migrating: set = set()

    # -- registry --------------------------------------------------------------
    def manage(self, app: MigratableApp) -> None:
        self._apps.append(app)

    def managed_apps(self) -> List[MigratableApp]:
        return list(self._apps)

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, app: MigratableApp,
                 candidate_hosts: Optional[Sequence[str]] = None
                 ) -> Optional[MigrationEvaluation]:
        """Cost/benefit of moving ``app`` now; None if no candidate set
        exists (mapper found nothing)."""
        current = list(app.current_hosts())
        try:
            new_hosts = list(candidate_hosts) if candidate_hosts is not None \
                else app.propose_hosts(exclude=current)
        except Exception:
            return None
        if not new_hosts or set(new_hosts) == set(current):
            return None
        remaining_current = app.predicted_remaining_seconds(current)
        remaining_new = app.predicted_remaining_seconds(new_hosts)
        app_cost = app.migration_cost_estimate(new_hosts)
        cost = (self.worst_case_migration_seconds
                if self.worst_case_migration_seconds is not None
                else app_cost)
        return MigrationEvaluation(
            time=self.sim.now,
            current_hosts=tuple(current), new_hosts=tuple(new_hosts),
            remaining_current=remaining_current,
            remaining_new=remaining_new,
            migration_cost=cost, app_cost_estimate=app_cost)

    def _decide(self, evaluation: MigrationEvaluation) -> bool:
        if self.mode == "force-migrate":
            return True
        if self.mode == "force-stay":
            return False
        return evaluation.benefit > self.min_benefit_seconds

    def _record_decision(self, record: DecisionRecord) -> None:
        self.decisions.append(record)
        trace = self.sim.trace
        if trace is not None and "reschedule" in trace.active:
            trace.instant("reschedule", "decision", app=record.app,
                          trigger=record.trigger, migrated=record.migrated,
                          benefit=record.evaluation.benefit,
                          migration_cost=record.evaluation.migration_cost,
                          new_hosts=",".join(record.evaluation.new_hosts))

    # -- migration on request (contract monitor callback) ------------------------
    def request_handler(self, app: MigratableApp
                        ) -> Callable[[MigrationRequest], bool]:
        """A callback suitable for :class:`ContractMonitor`."""
        def handle(request: MigrationRequest) -> bool:
            return self.handle_request(app, request)
        return handle

    def handle_request(self, app: MigratableApp,
                       request: Optional[MigrationRequest] = None) -> bool:
        """Contract-violation path; returns True if a migration started."""
        if app.name in self._migrating:
            return True  # already being moved; tell the monitor to stand by
        evaluation = self.evaluate(app)
        if evaluation is None:
            return False
        migrate = self._decide(evaluation)
        self._record_decision(DecisionRecord(
            time=self.sim.now, app=app.name, trigger="request",
            evaluation=evaluation, migrated=migrate))
        if migrate:
            self._start_migration(app, list(evaluation.new_hosts))
        return migrate

    # -- opportunistic rescheduling ------------------------------------------------
    def start_opportunistic(self, period: float = 60.0) -> None:
        """Launch the periodic daemon that migrates running apps onto
        resources freed by recently completed ones."""
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim.process(self._opportunistic_loop(period),
                         name="rescheduler:opportunistic")

    def _opportunistic_loop(self, period: float):
        seen_finished: set = set()
        while True:
            yield self.sim.timeout(period)
            newly_finished = [
                app for app in self._apps
                if app.finished is not None and app.finished.triggered
                and app.name not in seen_finished]
            if not newly_finished:
                continue
            seen_finished.update(app.name for app in newly_finished)
            for app in self._apps:
                if app.finished is not None and app.finished.triggered:
                    continue
                if app.name in self._migrating:
                    continue
                evaluation = self.evaluate(app)
                if evaluation is None:
                    continue
                migrate = self._decide(evaluation)
                self._record_decision(DecisionRecord(
                    time=self.sim.now, app=app.name,
                    trigger="opportunistic", evaluation=evaluation,
                    migrated=migrate))
                if migrate:
                    self._start_migration(app, list(evaluation.new_hosts))

    # -- execution ---------------------------------------------------------------
    def _start_migration(self, app: MigratableApp,
                         new_hosts: List[str]) -> None:
        self._migrating.add(app.name)
        event = app.migrate(new_hosts)
        event.add_callback(lambda _e: self._migrating.discard(app.name))
