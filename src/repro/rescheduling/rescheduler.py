"""The GrADS rescheduler (§4, §4.1.1).

"The rescheduling process must determine whether rescheduling is
profitable, based on the sensor data, estimates of the remaining work
in the application, and the cost of moving to new resources."

Two operating triggers, exactly as in the paper:

* **migration on request** — the contract monitor detects unacceptable
  performance loss and calls :meth:`Rescheduler.handle_request`;
* **opportunistic rescheduling** — a periodic daemon notices a GrADS
  application that recently completed and asks whether any running
  application would benefit from the freed resources.

The cost model reproduces the paper's pessimism knob: by default the
rescheduler assumes an experimentally determined *worst-case*
rescheduling cost (900 s in the Figure 3 runs) rather than the
application's own estimate, which is precisely what produces the wrong
"don't migrate" decision at matrix size 8000.

The rescheduler also supports the paper's *default* and *forced* modes:
forced mode makes it take the opposite of (or a fixed) decision so
experiments can measure both sides of every case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..contracts.monitor import MigrationRequest
from ..gis.directory import GridInformationService
from ..nws.service import NetworkWeatherService
from ..sim.events import Event
from ..sim.kernel import Simulator

__all__ = ["MigratableApp", "MigrationEvaluation", "Rescheduler",
           "DecisionRecord"]


class MigratableApp:
    """What the rescheduler needs from an application under management."""

    name: str = "app"

    def current_hosts(self) -> List[str]:
        """Hosts the application currently occupies."""
        raise NotImplementedError

    def propose_hosts(self, exclude: Sequence[str] = ()) -> List[str]:
        """A candidate new resource set (via the COP's mapper)."""
        raise NotImplementedError

    def predicted_remaining_seconds(self, host_names: Sequence[str]) -> float:
        """Model estimate of remaining execution time on those hosts,
        at their *current* NWS-forecast availability."""
        raise NotImplementedError

    def migration_cost_estimate(self, new_hosts: Sequence[str]) -> float:
        """The application's own estimate of stop+move+restart seconds."""
        raise NotImplementedError

    def migrate(self, new_hosts: Sequence[str]) -> Event:
        """Initiate the actual migration; event triggers when the app
        is running again on the new resources."""
        raise NotImplementedError

    @property
    def finished(self) -> Optional[Event]:
        """Completion event, if the app has been launched."""
        return None


@dataclass(frozen=True)
class MigrationEvaluation:
    """The rescheduler's cost/benefit analysis for one decision."""

    time: float
    current_hosts: tuple
    new_hosts: tuple
    remaining_current: float
    remaining_new: float
    migration_cost: float
    app_cost_estimate: float

    @property
    def benefit(self) -> float:
        """Seconds saved by migrating (negative: migration loses)."""
        return self.remaining_current - (self.remaining_new
                                         + self.migration_cost)

    @property
    def profitable(self) -> bool:
        return self.benefit > 0


@dataclass(frozen=True)
class DecisionRecord:
    """One rescheduling decision, for experiment traces.

    ``trigger`` is ``"request"`` or ``"opportunistic"`` for ordinary
    cost/benefit decisions; failure paths append records with
    ``"migration-failed"`` (``app.migrate()`` raised or the migration
    event failed) or ``"migration-timeout"`` (the migration event never
    triggered within the configured timeout), always with
    ``migrated=False``.
    """

    time: float
    app: str
    trigger: str
    evaluation: MigrationEvaluation
    migrated: bool


@dataclass
class _Inflight:
    """Book-keeping for one migration attempt in progress."""

    token: int
    new_hosts: tuple
    evaluation: MigrationEvaluation
    trigger: str


class Rescheduler:
    """Cost/benefit migration decisions over managed applications."""

    def __init__(self, sim: Simulator, gis: GridInformationService,
                 nws: NetworkWeatherService,
                 mode: str = "default",
                 worst_case_migration_seconds: Optional[float] = 900.0,
                 min_benefit_seconds: float = 0.0,
                 migration_timeout_seconds: Optional[float] = None,
                 blacklist_seconds: Optional[float] = None,
                 reservations=None) -> None:
        """``mode``: "default" (cost/benefit), "force-migrate",
        "force-stay".  ``worst_case_migration_seconds`` replaces the
        application's own migration estimate when not None — the
        paper's pessimistic assumption.

        ``migration_timeout_seconds`` bounds how long a started
        migration may stay in flight: if the app's migration event has
        not triggered by then (e.g. the event was lost to a host
        crash), the rescheduler *abandons* the attempt — the app is
        removed from the in-flight set so future rescheduling is not
        wedged — and *blacklists* the target hosts.  ``None`` (default)
        disables the timeout.  Blacklisted hosts are excluded from
        candidate sets for ``blacklist_seconds`` (``None`` = forever).

        ``reservations`` is an optional
        :class:`~repro.metasched.reservations.ReservationBook` (any
        object with ``unavailable_hosts(start)``): hosts another job
        has reserved or claimed from "now" onward are excluded from
        migration candidate sets, so a migration can never land on
        capacity the metascheduler has already promised away.
        """
        if mode not in ("default", "force-migrate", "force-stay"):
            raise ValueError(f"unknown mode {mode!r}")
        if migration_timeout_seconds is not None \
                and migration_timeout_seconds <= 0:
            raise ValueError("migration_timeout_seconds must be positive")
        if blacklist_seconds is not None and blacklist_seconds <= 0:
            raise ValueError("blacklist_seconds must be positive")
        self.sim = sim
        self.gis = gis
        self.nws = nws
        self.mode = mode
        self.worst_case_migration_seconds = worst_case_migration_seconds
        self.min_benefit_seconds = min_benefit_seconds
        self.migration_timeout_seconds = migration_timeout_seconds
        self.blacklist_seconds = blacklist_seconds
        self.reservations = reservations
        self.decisions: List[DecisionRecord] = []
        #: migration attempts abandoned on failure or timeout
        self.aborted_migrations = 0
        self._apps: List[MigratableApp] = []
        self._migrating: set = set()
        self._inflight: Dict[str, _Inflight] = {}
        self._migration_seq = 0
        self._blacklist: Dict[str, float] = {}  # host -> expiry sim-time

    # -- registry --------------------------------------------------------------
    def manage(self, app: MigratableApp) -> None:
        self._apps.append(app)

    def managed_apps(self) -> List[MigratableApp]:
        return list(self._apps)

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, app: MigratableApp,
                 candidate_hosts: Optional[Sequence[str]] = None
                 ) -> Optional[MigrationEvaluation]:
        """Cost/benefit of moving ``app`` now; None if no candidate set
        exists (mapper found nothing)."""
        current = list(app.current_hosts())
        exclude = current + self.blacklisted_hosts()
        if self.reservations is not None:
            reserved = self.reservations.unavailable_hosts(self.sim.now)
            exclude.extend(h for h in reserved if h not in current)
        try:
            new_hosts = list(candidate_hosts) if candidate_hosts is not None \
                else app.propose_hosts(exclude=exclude)
        except Exception:
            return None
        if not new_hosts or set(new_hosts) == set(current):
            return None
        remaining_current = app.predicted_remaining_seconds(current)
        remaining_new = app.predicted_remaining_seconds(new_hosts)
        app_cost = app.migration_cost_estimate(new_hosts)
        cost = (self.worst_case_migration_seconds
                if self.worst_case_migration_seconds is not None
                else app_cost)
        return MigrationEvaluation(
            time=self.sim.now,
            current_hosts=tuple(current), new_hosts=tuple(new_hosts),
            remaining_current=remaining_current,
            remaining_new=remaining_new,
            migration_cost=cost, app_cost_estimate=app_cost)

    def _decide(self, evaluation: MigrationEvaluation) -> bool:
        if self.mode == "force-migrate":
            return True
        if self.mode == "force-stay":
            return False
        return evaluation.benefit > self.min_benefit_seconds

    def _record_decision(self, record: DecisionRecord) -> None:
        self.decisions.append(record)
        trace = self.sim.trace
        if trace is not None and "reschedule" in trace.active:
            trace.instant("reschedule", "decision", app=record.app,
                          trigger=record.trigger, migrated=record.migrated,
                          benefit=record.evaluation.benefit,
                          migration_cost=record.evaluation.migration_cost,
                          new_hosts=",".join(record.evaluation.new_hosts))

    # -- migration on request (contract monitor callback) ------------------------
    def request_handler(self, app: MigratableApp
                        ) -> Callable[[MigrationRequest], bool]:
        """A callback suitable for :class:`ContractMonitor`."""
        def handle(request: MigrationRequest) -> bool:
            return self.handle_request(app, request)
        return handle

    def handle_request(self, app: MigratableApp,
                       request: Optional[MigrationRequest] = None) -> bool:
        """Contract-violation path; returns True if a migration started."""
        if app.name in self._migrating:
            return True  # already being moved; tell the monitor to stand by
        evaluation = self.evaluate(app)
        if evaluation is None:
            return False
        migrate = self._decide(evaluation)
        self._record_decision(DecisionRecord(
            time=self.sim.now, app=app.name, trigger="request",
            evaluation=evaluation, migrated=migrate))
        if migrate:
            return self._start_migration(app, list(evaluation.new_hosts),
                                         evaluation, "request")
        return False

    # -- opportunistic rescheduling ------------------------------------------------
    def start_opportunistic(self, period: float = 60.0) -> None:
        """Launch the periodic daemon that migrates running apps onto
        resources freed by recently completed ones."""
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim.process(self._opportunistic_loop(period),
                         name="rescheduler:opportunistic")

    def _opportunistic_loop(self, period: float):
        seen_finished: set = set()
        while True:
            yield self.sim.timeout(period)
            newly_finished = [
                app for app in self._apps
                if app.finished is not None and app.finished.triggered
                and app.name not in seen_finished]
            if not newly_finished:
                continue
            seen_finished.update(app.name for app in newly_finished)
            for app in self._apps:
                if app.finished is not None and app.finished.triggered:
                    continue
                if app.name in self._migrating:
                    continue
                evaluation = self.evaluate(app)
                if evaluation is None:
                    continue
                migrate = self._decide(evaluation)
                self._record_decision(DecisionRecord(
                    time=self.sim.now, app=app.name,
                    trigger="opportunistic", evaluation=evaluation,
                    migrated=migrate))
                if migrate:
                    self._start_migration(app, list(evaluation.new_hosts),
                                          evaluation, "opportunistic")

    # -- blacklist ---------------------------------------------------------------
    def blacklisted_hosts(self) -> List[str]:
        """Hosts currently excluded from candidate sets (sorted)."""
        now = self.sim.now
        expired = [h for h, until in self._blacklist.items() if until <= now]
        for host in expired:
            del self._blacklist[host]
        return sorted(self._blacklist)

    def _blacklist_hosts(self, hosts: Sequence[str], reason: str) -> None:
        until = (math.inf if self.blacklist_seconds is None
                 else self.sim.now + self.blacklist_seconds)
        for host in hosts:
            self._blacklist[host] = max(self._blacklist.get(host, 0.0), until)
        self._fault_instant("blacklist", hosts=",".join(sorted(hosts)),
                            reason=reason)

    def _fault_instant(self, name: str, **args) -> None:
        trace = self.sim.trace
        if trace is not None and "fault" in trace.active:
            trace.instant("fault", name, **args)

    # -- execution ---------------------------------------------------------------
    def _start_migration(self, app: MigratableApp, new_hosts: List[str],
                         evaluation: MigrationEvaluation,
                         trigger: str) -> bool:
        """Kick off ``app.migrate``; returns True if it actually started.

        Every exit path — synchronous exception, failed migration
        event, lost event past the timeout — removes ``app.name`` from
        the in-flight set, so one broken migration can never disable
        rescheduling for that app forever.
        """
        self._migration_seq += 1
        token = self._migration_seq
        self._migrating.add(app.name)
        self._inflight[app.name] = _Inflight(
            token=token, new_hosts=tuple(new_hosts),
            evaluation=evaluation, trigger=trigger)
        try:
            event = app.migrate(new_hosts)
        except Exception as exc:
            self._abandon(app.name, token, "migration-failed",
                          error=f"{type(exc).__name__}: {exc}")
            return False
        event.add_callback(
            lambda e, a=app.name, t=token: self._on_migration_event(a, t, e))
        if self.migration_timeout_seconds is not None:
            self.sim.call_after(
                self.migration_timeout_seconds,
                lambda a=app.name, t=token: self._on_migration_timeout(a, t))
        return True

    def _on_migration_event(self, app_name: str, token: int,
                            event: Event) -> None:
        inflight = self._inflight.get(app_name)
        if inflight is None or inflight.token != token:
            # A timeout already abandoned this attempt (or a newer one
            # superseded it); still defuse a failure so it cannot crash
            # the kernel with nobody waiting.
            if event.triggered and not event.ok:
                event.defused = True
            return
        if event.ok:
            del self._inflight[app_name]
            self._migrating.discard(app_name)
            return
        event.defused = True
        self._abandon(app_name, token, "migration-failed",
                      error=f"{type(event.value).__name__}: {event.value}")

    def _on_migration_timeout(self, app_name: str, token: int) -> None:
        inflight = self._inflight.get(app_name)
        if inflight is None or inflight.token != token:
            return  # completed (or already abandoned) in time
        self._abandon(app_name, token, "migration-timeout",
                      timeout=self.migration_timeout_seconds)

    def _abandon(self, app_name: str, token: int, reason: str,
                 **trace_args) -> None:
        inflight = self._inflight.pop(app_name)
        assert inflight.token == token
        self._migrating.discard(app_name)
        self.aborted_migrations += 1
        self._blacklist_hosts(inflight.new_hosts, reason)
        self._fault_instant(reason, app=app_name, **trace_args)
        self._record_decision(DecisionRecord(
            time=self.sim.now, app=app_name, trigger=reason,
            evaluation=inflight.evaluation, migrated=False))
