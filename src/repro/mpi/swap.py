"""MPI process swapping (§4.2, after Sievert & Casanova).

"The MPI application is launched with more machines than will actually
be used for the computation; some of these machines become part of the
computation (the active set) while some do nothing initially (the
inactive set).  The user's application sees only the active processes
in the main communicator; communication calls are hijacked ...  the
contract monitor periodically checks the performance of the machines
and swaps slower machines in the active set with faster machines in the
inactive set."

:class:`SwappableJob` reproduces that contract: the application is
written against *logical* ranks ``0..active_n-1``; each logical rank is
backed by one machine from the over-provisioned pool, and a swap rebinds
a logical rank to a different pool machine, paying the cost of moving
that rank's working state.  Swaps requested mid-iteration take effect at
the next iteration boundary (``sync_point``), which is when the real
implementation's hijacked communication layer applies them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..microgrid.host import Host
from ..sim.events import Event
from ..sim.kernel import Simulator
from .comm import MpiContext, MpiError, MpiJob

__all__ = ["SwappableJob", "SwapRecord"]


@dataclass(frozen=True)
class SwapRecord:
    """One executed swap, for experiment traces."""

    time: float
    logical_rank: int
    old_host: str
    new_host: str
    state_bytes: float
    seconds: float


class SwappableJob:
    """An MPI job launched on ``len(pool)`` machines, computing on the
    first ``active_n`` of them."""

    def __init__(self, sim: Simulator, topology, pool: List[Host],
                 active_n: int, state_bytes_per_rank: float = 0.0,
                 name: str = "swapjob") -> None:
        if active_n < 1 or active_n > len(pool):
            raise MpiError(
                f"active set size {active_n} not in 1..{len(pool)}")
        self.sim = sim
        self.active_n = active_n
        self.state_bytes_per_rank = float(state_bytes_per_rank)
        # The underlying job has one rank per *logical* process; its
        # rank->host mapping is exactly the active-set binding.
        self.job = MpiJob(sim, topology, pool[:active_n], name=name)
        self._pool: List[Host] = list(pool)
        self._active: List[Host] = pool[:active_n]
        self._inactive: List[Host] = pool[active_n:]
        self._pending_swaps: List[Tuple[int, Host]] = []
        self.swap_log: List[SwapRecord] = []

    # -- set inspection ----------------------------------------------------------
    def active_hosts(self) -> List[Host]:
        return list(self._active)

    def inactive_hosts(self) -> List[Host]:
        return list(self._inactive)

    def pool_hosts(self) -> List[Host]:
        return list(self._pool)

    def logical_rank_of(self, host: Host) -> Optional[int]:
        try:
            return self._active.index(host)
        except ValueError:
            return None

    # -- swap requests ----------------------------------------------------------
    def request_swap(self, logical_rank: int, new_host: Host) -> None:
        """Queue a swap; it is applied at the next iteration boundary."""
        if not 0 <= logical_rank < self.active_n:
            raise MpiError(f"logical rank {logical_rank} is not active")
        if new_host not in self._inactive:
            raise MpiError(f"{new_host.name} is not in the inactive set")
        if any(h is new_host for _r, h in self._pending_swaps):
            raise MpiError(f"{new_host.name} already claimed by a pending swap")
        self._pending_swaps.append((logical_rank, new_host))

    @property
    def has_pending_swaps(self) -> bool:
        return bool(self._pending_swaps)

    def sync_point(self, ctx: MpiContext):
        """Generator each rank runs at iteration boundaries.

        All ranks barrier; then rank 0's arrival applies the pending
        swaps (moving state over the network); then everyone barriers
        again so no rank races ahead of a rebinding.  With no pending
        swaps, this is just two cheap barriers.
        """
        yield from ctx.comm.barrier(ctx.rank)
        if ctx.rank == 0 and self._pending_swaps:
            swaps, self._pending_swaps = self._pending_swaps, []
            for logical_rank, new_host in swaps:
                yield from self._apply_swap(logical_rank, new_host)
        yield from ctx.comm.barrier(ctx.rank)

    def _apply_swap(self, logical_rank: int, new_host: Host):
        old_host = self._active[logical_rank]
        if new_host not in self._inactive:
            return  # claimed meanwhile; drop silently (idempotence)
        started = self.sim.now
        if self.state_bytes_per_rank > 0:
            yield self.job.topology.transfer(
                old_host.name, new_host.name, self.state_bytes_per_rank,
                tag=f"swap:r{logical_rank}")
        self._inactive.remove(new_host)
        self._inactive.append(old_host)
        self._active[logical_rank] = new_host
        self.job.set_rank_host(logical_rank, new_host)
        self.swap_log.append(SwapRecord(
            time=self.sim.now, logical_rank=logical_rank,
            old_host=old_host.name, new_host=new_host.name,
            state_bytes=self.state_bytes_per_rank,
            seconds=self.sim.now - started))
        trace = self.sim.trace
        if trace is not None and "reschedule" in trace.active:
            trace.complete("reschedule", "swap", ts=started,
                           dur=self.sim.now - started, rank=logical_rank,
                           old_host=old_host.name, new_host=new_host.name,
                           bytes=self.state_bytes_per_rank)

    # -- launch -------------------------------------------------------------------
    def launch(self, body: Callable[[MpiContext], object]) -> Event:
        """Launch the application on the active set."""
        done = self.job.launch(body)
        # Swaps requested during the application's final iteration (a
        # rescheduler period can land between the last sync point and
        # completion) have no boundary left to apply them; discard them
        # when the job ends instead of leaking the queue forever.
        done.add_callback(self._on_job_end)
        return done

    def _on_job_end(self, _event: Event) -> None:
        self._pending_swaps = []
