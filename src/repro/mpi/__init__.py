"""Simulated MPI runtime with profiling and process swapping."""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    Message,
    MpiContext,
    MpiError,
    MpiJob,
)
from .profiling import RankCounters
from .swap import SwapRecord, SwappableJob

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Message",
    "MpiContext",
    "MpiError",
    "MpiJob",
    "RankCounters",
    "SwapRecord",
    "SwappableJob",
]
