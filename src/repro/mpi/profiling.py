"""PAPI-style per-rank performance counters.

"Using simple computation and communication performance metrics,
captured via PAPI and the MPI profiling interface with automatically-
inserted sensors, allows the detection of performance variations" (§5).
The binder inserts Autopilot sensors that read these counters; the
contract monitor compares their deltas against model predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["RankCounters"]


@dataclass
class RankCounters:
    """Counters one simulated rank accumulates as it runs."""

    mflop: float = 0.0
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    comm_seconds: float = 0.0
    iterations: int = 0

    def snapshot(self) -> Dict[str, float]:
        """A copy suitable for delta computation by sensors."""
        return {
            "mflop": self.mflop,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages_sent": float(self.messages_sent),
            "messages_received": float(self.messages_received),
            "comm_seconds": self.comm_seconds,
            "iterations": float(self.iterations),
        }

    def delta_since(self, previous: Dict[str, float]) -> Dict[str, float]:
        """Counter increments since a prior :meth:`snapshot`."""
        current = self.snapshot()
        return {key: current[key] - previous.get(key, 0.0) for key in current}
