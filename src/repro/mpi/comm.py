"""Simulated MPI: jobs, ranks, point-to-point messaging.

GrADS applications are MPI programs; their communication costs shape
every scheduling and rescheduling decision in the paper.  This module
runs MPI-style rank bodies as simulation processes.  Messages travel
through the real topology (so they contend for links like everything
else), and each rank keeps PAPI-style counters that the Autopilot
sensors read (§5: "captured via PAPI and the MPI profiling interface
with automatically-inserted sensors").

A rank body is a generator function ``body(ctx)`` receiving an
:class:`MpiContext`; it yields events, e.g.::

    def body(ctx):
        yield ctx.compute(250.0)                  # 250 Mflop locally
        yield ctx.send(dst=1, nbytes=8e6)         # point-to-point
        msg = yield ctx.recv(src=1)
        yield from ctx.comm.barrier(ctx.rank)     # collective

Rank-to-host mapping is looked up *per call*, which is the hook the
process-swapping reschedul er uses (:mod:`repro.mpi.swap`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..microgrid.host import Host, HostFailure
from ..microgrid.network import Topology
from ..sim.events import AllOf, Event
from ..sim.kernel import Simulator
from .profiling import RankCounters

__all__ = ["Message", "MpiError", "MpiJob", "Communicator", "MpiContext",
           "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class MpiError(RuntimeError):
    """Raised for misuse of the simulated MPI layer."""


@dataclass(frozen=True)
class Message:
    """A delivered point-to-point message."""

    src: int
    dst: int
    tag: int
    nbytes: float
    payload: Any = None


@dataclass
class _PendingRecv:
    src: int
    tag: int
    event: Event


class MpiJob:
    """One parallel program instance: a set of ranks mapped onto hosts."""

    def __init__(self, sim: Simulator, topology: Topology,
                 hosts: List[Host], name: str = "mpijob") -> None:
        if not hosts:
            raise MpiError("an MPI job needs at least one host")
        self.sim = sim
        self.topology = topology
        self.name = name
        self._rank_hosts: List[Host] = list(hosts)
        self.world = Communicator(self)
        self.counters: List[RankCounters] = [RankCounters()
                                             for _ in hosts]
        self._iteration_listeners: List[Callable[[int, int, float], None]] = []
        self._procs: List = []
        self._watched_hosts: List[Host] = []
        self.finished: Optional[Event] = None

    @property
    def size(self) -> int:
        return len(self._rank_hosts)

    def rank_host(self, rank: int) -> Host:
        self._check_rank(rank)
        return self._rank_hosts[rank]

    def set_rank_host(self, rank: int, host: Host) -> None:
        """Re-map a rank to a different host (used by process swapping)."""
        self._check_rank(rank)
        self._rank_hosts[rank] = host
        if self._procs:
            self._watch_host(host)

    def hosts(self) -> List[Host]:
        return list(self._rank_hosts)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < len(self._rank_hosts):
            raise MpiError(f"rank {rank} out of range for job of size "
                           f"{len(self._rank_hosts)}")

    # -- launch -------------------------------------------------------------
    def launch(self, body: Callable[["MpiContext"], Any]) -> Event:
        """Start ``body(ctx)`` on every rank; the returned event triggers
        when all ranks have finished (like mpirun's exit)."""
        if self.finished is not None:
            raise MpiError("job already launched")
        for rank in range(self.size):
            ctx = MpiContext(self, rank)
            proc = self.sim.process(body(ctx), name=f"{self.name}:r{rank}")
            self._procs.append(proc)
        for host in self._rank_hosts:
            self._watch_host(host)
        self.finished = AllOf(self.sim, self._procs,
                              name=f"{self.name}:finished")
        return self.finished

    def _watch_host(self, host: Host) -> None:
        """Arrange for this host's crashes to kill the ranks on it.

        A failing compute task already reaches its rank, but a rank
        blocked on a transfer, a recv, or a collective has nothing on
        the host's CPU — without the watch it would sail through its
        own machine's death (e.g. keep checkpointing off a dead node).
        """
        if any(h is host for h in self._watched_hosts):
            return
        self._watched_hosts.append(host)
        host.on_fail(self._on_host_fail)

    def _on_host_fail(self, host: Host) -> None:
        for rank, rank_host in enumerate(self._rank_hosts):
            if rank_host is host and rank < len(self._procs):
                proc = self._procs[rank]
                if proc.is_alive:
                    proc.throw(HostFailure(host.name))

    # -- instrumentation -------------------------------------------------------
    def on_iteration(self, listener: Callable[[int, int, float], None]) -> None:
        """Register ``listener(rank, iteration, seconds)`` — the hook the
        Autopilot sensors attach to."""
        self._iteration_listeners.append(listener)

    def report_iteration(self, rank: int, iteration: int,
                         seconds: float) -> None:
        self.counters[rank].iterations += 1
        for listener in self._iteration_listeners:
            listener(rank, iteration, seconds)


class Communicator:
    """Point-to-point mailboxes plus SPMD collectives for one job."""

    def __init__(self, job: MpiJob) -> None:
        self.job = job
        self._mailboxes: Dict[int, List[Message]] = {}
        self._waiting: Dict[int, List[_PendingRecv]] = {}
        # per-rank collective sequence numbers; SPMD programs call
        # collectives in the same order on every rank, which makes the
        # derived tags match up.
        self._coll_seq: List[int] = [0] * job.size

    @property
    def size(self) -> int:
        return self.job.size

    # -- point to point -------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: float, tag: int = 0,
             payload: Any = None) -> Event:
        """Send; the event triggers when the message is delivered."""
        self.job._check_rank(src)
        self.job._check_rank(dst)
        if nbytes < 0:
            raise MpiError("negative message size")
        if tag < 0:
            raise MpiError("tags must be non-negative (negatives are wildcards)")
        sim = self.job.sim
        src_host = self.job.rank_host(src)
        dst_host = self.job.rank_host(dst)
        message = Message(src=src, dst=dst, tag=tag, nbytes=nbytes,
                          payload=payload)
        self.job.counters[src].bytes_sent += nbytes
        self.job.counters[src].messages_sent += 1
        start = sim.now
        transfer = self.job.topology.transfer(
            src_host.name, dst_host.name, nbytes,
            tag=f"{self.job.name}:{src}->{dst}")
        done = sim.event(name=f"{self.job.name}:send:{src}->{dst}")

        def deliver(_ev: Event) -> None:
            self.job.counters[src].comm_seconds += sim.now - start
            self._deposit(message)
            done.succeed(message)

        transfer.add_callback(deliver)
        return done

    def recv(self, rank: int, src: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Event:
        """Receive; the event's value is the matching :class:`Message`."""
        self.job._check_rank(rank)
        sim = self.job.sim
        queue = self._mailboxes.setdefault(rank, [])
        for i, message in enumerate(queue):
            if self._matches(message, src, tag):
                queue.pop(i)
                ev = sim.event(name=f"{self.job.name}:recv:{rank}")
                self._account_recv(rank, message)
                ev.succeed(message)
                return ev
        ev = sim.event(name=f"{self.job.name}:recv:{rank}")
        pending = _PendingRecv(src=src, tag=tag, event=ev)
        self._waiting.setdefault(rank, []).append(pending)
        # account on delivery
        ev.add_callback(lambda e: self._account_recv(rank, e.value))
        return ev

    def _account_recv(self, rank: int, message: Message) -> None:
        self.job.counters[rank].bytes_received += message.nbytes
        self.job.counters[rank].messages_received += 1

    @staticmethod
    def _matches(message: Message, src: int, tag: int) -> bool:
        return ((src == ANY_SOURCE or message.src == src)
                and (tag == ANY_TAG or message.tag == tag))

    def _deposit(self, message: Message) -> None:
        waiters = self._waiting.get(message.dst, [])
        for i, pending in enumerate(waiters):
            if self._matches(message, pending.src, pending.tag):
                waiters.pop(i)
                pending.event.succeed(message)
                return
        self._mailboxes.setdefault(message.dst, []).append(message)

    # -- collectives (SPMD: every rank must call, in the same order) -----------
    def _next_tag(self, rank: int, kind: int) -> int:
        seq = self._coll_seq[rank]
        self._coll_seq[rank] += 1
        # fold the collective kind and sequence into a reserved tag space
        return 1_000_000 + seq * 8 + kind

    def barrier(self, rank: int):
        """Generator collective: central-counter barrier via rank 0."""
        tag = self._next_tag(rank, 0)
        if rank == 0:
            for _ in range(self.size - 1):
                yield self.recv(0, tag=tag)
            for other in range(1, self.size):
                yield self.send(0, other, nbytes=1.0, tag=tag + 1)
        else:
            yield self.send(rank, 0, nbytes=1.0, tag=tag)
            yield self.recv(rank, src=0, tag=tag + 1)

    def bcast(self, rank: int, root: int, nbytes: float, payload: Any = None):
        """Binomial-tree broadcast (the MPICH algorithm); returns the
        payload on every rank."""
        self.job._check_rank(root)
        tag = self._next_tag(rank, 1)
        size = self.size
        rel = (rank - root) % size  # rank relative to the root
        value = payload
        # Receive from the parent (clear my lowest set bit), unless root.
        mask = 1
        while mask < size:
            if rel & mask:
                parent = (rel - mask + root) % size
                msg = yield self.recv(rank, src=parent, tag=tag)
                value = msg.payload
                break
            mask <<= 1
        # Forward to children below my lowest set bit.
        mask >>= 1
        while mask > 0:
            if rel + mask < size:
                child = (rel + mask + root) % size
                yield self.send(rank, child, nbytes=nbytes, tag=tag,
                                payload=value)
            mask >>= 1
        return value

    def gather(self, rank: int, root: int, nbytes: float, payload: Any = None):
        """Flat gather to the root; returns list of payloads at the root."""
        self.job._check_rank(root)
        tag = self._next_tag(rank, 2)
        if rank == root:
            values: List[Any] = [None] * self.size
            values[root] = payload
            for _ in range(self.size - 1):
                msg = yield self.recv(root, tag=tag)
                values[msg.src] = msg.payload
            return values
        yield self.send(rank, root, nbytes=nbytes, tag=tag, payload=payload)
        return None

    def allgather(self, rank: int, nbytes: float, payload: Any = None):
        """Ring allgather: size-1 steps, each moving ``nbytes``."""
        tag = self._next_tag(rank, 3)
        size = self.size
        values: List[Any] = [None] * size
        values[rank] = payload
        right = (rank + 1) % size
        carried_index, carried_value = rank, payload
        for _step in range(size - 1):
            send_ev = self.send(rank, right, nbytes=nbytes, tag=tag,
                                payload=(carried_index, carried_value))
            msg = yield self.recv(rank, tag=tag)
            yield send_ev
            carried_index, carried_value = msg.payload
            values[carried_index] = carried_value
        return values

    def scatter(self, rank: int, root: int, nbytes: float,
                payloads: Any = None):
        """Root deals one payload (``nbytes`` each) to every rank;
        returns this rank's share.  ``payloads`` is the length-``size``
        list at the root, ignored elsewhere."""
        self.job._check_rank(root)
        tag = self._next_tag(rank, 5)
        if rank == root:
            if payloads is None:
                payloads = [None] * self.size
            if len(payloads) != self.size:
                raise MpiError(
                    f"scatter needs {self.size} payloads, got {len(payloads)}")
            for other in range(self.size):
                if other != root:
                    yield self.send(root, other, nbytes=nbytes, tag=tag,
                                    payload=payloads[other])
            return payloads[root]
        msg = yield self.recv(rank, src=root, tag=tag)
        return msg.payload

    def reduce(self, rank: int, root: int, nbytes: float,
               value: float = 0.0,
               op: Callable[[float, float], float] = lambda a, b: a + b):
        """Reduce to the root; returns the result there, None elsewhere."""
        self.job._check_rank(root)
        tag = self._next_tag(rank, 6)
        if rank == root:
            acc = value
            for _ in range(self.size - 1):
                msg = yield self.recv(root, tag=tag)
                acc = op(acc, msg.payload)
            return acc
        yield self.send(rank, root, nbytes=nbytes, tag=tag, payload=value)
        return None

    def allreduce(self, rank: int, nbytes: float, value: float = 0.0,
                  op: Callable[[float, float], float] = lambda a, b: a + b):
        """Reduce-to-root then broadcast (the classic composition)."""
        tag = self._next_tag(rank, 4)
        if rank == 0:
            acc = value
            for _ in range(self.size - 1):
                msg = yield self.recv(0, tag=tag)
                acc = op(acc, msg.payload)
            for other in range(1, self.size):
                yield self.send(0, other, nbytes=nbytes, tag=tag + 1,
                                payload=acc)
            return acc
        yield self.send(rank, 0, nbytes=nbytes, tag=tag, payload=value)
        msg = yield self.recv(rank, src=0, tag=tag + 1)
        return msg.payload


class MpiContext:
    """What a rank body sees: its rank, communicator, and local ops."""

    def __init__(self, job: MpiJob, rank: int) -> None:
        self.job = job
        self.rank = rank
        self.comm = job.world

    @property
    def sim(self) -> Simulator:
        return self.job.sim

    @property
    def host(self) -> Host:
        """The host this rank currently runs on (changes after a swap)."""
        return self.job.rank_host(self.rank)

    @property
    def counters(self) -> RankCounters:
        return self.job.counters[self.rank]

    def compute(self, mflop: float, tag: str = "") -> Event:
        """Run local work on whatever host the rank currently occupies."""
        self.counters.mflop += mflop
        return self.host.compute(mflop, tag=tag or f"r{self.rank}")

    def send(self, dst: int, nbytes: float, tag: int = 0,
             payload: Any = None) -> Event:
        return self.comm.send(self.rank, dst, nbytes, tag=tag, payload=payload)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        return self.comm.recv(self.rank, src=src, tag=tag)

    def report_iteration(self, iteration: int, seconds: float) -> None:
        """Feed the instrumentation inserted by the binder."""
        self.job.report_iteration(self.rank, iteration, seconds)
