"""Event primitives for the discrete-event kernel.

The kernel is generator based, in the style of SimPy: simulation
processes are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events trigger.  Events carry a value (delivered
as the result of the ``yield``) or an exception (raised at the ``yield``
site).

Only the pieces the GrADS reproduction needs are implemented, but they
are implemented completely: one-shot events, timeouts, condition events
(:class:`AllOf` / :class:`AnyOf`) and process-as-event composition (in
:mod:`repro.sim.process`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator

__all__ = [
    "Event",
    "Timeout",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "EventAlreadyTriggered",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class EventAlreadyTriggered(SimulationError):
    """Raised when succeed()/fail() is called on a triggered event."""


PENDING = object()  #: sentinel for "no value yet"


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current
    simulation time.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name", "defused")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self.name = name
        #: set True by a waiter that handled this event's failure
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is consumed)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception raised at waiters."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._queue_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously), which keeps late waiters correct.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Timeouts are the most-allocated object in a simulation (every flow
    wake-up, sensor period and contract check creates one), so ``__init__``
    writes its slots directly instead of chaining through
    ``Event.__init__`` and then overwriting ``_ok``/``_value``.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self.name = name
        self.defused = False
        self.delay = delay
        sim._schedule(self, delay)


class ConditionEvent(Event):
    """Base for events that trigger based on a set of child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            # add_callback fires synchronously for already-processed
            # children, so _remaining must be set before this loop.
            for ev in self.events:
                ev.add_callback(self._on_child)

    def _collect(self) -> dict:
        # A Timeout carries its value from construction, so "triggered"
        # alone would over-collect; only *processed* children count.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _on_child(self, child: Event) -> None:
        raise NotImplementedError

    def _child_failed(self, child: Event) -> None:
        child.defused = True  # the failure propagates through the condition
        if not self.triggered:
            self.fail(child.value)


class AllOf(ConditionEvent):
    """Triggers when every child event has triggered.

    The value is a dict mapping each child event to its value.  Fails
    as soon as any child fails.
    """

    __slots__ = ()

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            if not child.ok:
                # A sibling already failed (or completed) the condition;
                # this straggler's failure is still ours to absorb, or
                # the kernel would raise it as unhandled and abort the
                # run (two hosts dying under one MPI job did exactly
                # that).
                child.defused = True
            return
        if not child.ok:
            self._child_failed(child)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Triggers when at least one child event has triggered.

    The value is a dict of the children that have triggered so far.
    """

    __slots__ = ()

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            if not child.ok:
                child.defused = True  # late failure after the condition
                # resolved: absorbed, as for AllOf
            return
        if not child.ok:
            self._child_failed(child)
            return
        self.succeed(self._collect())
