"""Discrete-event simulation substrate for the GrADS reproduction.

The kernel is deliberately small (events, timeouts, processes,
conditions) and deterministic; all grid behaviour is built on top of it
in :mod:`repro.microgrid` and friends.
"""

from .events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    SimulationError,
    Timeout,
)
from .kernel import Simulator, StopSimulation
from .process import Interrupt, Process
from .resources import Semaphore, Store
from .rng import RngRegistry
from .stats import KernelStats, format_stats

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "KernelStats",
    "Process",
    "RngRegistry",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "format_stats",
]
