"""Cheap performance counters for the simulation substrate.

Every :class:`~repro.sim.kernel.Simulator` owns a :class:`KernelStats`
instance (``sim.stats``).  The kernel increments ``events_processed``
per agenda entry; the MicroGrid layers increment the substrate counters
(``reallocations`` on every max-min recomputation, ``wakeups_cancelled``
whenever a stale epoch-guarded completion wake-up fires, and the route
cache hit/miss pair); the workflow scheduler increments the ``sched_*``
trio (list-scheduling rounds, per-cell completion-time evaluations, and
NWS transfer-forecast memo hits); the metascheduler increments the
``meta_*`` family (submissions, rejections, starts, completions,
backfills, reservations, cumulative queue-wait and served
cpu-seconds) plus the ``meta_plan_*`` planning-engine family (rounds,
reservations kept across rounds vs rebuilt from scratch, window
feasibility probes, estimate memo hits, scheduled wakes) — the
``meta_plan_*`` counters describe *how* a plan was computed, so they
are the one family excluded from deterministic experiment reports
(they differ between the fast and reference engines by design).
Counters are plain integer attributes on a
slotted object, so updating one costs a single attribute store — cheap
enough to leave enabled in every run.

These numbers answer the questions the substrate benchmarks ask: how
many agenda entries a workload costs, how much of that is wasted on
stale wake-ups, and whether routing work is being amortised.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["KernelStats", "format_stats"]


class KernelStats:
    """Per-simulator performance counters (all monotonically increasing)."""

    __slots__ = (
        "events_processed",
        "reallocations",
        "wakeups_cancelled",
        "route_cache_hits",
        "route_cache_misses",
        "sched_rounds",
        "sched_evaluations",
        "sched_memo_hits",
        "meta_submitted",
        "meta_rejected",
        "meta_started",
        "meta_completed",
        "meta_backfilled",
        "meta_reservations",
        "meta_queue_wait_seconds",
        "meta_cpu_seconds",
        "meta_plan_rounds",
        "meta_plan_kept",
        "meta_plan_rebuilt",
        "meta_plan_window_probes",
        "meta_plan_estimate_memo_hits",
        "meta_plan_wakes",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (e.g. after a warm-up phase)."""
        self.events_processed = 0
        self.reallocations = 0
        self.wakeups_cancelled = 0
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.sched_rounds = 0
        self.sched_evaluations = 0
        self.sched_memo_hits = 0
        self.meta_submitted = 0
        self.meta_rejected = 0
        self.meta_started = 0
        self.meta_completed = 0
        self.meta_backfilled = 0
        self.meta_reservations = 0
        self.meta_queue_wait_seconds = 0.0
        self.meta_cpu_seconds = 0.0
        self.meta_plan_rounds = 0
        self.meta_plan_kept = 0
        self.meta_plan_rebuilt = 0
        self.meta_plan_window_probes = 0
        self.meta_plan_estimate_memo_hits = 0
        self.meta_plan_wakes = 0

    @property
    def route_cache_hit_rate(self) -> float:
        """Fraction of route lookups served from cache (1.0 when idle)."""
        total = self.route_cache_hits + self.route_cache_misses
        if total == 0:
            return 1.0
        return self.route_cache_hits / total

    def snapshot(self) -> Dict[str, float]:
        """Counters as a plain dict (for results objects and the CLI)."""
        return {
            "events_processed": self.events_processed,
            "reallocations": self.reallocations,
            "wakeups_cancelled": self.wakeups_cancelled,
            "route_cache_hits": self.route_cache_hits,
            "route_cache_misses": self.route_cache_misses,
            "route_cache_hit_rate": self.route_cache_hit_rate,
            "sched_rounds": self.sched_rounds,
            "sched_evaluations": self.sched_evaluations,
            "sched_memo_hits": self.sched_memo_hits,
            "meta_submitted": self.meta_submitted,
            "meta_rejected": self.meta_rejected,
            "meta_started": self.meta_started,
            "meta_completed": self.meta_completed,
            "meta_backfilled": self.meta_backfilled,
            "meta_reservations": self.meta_reservations,
            "meta_queue_wait_seconds": self.meta_queue_wait_seconds,
            "meta_cpu_seconds": self.meta_cpu_seconds,
            "meta_plan_rounds": self.meta_plan_rounds,
            "meta_plan_kept": self.meta_plan_kept,
            "meta_plan_rebuilt": self.meta_plan_rebuilt,
            "meta_plan_window_probes": self.meta_plan_window_probes,
            "meta_plan_estimate_memo_hits": self.meta_plan_estimate_memo_hits,
            "meta_plan_wakes": self.meta_plan_wakes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<KernelStats events={self.events_processed}"
                f" reallocs={self.reallocations}"
                f" stale_wakeups={self.wakeups_cancelled}"
                f" route_hit_rate={self.route_cache_hit_rate:.3f}>")


def format_stats(stats: "KernelStats", elapsed_wall: float = 0.0) -> str:
    """Human-readable counter block, optionally with an events/sec rate."""
    lines = [
        f"events processed     : {stats.events_processed}",
        f"reallocations        : {stats.reallocations}",
        f"stale wake-ups       : {stats.wakeups_cancelled}",
        f"route cache hits     : {stats.route_cache_hits}",
        f"route cache misses   : {stats.route_cache_misses}",
        f"route cache hit rate : {stats.route_cache_hit_rate:.3f}",
        f"scheduler rounds     : {stats.sched_rounds}",
        f"candidate evals      : {stats.sched_evaluations}",
        f"forecast memo hits   : {stats.sched_memo_hits}",
        f"jobs submitted       : {stats.meta_submitted}",
        f"jobs rejected        : {stats.meta_rejected}",
        f"jobs started         : {stats.meta_started}",
        f"jobs completed       : {stats.meta_completed}",
        f"jobs backfilled      : {stats.meta_backfilled}",
        f"reservations made    : {stats.meta_reservations}",
        f"queue-wait seconds   : {stats.meta_queue_wait_seconds:.1f}",
        f"cpu-seconds served   : {stats.meta_cpu_seconds:.1f}",
        f"planning rounds      : {stats.meta_plan_rounds}",
        f"reservations kept    : {stats.meta_plan_kept}",
        f"reservations rebuilt : {stats.meta_plan_rebuilt}",
        f"window probes        : {stats.meta_plan_window_probes}",
        f"estimate memo hits   : {stats.meta_plan_estimate_memo_hits}",
        f"wakes scheduled      : {stats.meta_plan_wakes}",
    ]
    if elapsed_wall > 0:
        rate = stats.events_processed / elapsed_wall
        lines.append(f"events/sec (wall)    : {rate:,.0f}")
    return "\n".join(lines)
