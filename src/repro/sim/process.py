"""Simulation processes: generators driven by the event kernel.

A process wraps a generator.  Each value the generator yields must be an
:class:`~repro.sim.events.Event`; the process sleeps until that event is
processed, then resumes with the event's value (or the event's exception
raised at the yield site).  A Process is itself an Event that triggers
with the generator's return value, so processes compose: one process can
``yield`` another to join on it, and :class:`AllOf`/:class:`AnyOf` work
over processes directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from .events import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries whatever the interrupter passed; GrADS uses this
    for, e.g., forcing a contract monitor to re-evaluate immediately.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process (also usable as an event)."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "proc"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off at the current time via an immediately-successful
        # event.  Built by hand (no succeed(), no per-process f-string
        # name): spawning is on the hot path of fan-out workloads.
        bootstrap = Event(sim, name="start")
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._value = None
        sim._queue_event(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self) -> None:
        """Terminate the process, treating its death as handled.

        Unlike a bare :meth:`interrupt`, the resulting failure is
        pre-defused so the kernel will not re-raise it for lacking a
        waiter — the right tool for reaping orphaned ranks after a
        sibling crashed.  Killing a finished process is a no-op.
        """
        if self.triggered:
            return
        self.defused = True
        self.interrupt("killed")

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        self._poke(Interrupt(cause), f"{self.name}:interrupt")

    def throw(self, exc: BaseException) -> None:
        """Raise an arbitrary exception inside the process at its yield
        point (same delivery as :meth:`interrupt`, different type).

        This is how the substrate delivers asynchronous death — e.g. a
        host crash must kill a rank even while it is blocked on a
        network transfer, which no failing compute event would reach.
        """
        if self.triggered:
            raise SimulationError(f"cannot throw into finished process {self.name!r}")
        self._poke(exc, f"{self.name}:throw")

    def _poke(self, exc: BaseException, name: str) -> None:
        poke = Event(self.sim, name=name)
        poke.add_callback(self._resume_with_interrupt)
        poke._value = exc
        poke._ok = False
        self.sim._queue_event(poke)

    # -- resumption machinery ------------------------------------------------
    def _resume_with_interrupt(self, poke: Event) -> None:
        if self.triggered:
            return  # finished in the meantime; drop the interrupt
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(poke.value, ok=False)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        if not event.ok:
            event.defused = True  # the failure is delivered into this process
        self._step(event.value, ok=event.ok)

    def _step(self, value: Any, ok: bool) -> None:
        sim = self.sim
        prev = sim._active_process
        sim._active_process = self
        try:
            if ok:
                target = self._generator.send(value)
            else:
                target = self._generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            sim._active_process = prev
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        if target.sim is not sim:
            self._generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
