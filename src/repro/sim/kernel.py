"""The discrete-event simulation kernel.

:class:`Simulator` owns the event agenda (a heap of ``(time, priority,
sequence, event)`` entries) and the clock.  All grid components — hosts,
network flows, daemons, MPI ranks, monitors — are simulation processes
scheduled through one Simulator instance, so a whole GrADS run is fully
deterministic given its RNG seeds.

The :meth:`Simulator.run` loop is the hottest code in the repository —
every transfer byte and Mflop of the emulated grid is accounted for
through it — so it keeps an inlined copy of :meth:`Simulator.step` with
hoisted locals and batches all entries that share a timestamp (URGENT
event-processing bookkeeping included) between ``until`` checks.
``sim.stats`` (:class:`~repro.sim.stats.KernelStats`) counts every event
processed so workloads can report events/sec.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import PENDING, Event, SimulationError, Timeout
from .process import Process
from .stats import KernelStats

__all__ = ["Simulator", "StopSimulation"]

#: Priority bands: URGENT is used for event-processing bookkeeping so that
#: an event's callbacks run before same-time timeouts created afterwards.
URGENT = 0
NORMAL = 1


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    __slots__ = ("_now", "_agenda", "_seq", "_active_process", "stats",
                 "trace")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._agenda: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: substrate performance counters, always on (see repro.sim.stats)
        self.stats = KernelStats()
        #: optional repro.trace.Tracer, attached via Tracer.bind(); None
        #: (the default) keeps every instrumentation site on its no-op
        #: fast path
        self.trace = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds, by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event creation ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new simulation process running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling internals ----------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        """Place a triggered event on the agenda ``delay`` from now."""
        self._seq += 1
        heapq.heappush(self._agenda, (self._now + delay, priority, self._seq, event))

    def _queue_event(self, event: Event) -> None:
        """Queue an already-triggered event's callbacks to run now."""
        self._seq += 1
        heapq.heappush(self._agenda, (self._now, URGENT, self._seq, event))

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda:
            raise SimulationError("step() on an empty agenda")
        when, _prio, _seq, event = heapq.heappop(self._agenda)
        if when < self._now - 1e-12:
            raise SimulationError("agenda entry in the past (kernel bug)")
        if when > self._now:
            self._now = when
        self.stats.events_processed += 1
        trace = self.trace
        if trace is not None and "kernel" in trace.active:
            trace.kernel_event(when, event)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._value is not PENDING and not event._ok and not event.defused:
            # A failure that no waiter handled would otherwise vanish;
            # surface it so broken processes abort the run loudly.
            if isinstance(event, Process):
                raise event.value

    def peek(self) -> float:
        """Time of the next agenda entry, or ``inf`` if the agenda is empty."""
        return self._agenda[0][0] if self._agenda else float("inf")

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run until the agenda drains, ``until`` is reached, or
        ``stop_event`` triggers.

        Returns the value of ``stop_event`` if it stopped the run, else
        ``None``.  Failed events that nothing waited on surface their
        exception here rather than being silently dropped.
        """
        if stop_event is not None:
            if stop_event.sim is not self:
                raise SimulationError("stop_event belongs to another simulator")
            stop_event.add_callback(self._stop_callback)
        agenda = self._agenda
        pop = heapq.heappop
        stats = self.stats
        # Tracing state is hoisted: a run without a tracer (or with the
        # kernel category filtered out) pays one local-bool test per
        # event, nothing more.  Bind tracers before run(), not during.
        trace = self.trace
        trace_kernel = trace is not None and "kernel" in trace.active
        try:
            while agenda:
                head = agenda[0][0]
                if until is not None and head > until:
                    self._now = until
                    return None
                # Batch every entry sharing this timestamp — same-time
                # URGENT callbacks (event bookkeeping) and timeouts run
                # back-to-back without re-checking `until`.  Callbacks
                # can only append entries at >= the current time, so the
                # heap head never moves before `head` mid-batch.
                while agenda and agenda[0][0] == head:
                    when, _prio, _seq, event = pop(agenda)
                    if when > self._now:
                        self._now = when
                    stats.events_processed += 1
                    if trace_kernel:
                        trace.kernel_event(when, event)
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                    if (event._value is not PENDING and not event._ok
                            and not event.defused):
                        if isinstance(event, Process):
                            raise event.value
        except StopSimulation:
            assert stop_event is not None
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        finally:
            # Detach on every exit path: a lingering _stop_callback would
            # let the event raise StopSimulation into a later run() that
            # passed no stop_event (and trip its `assert stop_event`).
            if stop_event is not None and stop_event.callbacks is not None:
                try:
                    stop_event.callbacks.remove(self._stop_callback)
                except ValueError:
                    pass
        if until is not None and until > self._now:
            self._now = until
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    # -- conveniences used across the code base -----------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Invoke ``fn()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.add_callback(lambda _e: fn())
        return ev

    def call_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Invoke ``fn()`` after ``delay`` simulated time units."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _e: fn())
        return ev
