"""The discrete-event simulation kernel.

:class:`Simulator` owns the event agenda (a heap of ``(time, priority,
sequence, event)`` entries) and the clock.  All grid components — hosts,
network flows, daemons, MPI ranks, monitors — are simulation processes
scheduled through one Simulator instance, so a whole GrADS run is fully
deterministic given its RNG seeds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import Event, SimulationError, Timeout
from .process import Process

__all__ = ["Simulator", "StopSimulation"]

#: Priority bands: URGENT is used for event-processing bookkeeping so that
#: an event's callbacks run before same-time timeouts created afterwards.
URGENT = 0
NORMAL = 1


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._agenda: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds, by project convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event creation ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new simulation process running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling internals ----------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        """Place a triggered event on the agenda ``delay`` from now."""
        self._seq += 1
        heapq.heappush(self._agenda, (self._now + delay, priority, self._seq, event))

    def _queue_event(self, event: Event) -> None:
        """Queue an already-triggered event's callbacks to run now."""
        self._schedule(event, 0.0, priority=URGENT)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda:
            raise SimulationError("step() on an empty agenda")
        when, _prio, _seq, event = heapq.heappop(self._agenda)
        if when < self._now - 1e-12:
            raise SimulationError("agenda entry in the past (kernel bug)")
        self._now = max(self._now, when)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event.triggered and not event.ok and not event.defused:
            # A failure that no waiter handled would otherwise vanish;
            # surface it so broken processes abort the run loudly.
            from .process import Process
            if isinstance(event, Process):
                raise event.value

    def peek(self) -> float:
        """Time of the next agenda entry, or ``inf`` if the agenda is empty."""
        return self._agenda[0][0] if self._agenda else float("inf")

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run until the agenda drains, ``until`` is reached, or
        ``stop_event`` triggers.

        Returns the value of ``stop_event`` if it stopped the run, else
        ``None``.  Failed events that nothing waited on surface their
        exception here rather than being silently dropped.
        """
        if stop_event is not None:
            if stop_event.sim is not self:
                raise SimulationError("stop_event belongs to another simulator")
            stop_event.add_callback(self._stop_callback)
        try:
            while self._agenda:
                if until is not None and self.peek() > until:
                    self._now = until
                    return None
                self.step()
        except StopSimulation:
            assert stop_event is not None
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None and until > self._now:
            self._now = until
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    # -- conveniences used across the code base -----------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Invoke ``fn()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.add_callback(lambda _e: fn())
        return ev

    def call_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Invoke ``fn()`` after ``delay`` simulated time units."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _e: fn())
        return ev
