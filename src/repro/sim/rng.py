"""Deterministic per-subsystem random streams.

Every stochastic component (load generators, NWS measurement noise,
synthetic workload builders) draws from its own named stream so that
adding randomness to one subsystem never perturbs another.  Streams are
derived from a single root seed with ``numpy.random.SeedSequence``
spawning, which is the recommended way to get independent generators.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A family of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The stream for a given (seed, name) pair is always the same,
        regardless of creation order, because the child seed is derived
        by hashing the name into the root entropy.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"


def _stable_hash(name: str) -> int:
    """A process-stable 64-bit hash (builtin ``hash`` is salted)."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h
