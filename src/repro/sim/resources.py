"""Generic coordination primitives for simulation processes.

The grid substrate builds its own specialized machinery (processor
sharing, max-min flows), but user-written applications and services
often need ordinary queueing: a FIFO channel between producers and
consumers, or a counted resource with waiters.  These primitives fill
that gap, in the SimPy idiom: methods return events to ``yield`` on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .events import Event, SimulationError
from .kernel import Simulator

__all__ = ["Store", "Semaphore"]


class Store:
    """An unbounded-or-capped FIFO channel of Python objects.

    ``put`` blocks (returns a pending event) while the store is full;
    ``get`` blocks while it is empty.  Items are delivered in FIFO
    order to getters in FIFO order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the event triggers when it is accepted."""
        ev = self.sim.event(name="store:put")
        if self._getters:
            # hand straight to the longest-waiting consumer
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif not self.is_full:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Take the oldest item; the event's value is the item."""
        ev = self.sim.event(name="store:get")
        if self._items:
            ev.succeed(self._items.popleft())
            # space freed: admit the longest-waiting producer
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed()
        elif self._putters and self.capacity == 0:  # pragma: no cover
            raise SimulationError("unreachable: zero capacity is rejected")
        else:
            self._getters.append(ev)
        return ev


class Semaphore:
    """A counted resource: ``acquire`` blocks while the count is zero.

    Use for modeling license servers, bounded service concurrency, or
    any admission control a custom grid service needs.
    """

    def __init__(self, sim: Simulator, count: int) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.sim = sim
        self.count = count
        self._available = count
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """The event triggers when a unit is granted."""
        ev = self.sim.event(name="semaphore:acquire")
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a unit; over-release is an error."""
        if self._waiters:
            self._waiters.popleft().succeed()
            return
        if self._available >= self.count:
            raise SimulationError("semaphore released more than acquired")
        self._available += 1
