"""Generic coordination primitives for simulation processes.

The grid substrate builds its own specialized machinery (processor
sharing, max-min flows), but user-written applications and services
often need ordinary queueing: a FIFO channel between producers and
consumers, or a counted resource with waiters.  These primitives fill
that gap, in the SimPy idiom: methods return events to ``yield`` on.

Waiters are failure-aware.  A process blocked in :meth:`Store.get`,
:meth:`Store.put` or :meth:`Semaphore.acquire` can die while queued
(``Process.kill``/``throw`` detaches it from the event it was waiting
on, leaving the queued event pending with nobody listening), or its
wait event can be cancelled/raced by user code (e.g. an ``AnyOf`` with
a timeout that triggers the event another way).  Hand-off therefore
skips entries whose event has already triggered or whose waiting
process has finished, and retries the next waiter — a unit or item is
never granted to the dead, and never silently lost.  The explicit
:meth:`Semaphore.cancel_wait` / :meth:`Store.cancel_get` /
:meth:`Store.cancel_put` methods let timeout-style callers withdraw a
queued wait deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from .events import Event, SimulationError
from .kernel import Simulator
from .process import Process

__all__ = ["Store", "Semaphore"]


def _dead(ev: Event, owner: Optional[Process]) -> bool:
    """True when a queued wait can never be delivered: the event was
    already triggered elsewhere (cancelled/raced) or the process that
    queued it has finished and will never resume on it."""
    return ev.triggered or (owner is not None and owner.triggered)


class Store:
    """An unbounded-or-capped FIFO channel of Python objects.

    ``put`` blocks (returns a pending event) while the store is full;
    ``get`` blocks while it is empty.  Items are delivered in FIFO
    order to getters in FIFO order.  Dead waiters (see module
    docstring) are skipped: an item is never handed to a getter whose
    process died, and a blocked putter that died never deposits its
    item (the item was never accepted).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        #: (event, waiting process or None)
        self._getters: Deque[Tuple[Event, Optional[Process]]] = deque()
        #: (event, item, waiting process or None)
        self._putters: Deque[Tuple[Event, Any, Optional[Process]]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def n_waiting_get(self) -> int:
        """Queued getters, dead or alive (for introspection/audits)."""
        return len(self._getters)

    @property
    def n_waiting_put(self) -> int:
        """Queued putters, dead or alive (for introspection/audits)."""
        return len(self._putters)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the event triggers when it is accepted."""
        ev = self.sim.event(name="store:put")
        getter = self._pop_live_getter()
        if getter is not None:
            # hand straight to the longest-waiting live consumer
            getter.succeed(item)
            ev.succeed()
        elif not self.is_full:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item, self.sim.active_process))
        return ev

    def get(self) -> Event:
        """Take the oldest item; the event's value is the item."""
        ev = self.sim.event(name="store:get")
        if self._items:
            ev.succeed(self._items.popleft())
            # space freed: admit waiting live producers
            self._admit_putters()
        else:
            self._getters.append((ev, self.sim.active_process))
        return ev

    def cancel_get(self, ev: Event) -> bool:
        """Withdraw a queued :meth:`get` wait.

        Returns True when the wait was removed; False when it was not
        queued (never waited, already delivered, or already cancelled)
        — a False return with ``ev.triggered`` means an item was
        delivered and the caller still owns it.
        """
        return self._discard(self._getters, ev)

    def cancel_put(self, ev: Event) -> bool:
        """Withdraw a queued :meth:`put` wait; the item is not
        deposited.  Returns False when the put already completed."""
        return self._discard(self._putters, ev)

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _discard(queue: Deque, ev: Event) -> bool:
        for entry in queue:
            if entry[0] is ev:
                queue.remove(entry)
                return True
        return False

    def _pop_live_getter(self) -> Optional[Event]:
        while self._getters:
            ev, owner = self._getters.popleft()
            if _dead(ev, owner):
                continue  # dead/cancelled getter: skip, try the next
            return ev
        return None

    def _admit_putters(self) -> None:
        while self._putters and not self.is_full:
            put_ev, item, owner = self._putters.popleft()
            if _dead(put_ev, owner):
                continue  # dead producer: its item was never accepted
            self._items.append(item)
            put_ev.succeed()


class Semaphore:
    """A counted resource: ``acquire`` blocks while the count is zero.

    Use for modeling license servers, bounded service concurrency, or
    any admission control a custom grid service needs.  A release
    never hands a unit to a dead waiter (the unit would be lost): dead
    entries are skipped and the unit goes to the next live waiter, or
    back to the available pool.
    """

    def __init__(self, sim: Simulator, count: int) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.sim = sim
        self.count = count
        self._available = count
        #: (event, waiting process or None)
        self._waiters: Deque[Tuple[Event, Optional[Process]]] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """The event triggers when a unit is granted."""
        ev = self.sim.event(name="semaphore:acquire")
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append((ev, self.sim.active_process))
        return ev

    def release(self) -> None:
        """Return a unit; over-release is an error."""
        while self._waiters:
            ev, owner = self._waiters.popleft()
            if _dead(ev, owner):
                continue  # dead/cancelled waiter: keep the unit moving
            ev.succeed()
            return
        if self._available >= self.count:
            raise SimulationError("semaphore released more than acquired")
        self._available += 1

    def cancel_wait(self, ev: Event) -> bool:
        """Withdraw a queued :meth:`acquire` wait.

        Returns True when the wait was removed before a unit was
        granted.  A False return with ``ev.triggered`` means the grant
        already happened: the caller holds the unit and must
        :meth:`release` it.
        """
        for entry in self._waiters:
            if entry[0] is ev:
                self._waiters.remove(entry)
                return True
        return False
