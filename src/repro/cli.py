"""Command-line interface: regenerate the paper's experiments.

::

    python -m repro fig3  --sizes 6000,8000,10000
    python -m repro fig4  --policy gang --stats --trace fig4.trace.json
    python -m repro eman
    python -m repro opportunistic
    python -m repro describe path/to/grid.dml
    python -m repro bench --compare
    python -m repro faults run --seed 0 --mtbf 300,900 --json
    python -m repro faults report campaign.json
    python -m repro metasched run --users 6 --arrival-rate 0.01 --json
    python -m repro metasched run --engine reference --n-hosts 64 --json
    python -m repro metasched report stream.json
    python -m repro soak run --minutes 2 --seed 7 --json
    python -m repro soak replay tests/soak/reproducers/foo.json
    python -m repro trace diff a.trace.json b.trace.json
    python -m repro lint --format json --baseline simlint-baseline.json

Every experiment subcommand accepts ``--trace PATH`` to export the
run's event timeline as Chrome trace-event JSON (load it in Perfetto
or ``chrome://tracing``).  ``repro trace`` inspects such files:
``validate`` checks the schema, ``summary`` prints per-host
utilization and the violation timeline, ``diff`` pinpoints the first
divergent event between two traces (exit 1 when they diverge).
``repro lint`` runs the determinism linter (``repro.simlint``) over
the tree — see DESIGN.md §5 for the rules and suppression syntax.

Every experiment subcommand also accepts ``--seed N`` (default 0): the
run's randomness, if it has any, derives from ``RngRegistry(N)``, and
two invocations with equal arguments produce identical output —
``--json`` payloads byte-for-byte (each carries ``schema_version``).

Exit codes: 0 success, 1 experiment/trace/lint failure, 2 bad usage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from . import __version__
from .experiments.eman_demo import run_eman_demo
from .experiments.faults_campaign import campaign_tables, run_faults_campaign
from .experiments.fig3_qr import DEFAULT_SIZES, run_fig3
from .experiments.fig4_swap import run_fig4
from .experiments.metasched_stream import metasched_tables, run_metasched
from .experiments.opportunistic import run_opportunistic
from .experiments.scheduler_bench import (
    build_scheduler_bench_env,
    run_scheduler_bench,
    schedules_equal,
)
from .experiments.soak import run_soak, soak_tables
from .experiments.substrate import run_substrate_bench
from .experiments.common import JSON_SCHEMA_VERSION, format_table
from .faults.campaign import CampaignSpec
from .microgrid.dml import parse_grid
from .rescheduling.swapping import SWAP_POLICIES
from .sim.kernel import Simulator
from .trace import (
    Tracer,
    diff_files,
    format_divergence,
    load_trace_file,
    summarize,
    validate_chrome,
    write_chrome,
)

__all__ = ["main", "build_parser"]


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export the run's event timeline as Chrome trace-event JSON")


def _add_seed_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=0,
        help="experiment seed (default 0); all driver randomness derives "
             "from it and equal seeds give identical output")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GrADS scheduling/rescheduling reproduction (IPPS 2004)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", help="Figure 3: QR stop/restart sweep")
    fig3.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)),
                      help="comma-separated matrix sizes")
    fig3.add_argument("--nb", type=int, default=200, help="panel width")
    fig3.add_argument("--no-decisions", action="store_true",
                      help="skip the default-mode decision replay")
    _add_seed_option(fig3)
    _add_trace_option(fig3)

    fig4 = sub.add_parser("fig4", help="Figure 4: N-body process swapping")
    fig4.add_argument("--policy", default="gang",
                      choices=sorted(SWAP_POLICIES) + ["none"])
    fig4.add_argument("--iterations", type=int, default=120)
    fig4.add_argument("--stats", action="store_true",
                      help="print kernel/substrate perf counters after the run")
    fig4.add_argument("--json", action="store_true",
                      help="emit the result (progress, swaps, counters) "
                           "as JSON on stdout")
    _add_seed_option(fig4)
    _add_trace_option(fig4)

    eman = sub.add_parser("eman", help="Section 3.3: EMAN workflow demo")
    _add_seed_option(eman)
    _add_trace_option(eman)

    opp = sub.add_parser("opportunistic",
                         help="Section 4.1.1: opportunistic rescheduling")
    opp.add_argument("--disable", action="store_true",
                     help="run the baseline without the daemon")
    _add_seed_option(opp)
    _add_trace_option(opp)

    describe = sub.add_parser("describe",
                              help="validate and summarize a DML topology")
    describe.add_argument("path", help="DML file")

    bench = sub.add_parser(
        "bench", help="substrate stress benchmark (64 flows / 32 hosts); "
                      "--scheduler switches to the workflow-scheduler bench")
    bench.add_argument("--transfers", type=int, default=1500,
                       help="total transfers to complete")
    bench.add_argument("--allocator", default="incremental",
                       choices=["incremental", "reference"])
    bench.add_argument("--scheduler", action="store_true",
                       help="benchmark the workflow scheduler (EMAN-shaped "
                            "DAG) instead of the substrate")
    bench.add_argument("--tasks", type=int, default=256,
                       help="classesbymra fan-out for --scheduler")
    bench.add_argument("--hosts", type=int, default=32,
                       help="grid size for --scheduler")
    bench.add_argument("--engine", default="fast",
                       choices=["fast", "reference"],
                       help="scheduling engine for --scheduler")
    bench.add_argument("--compare", action="store_true",
                       help="run both engines/allocators, assert "
                            "equivalence (scheduler) and report the speedup")
    bench.add_argument("--json", action="store_true",
                       help="emit the KernelStats counters as JSON on stdout")

    lint = sub.add_parser(
        "lint", help="simulator-discipline static analysis (simlint); "
                     "exit 1 on findings not covered by the baseline")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--format", choices=["text", "json", "github"],
                      default="text",
                      help="report format (default: text); 'github' emits "
                           "GitHub Actions ::error/::warning annotations")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="JSON baseline of grandfathered findings")
    lint.add_argument("--write-baseline", metavar="PATH", default=None,
                      help="accept all current findings into a new "
                           "baseline file and exit 0")
    lint.add_argument("--select", metavar="RULES", default=None,
                      help="comma-separated rule ids to run (e.g. "
                           "SL001,SL003); default: all")
    lint.add_argument("--ignore", metavar="RULES", default=None,
                      help="comma-separated rule ids to skip")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="analyze files with N worker processes "
                           "(default: 1, in-process)")
    lint.add_argument("--cache-dir", metavar="PATH", default=None,
                      help="incremental analysis cache directory (e.g. "
                           ".simlint-cache); only changed files are "
                           "re-analyzed, findings are byte-identical "
                           "warm vs cold")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")

    faults = sub.add_parser(
        "faults", help="fault-injection campaigns (MTBF/MTTR sweep + "
                       "scripted kill scenarios)")
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)

    frun = faults_sub.add_parser(
        "run", help="run a campaign; same seed => byte-identical JSON")
    frun.add_argument("--seed", type=int, default=0,
                      help="campaign seed (per-cell injector seeds are "
                           "derived from it)")
    frun.add_argument("--mtbf", default="400,1200",
                      help="comma-separated MTBF grid (seconds)")
    frun.add_argument("--mttr", default="90",
                      help="comma-separated MTTR grid (seconds)")
    frun.add_argument("--trials", type=int, default=2,
                      help="trials per grid cell")
    frun.add_argument("--n", type=int, default=6000, help="QR matrix size")
    frun.add_argument("--checkpoint-every", type=int, default=5,
                      help="periodic checkpoint interval (panel steps)")
    frun.add_argument("--deadline", type=float, default=20000.0,
                      help="per-trial simulated-time budget (seconds)")
    frun.add_argument("--no-scenarios", action="store_true",
                      help="skip the scripted kill scenarios")
    frun.add_argument("--json", action="store_true",
                      help="emit the deterministic report JSON on stdout")
    frun.add_argument("--out", metavar="PATH", default=None,
                      help="also write the report JSON to PATH")
    _add_trace_option(frun)

    freport = faults_sub.add_parser(
        "report", help="render a saved campaign report as tables "
                       "(exit 1 if any scenario failed)")
    freport.add_argument("path", help="report JSON from `faults run --out`")

    meta = sub.add_parser(
        "metasched", help="multi-tenant submission service: serve a "
                          "synthetic job stream with queueing, admission "
                          "control and advance reservations")
    meta_sub = meta.add_subparsers(dest="metasched_command", required=True)

    mrun = meta_sub.add_parser(
        "run", help="serve one stream; same seed => byte-identical JSON "
                    "(exit 1 on any reservation conflict)")
    mrun.add_argument("--users", type=int, default=4,
                      help="number of synthetic tenants (default 4)")
    mrun.add_argument("--arrival-rate", type=float, default=1 / 120.0,
                      help="aggregate Poisson arrival rate in jobs per "
                           "simulated second (default 1/120)")
    mrun.add_argument("--duration", type=float, default=3600.0,
                      help="arrival window in simulated seconds; jobs "
                           "already queued still run to completion")
    mrun.add_argument("--max-jobs", type=int, default=None,
                      help="cap the stream at exactly this many jobs")
    mrun.add_argument("--max-queue", type=int, default=None,
                      help="admission control: reject when this many jobs "
                           "are already queued")
    mrun.add_argument("--max-per-user", type=int, default=None,
                      help="admission control: per-user queued-job quota")
    mrun.add_argument("--engine", choices=["fast", "reference"],
                      default="fast",
                      help="planning engine: the incremental delta "
                           "re-planner (default) or the cancel-all/"
                           "rebuild-all oracle; same seed => identical "
                           "JSON either way")
    mrun.add_argument("--n-hosts", type=int, default=None,
                      help="run on a 4-cluster grid of this many hosts "
                           "instead of the 12-host Figure 3 testbed")
    mrun.add_argument("--json", action="store_true",
                      help="emit the deterministic report JSON on stdout")
    mrun.add_argument("--out", metavar="PATH", default=None,
                      help="also write the report JSON to PATH")
    _add_seed_option(mrun)
    _add_trace_option(mrun)

    mreport = meta_sub.add_parser(
        "report", help="render a saved stream report as tables "
                       "(exit 1 on any reservation conflict)")
    mreport.add_argument("path", help="report JSON from "
                                      "`metasched run --out`")

    soak = sub.add_parser(
        "soak", help="differential soak harness: randomized composite "
                     "scenarios + cross-subsystem invariant auditors")
    soak_sub = soak.add_subparsers(dest="soak_command", required=True)

    srun = soak_sub.add_parser(
        "run", help="run a seeded scenario sweep; same seed => "
                    "byte-identical JSON (exit 1 on any invariant "
                    "violation)")
    srun.add_argument("--scenarios", type=int, default=None,
                      help="number of scenarios to run (default 50)")
    srun.add_argument("--minutes", type=float, default=None,
                      help="time budget; converted to a deterministic "
                           "scenario count, never wall-clock measured")
    srun.add_argument("--shrink", metavar="DIR", default=None,
                      help="delta-debug each violating scenario into a "
                           "minimal replayable reproducer under DIR")
    srun.add_argument("--json", action="store_true",
                      help="emit the deterministic report JSON on stdout")
    srun.add_argument("--out", metavar="PATH", default=None,
                      help="also write the report JSON to PATH")
    _add_seed_option(srun)

    sreplay = soak_sub.add_parser(
        "replay", help="re-run one scenario spec JSON (a shrunk "
                       "reproducer or a sampled spec) with full checks "
                       "(exit 1 on any invariant violation)")
    sreplay.add_argument("path", help="scenario spec JSON, e.g. from "
                                      "`soak run --shrink`")
    sreplay.add_argument("--shrink", metavar="PATH", default=None,
                         help="if the replay violates, shrink it further "
                              "and write the minimal spec to PATH")
    sreplay.add_argument("--json", action="store_true",
                         help="emit the scenario report JSON on stdout")

    sreport = soak_sub.add_parser(
        "report", help="render a saved soak report as tables "
                       "(exit 1 if it recorded any violation)")
    sreport.add_argument("path", help="report JSON from `soak run --out`")

    trace = sub.add_parser("trace", help="inspect exported trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    tdiff = trace_sub.add_parser(
        "diff", help="first divergent event between two traces "
                     "(exit 1 if they diverge)")
    tdiff.add_argument("a", help="first trace (Chrome JSON or JSONL)")
    tdiff.add_argument("b", help="second trace")

    tsummary = trace_sub.add_parser(
        "summary", help="per-host utilization, violations, critical path")
    tsummary.add_argument("path", help="trace file (Chrome JSON or JSONL)")

    tvalidate = trace_sub.add_parser(
        "validate", help="check a file against the Chrome trace-event schema")
    tvalidate.add_argument("path", help="Chrome trace-event JSON file")
    return parser


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    return Tracer() if getattr(args, "trace", None) else None


def _export(tracer: Optional[Tracer], args: argparse.Namespace) -> None:
    if tracer is not None:
        write_chrome(tracer, args.trace)
        print(f"trace: {len(tracer)} events -> {args.trace}", file=sys.stderr)


def _cmd_fig3(args: argparse.Namespace) -> int:
    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s)
    except ValueError:
        print(f"bad --sizes value: {args.sizes!r}", file=sys.stderr)
        return 2
    if not sizes:
        print("need at least one size", file=sys.stderr)
        return 2
    tracer = _make_tracer(args)
    result = run_fig3(sizes=sizes, nb=args.nb,
                      with_decisions=not args.no_decisions, seed=args.seed,
                      tracer=tracer)
    _export(tracer, args)
    print(result.to_table())
    if not args.no_decisions:
        print()
        print(result.decision_table())
        print(f"\ncrossover size: {result.crossover_size()}")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    if args.policy == "none":
        result = run_fig4(n_iterations=args.iterations, with_swapping=False,
                          seed=args.seed, tracer=tracer)
    else:
        result = run_fig4(n_iterations=args.iterations, policy=args.policy,
                          seed=args.seed, tracer=tracer)
    _export(tracer, args)
    if args.json:
        payload = {
            "schema_version": JSON_SCHEMA_VERSION,
            "policy": result.policy,
            "finished_at": result.finished_at,
            "swap_times": result.swap_times,
            "swapped_to": result.swapped_to,
            "iterations": (result.progress[-1].iteration
                           if result.progress else 0),
            "stats": result.stats,
        }
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(result.to_series())
    print(f"\nswaps: {[round(t, 1) for t in result.swap_times]} "
          f"-> {result.swapped_to}")
    print(f"finished at t={result.finished_at:.1f} s "
          f"(policy: {result.policy})")
    if args.stats:
        print("\nsubstrate counters:")
        for key, value in result.stats.items():
            if isinstance(value, float) and not value.is_integer():
                print(f"  {key}: {value:.3f}")
            else:
                print(f"  {key}: {int(value)}")
    return 0


def _cmd_eman(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    result = run_eman_demo(seed=args.seed, tracer=tracer)
    _export(tracer, args)
    print(result.to_table())
    print(f"\nexecuted {result.chosen_heuristic}: "
          f"{result.measured_makespan:.1f} s on {result.resources_used} "
          f"resources, ISAs {result.isas_used}")
    return 0


def _cmd_opportunistic(args: argparse.Namespace) -> int:
    tracer = _make_tracer(args)
    result = run_opportunistic(enable=not args.disable, seed=args.seed,
                               tracer=tracer)
    _export(tracer, args)
    print(format_table(
        ["A done (s)", "B done (s)", "B migrations", "B final cluster"],
        [[result.a_finished_at, result.b_finished_at,
          result.b_migrations, result.b_final_cluster]],
        title=("opportunistic daemon "
               + ("off" if args.disable else "on"))))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    try:
        with open(args.path) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    sim = Simulator()
    grid = parse_grid(text, sim)
    rows = []
    for name, cluster in sorted(grid.clusters.items()):
        rows.append([name, len(cluster), cluster.arch.name,
                     f"{cluster.arch.mflops:.0f}", cluster.arch.isa])
    for name, host in sorted(grid.standalone_hosts.items()):
        rows.append([name, 1, host.arch.name,
                     f"{host.arch.mflops:.0f}", host.arch.isa])
    print(format_table(
        ["cluster/host", "nodes", "arch", "Mflop/s per node", "isa"],
        rows, title=f"{args.path}: {len(grid.all_hosts())} hosts"))
    return 0


def _bench_row(stats: dict) -> List[str]:
    return [str(stats["allocator"]),
            f"{stats['wall_seconds']:.3f}",
            f"{stats['events_per_sec']:,.0f}",
            f"{int(stats['events_processed'])}",
            f"{int(stats['reallocations'])}",
            f"{int(stats['wakeups_cancelled'])}",
            f"{stats['route_cache_hit_rate']:.3f}"]


def _scheduler_bench_row(result: dict) -> List[str]:
    makespans = result["makespans"]
    return [str(result["engine"]),
            f"{result['wall_seconds']:.3f}",
            f"{result['evaluations_per_sec']:,.0f}",
            f"{result['sched_rounds']}",
            f"{result['sched_evaluations']}",
            f"{result['sched_memo_hits']}",
            " ".join(f"{makespans[h]:.1f}" for h in result["heuristics"])]


def _cmd_scheduler_bench(args: argparse.Namespace) -> int:
    engines = ["fast", "reference"] if args.compare else [args.engine]
    env = build_scheduler_bench_env(n_tasks=args.tasks, n_hosts=args.hosts)
    results = [run_scheduler_bench(engine=engine, env=env,
                                   keep_schedules=args.compare)
               for engine in engines]
    if args.compare:
        fast, ref = results
        for name in fast["heuristics"]:
            if not schedules_equal(fast["schedules"][name],
                                   ref["schedules"][name]):
                print(f"ENGINES DIVERGE on {name}", file=sys.stderr)
                return 1
    for result in results:
        result.pop("schedules", None)  # not JSON/table material
    if args.json:
        for result in results:
            result["schema_version"] = JSON_SCHEMA_VERSION
        payload = results[0] if len(results) == 1 else results
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(format_table(
        ["engine", "wall (s)", "evals/sec", "rounds", "evals", "memo hits",
         "makespans (s)"],
        [_scheduler_bench_row(result) for result in results],
        title=f"scheduler benchmark: {results[0]['n_tasks']} tasks / "
              f"{results[0]['n_hosts']} hosts, "
              f"{'+'.join(results[0]['heuristics'])}"))
    if args.compare:
        speedup = results[1]["wall_seconds"] / results[0]["wall_seconds"]
        print(f"\nschedules identical across engines; "
              f"fast engine speedup: {speedup:.2f}x")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.scheduler:
        return _cmd_scheduler_bench(args)
    allocators = (["incremental", "reference"] if args.compare
                  else [args.allocator])
    results = [run_substrate_bench(total_transfers=args.transfers,
                                   allocator=alloc)
               for alloc in allocators]
    if args.json:
        for result in results:
            result["schema_version"] = JSON_SCHEMA_VERSION
        payload = results[0] if len(results) == 1 else results
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(format_table(
        ["allocator", "wall (s)", "events/sec", "events", "reallocs",
         "stale wakeups", "route hit rate"],
        [_bench_row(stats) for stats in results],
        title=f"substrate benchmark: 64 flows / 32 hosts, "
              f"{args.transfers} transfers"))
    if args.compare:
        speedup = results[1]["wall_seconds"] / results[0]["wall_seconds"]
        print(f"\nincremental allocator speedup: {speedup:.2f}x")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from . import simlint

    if args.list_rules:
        print(simlint.render_rule_table())
        return 0
    paths = args.paths
    if not paths:
        import repro
        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        result = simlint.lint_tree(paths, select=select, ignore=ignore,
                                   jobs=max(1, args.jobs),
                                   cache_dir=args.cache_dir)
    except simlint.UnknownRuleError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    findings = result.findings
    if args.write_baseline:
        simlint.write_baseline(args.write_baseline,
                               simlint.make_baseline(findings))
        print(f"wrote baseline with {len(findings)} finding(s) "
              f"-> {args.write_baseline}", file=sys.stderr)
        return 0
    grandfathered: List[simlint.Finding] = []
    if args.baseline:
        doc = simlint.load_baseline(args.baseline)
        findings, grandfathered = simlint.apply_baseline(findings, doc)
    if args.format == "json":
        print(simlint.render_json(findings, grandfathered))
    elif args.format == "github":
        print(simlint.render_github(findings, len(grandfathered),
                                    display_paths=result.display_paths))
    else:
        print(simlint.render_text(findings, len(grandfathered)))
    return 1 if findings else 0


def _parse_grid_values(text: str, flag: str) -> tuple:
    try:
        values = tuple(float(v) for v in text.split(",") if v)
    except ValueError:
        raise ValueError(f"bad {flag} value: {text!r}") from None
    if not values:
        raise ValueError(f"need at least one {flag} value")
    return values


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.faults_command == "report":
        with open(args.path) as handle:
            report = json.load(handle)
        print(campaign_tables(report))
        failed = [s for s in report["scenarios"] if not s["passed"]]
        return 1 if failed else 0
    try:
        spec = CampaignSpec(
            mtbf_grid=_parse_grid_values(args.mtbf, "--mtbf"),
            mttr_grid=_parse_grid_values(args.mttr, "--mttr"),
            trials=args.trials, seed=args.seed, n=args.n,
            checkpoint_every=args.checkpoint_every, deadline=args.deadline)
    except ValueError as exc:
        print(f"repro faults: {exc}", file=sys.stderr)
        return 2
    tracer = _make_tracer(args)
    result = run_faults_campaign(spec, with_scenarios=not args.no_scenarios,
                                 tracer=tracer)
    _export(tracer, args)
    payload = result.to_json()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"report -> {args.out}", file=sys.stderr)
    if args.json:
        print(payload)
    else:
        print(campaign_tables(result.report()))
    failed = [s for s in result.scenarios if not s["passed"]]
    return 1 if failed else 0


def _cmd_metasched(args: argparse.Namespace) -> int:
    if args.metasched_command == "report":
        with open(args.path) as handle:
            report = json.load(handle)
        print(metasched_tables(report))
        return 1 if report["conflicts"] else 0
    if args.users < 1 or args.arrival_rate <= 0 or args.duration <= 0:
        print("repro metasched: need --users >= 1, --arrival-rate > 0 "
              "and --duration > 0", file=sys.stderr)
        return 2
    if args.n_hosts is not None and args.n_hosts < 4:
        print("repro metasched: --n-hosts must be >= 4 (one host per "
              "cluster)", file=sys.stderr)
        return 2
    tracer = _make_tracer(args)
    result = run_metasched(
        users=args.users, arrival_rate=args.arrival_rate,
        duration=args.duration, seed=args.seed, max_jobs=args.max_jobs,
        max_queue=args.max_queue, max_per_user=args.max_per_user,
        engine=args.engine, n_hosts=args.n_hosts, tracer=tracer)
    _export(tracer, args)
    payload = result.to_json()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"report -> {args.out}", file=sys.stderr)
    if args.json:
        print(payload)
    else:
        print(metasched_tables(result.report()))
    if result.conflicts:
        for conflict in result.conflicts:
            print(f"RESERVATION CONFLICT: {conflict}", file=sys.stderr)
        return 1
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    if args.soak_command == "report":
        with open(args.path) as handle:
            report = json.load(handle)
        print(soak_tables(report))
        return 1 if report["summary"]["violations"] else 0
    if args.soak_command == "replay":
        from .soak import (ScenarioSpec, run_with_checks, shrink_scenario,
                           write_reproducer)
        try:
            with open(args.path) as handle:
                spec = ScenarioSpec.from_json(handle.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"repro soak: bad scenario spec: {exc}", file=sys.stderr)
            return 2
        result = run_with_checks(spec)
        if args.json:
            print(json.dumps(result, sort_keys=True))
        else:
            status = "quiesced" if result["quiesced"] else "DID NOT QUIESCE"
            print(f"scenario {spec.index} (seed {spec.seed}): {status}, "
                  f"{len(result['violations'])} violation(s)")
            for violation in result["violations"]:
                print(f"  [{violation['invariant']}] t={violation['time']}: "
                      f"{violation['detail']}")
        if result["violations"] and args.shrink:
            shrunk = shrink_scenario(spec)
            write_reproducer(shrunk.minimal, args.shrink)
            print(f"minimal reproducer ({shrunk.runs} shrink runs, "
                  f"targets {sorted(shrunk.targets)}) -> {args.shrink}",
                  file=sys.stderr)
        return 1 if result["violations"] else 0
    if args.scenarios is not None and args.scenarios < 1:
        print("repro soak: --scenarios must be >= 1", file=sys.stderr)
        return 2
    if args.minutes is not None and args.minutes <= 0:
        print("repro soak: --minutes must be positive", file=sys.stderr)
        return 2
    result = run_soak(seed=args.seed, scenarios=args.scenarios,
                      minutes=args.minutes, shrink_dir=args.shrink)
    payload = result.to_json()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"report -> {args.out}", file=sys.stderr)
    if args.json:
        print(payload)
    else:
        print(soak_tables(result.report()))
    return 1 if result.report()["summary"]["violations"] else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "diff":
        divergence = diff_files(args.a, args.b)
        if divergence is None:
            print("traces are identical")
            return 0
        print(format_divergence(divergence, label_a=args.a, label_b=args.b))
        return 1
    if args.trace_command == "summary":
        print(summarize(load_trace_file(args.path)))
        return 0
    if args.trace_command == "validate":
        with open(args.path) as handle:
            obj = json.load(handle)
        problems = validate_chrome(obj)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        n_events = len(obj["traceEvents"])
        print(f"{args.path}: valid Chrome trace ({n_events} events)")
        return 0
    raise ValueError(f"unknown trace command {args.trace_command!r}")


_COMMANDS = {
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "eman": _cmd_eman,
    "opportunistic": _cmd_opportunistic,
    "describe": _cmd_describe,
    "bench": _cmd_bench,
    "faults": _cmd_faults,
    "metasched": _cmd_metasched,
    "soak": _cmd_soak,
    "lint": _cmd_lint,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BrokenPipeError:
        # Downstream closed the pipe (`repro lint --list-rules | head`);
        # exit quietly the way POSIX filters do, parking stdout on
        # devnull so the interpreter's flush-at-exit stays silent too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except Exception as exc:  # noqa: BLE001 — CLI boundary
        print(f"repro {args.command}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
