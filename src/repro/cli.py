"""Command-line interface: regenerate the paper's experiments.

::

    python -m repro fig3  --sizes 6000,8000,10000
    python -m repro fig4  --policy gang --stats
    python -m repro eman
    python -m repro opportunistic
    python -m repro describe path/to/grid.dml
    python -m repro bench --compare
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .experiments.eman_demo import run_eman_demo
from .experiments.fig3_qr import DEFAULT_SIZES, run_fig3
from .experiments.fig4_swap import run_fig4
from .experiments.opportunistic import run_opportunistic
from .experiments.substrate import run_substrate_bench
from .experiments.common import format_table
from .microgrid.dml import parse_grid
from .rescheduling.swapping import SWAP_POLICIES
from .sim.kernel import Simulator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GrADS scheduling/rescheduling reproduction (IPPS 2004)")
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", help="Figure 3: QR stop/restart sweep")
    fig3.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)),
                      help="comma-separated matrix sizes")
    fig3.add_argument("--nb", type=int, default=200, help="panel width")
    fig3.add_argument("--no-decisions", action="store_true",
                      help="skip the default-mode decision replay")

    fig4 = sub.add_parser("fig4", help="Figure 4: N-body process swapping")
    fig4.add_argument("--policy", default="gang",
                      choices=sorted(SWAP_POLICIES) + ["none"])
    fig4.add_argument("--iterations", type=int, default=120)
    fig4.add_argument("--stats", action="store_true",
                      help="print kernel/substrate perf counters after the run")

    sub.add_parser("eman", help="Section 3.3: EMAN workflow demo")

    opp = sub.add_parser("opportunistic",
                         help="Section 4.1.1: opportunistic rescheduling")
    opp.add_argument("--disable", action="store_true",
                     help="run the baseline without the daemon")

    describe = sub.add_parser("describe",
                              help="validate and summarize a DML topology")
    describe.add_argument("path", help="DML file")

    bench = sub.add_parser(
        "bench", help="substrate stress benchmark (64 flows / 32 hosts)")
    bench.add_argument("--transfers", type=int, default=1500,
                       help="total transfers to complete")
    bench.add_argument("--allocator", default="incremental",
                       choices=["incremental", "reference"])
    bench.add_argument("--compare", action="store_true",
                       help="run both allocators and report the speedup")
    return parser


def _cmd_fig3(args: argparse.Namespace) -> int:
    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s)
    except ValueError:
        print(f"bad --sizes value: {args.sizes!r}", file=sys.stderr)
        return 2
    if not sizes:
        print("need at least one size", file=sys.stderr)
        return 2
    result = run_fig3(sizes=sizes, nb=args.nb,
                      with_decisions=not args.no_decisions)
    print(result.to_table())
    if not args.no_decisions:
        print()
        print(result.decision_table())
        print(f"\ncrossover size: {result.crossover_size()}")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    if args.policy == "none":
        result = run_fig4(n_iterations=args.iterations, with_swapping=False)
    else:
        result = run_fig4(n_iterations=args.iterations, policy=args.policy)
    print(result.to_series())
    print(f"\nswaps: {[round(t, 1) for t in result.swap_times]} "
          f"-> {result.swapped_to}")
    print(f"finished at t={result.finished_at:.1f} s "
          f"(policy: {result.policy})")
    if args.stats:
        print("\nsubstrate counters:")
        for key, value in result.stats.items():
            if isinstance(value, float) and not value.is_integer():
                print(f"  {key}: {value:.3f}")
            else:
                print(f"  {key}: {int(value)}")
    return 0


def _cmd_eman(_args: argparse.Namespace) -> int:
    result = run_eman_demo()
    print(result.to_table())
    print(f"\nexecuted {result.chosen_heuristic}: "
          f"{result.measured_makespan:.1f} s on {result.resources_used} "
          f"resources, ISAs {result.isas_used}")
    return 0


def _cmd_opportunistic(args: argparse.Namespace) -> int:
    result = run_opportunistic(enable=not args.disable)
    print(format_table(
        ["A done (s)", "B done (s)", "B migrations", "B final cluster"],
        [[result.a_finished_at, result.b_finished_at,
          result.b_migrations, result.b_final_cluster]],
        title=("opportunistic daemon "
               + ("off" if args.disable else "on"))))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    try:
        with open(args.path) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    sim = Simulator()
    grid = parse_grid(text, sim)
    rows = []
    for name, cluster in sorted(grid.clusters.items()):
        rows.append([name, len(cluster), cluster.arch.name,
                     f"{cluster.arch.mflops:.0f}", cluster.arch.isa])
    for name, host in sorted(grid.standalone_hosts.items()):
        rows.append([name, 1, host.arch.name,
                     f"{host.arch.mflops:.0f}", host.arch.isa])
    print(format_table(
        ["cluster/host", "nodes", "arch", "Mflop/s per node", "isa"],
        rows, title=f"{args.path}: {len(grid.all_hosts())} hosts"))
    return 0


def _bench_row(stats: dict) -> List[str]:
    return [str(stats["allocator"]),
            f"{stats['wall_seconds']:.3f}",
            f"{stats['events_per_sec']:,.0f}",
            f"{int(stats['events_processed'])}",
            f"{int(stats['reallocations'])}",
            f"{int(stats['wakeups_cancelled'])}",
            f"{stats['route_cache_hit_rate']:.3f}"]


def _cmd_bench(args: argparse.Namespace) -> int:
    allocators = (["incremental", "reference"] if args.compare
                  else [args.allocator])
    results = [run_substrate_bench(total_transfers=args.transfers,
                                   allocator=alloc)
               for alloc in allocators]
    print(format_table(
        ["allocator", "wall (s)", "events/sec", "events", "reallocs",
         "stale wakeups", "route hit rate"],
        [_bench_row(stats) for stats in results],
        title=f"substrate benchmark: 64 flows / 32 hosts, "
              f"{args.transfers} transfers"))
    if args.compare:
        speedup = results[1]["wall_seconds"] / results[0]["wall_seconds"]
        print(f"\nincremental allocator speedup: {speedup:.2f}x")
    return 0


_COMMANDS = {
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "eman": _cmd_eman,
    "opportunistic": _cmd_opportunistic,
    "describe": _cmd_describe,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
