"""The N-body simulation used in the process-swapping demo (§4.2).

A direct-sum N-body code: every iteration each rank computes the
interactions of its body share against all bodies, then allgathers the
updated positions.  It is launched as a :class:`SwappableJob` — more
machines than active ranks — and calls the swap ``sync_point`` at every
iteration boundary, which is where queued swaps take effect.

Progress (iteration index vs virtual time) is recorded exactly as in
Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..microgrid.host import Host
from ..microgrid.network import Topology
from ..mpi.comm import MpiContext
from ..mpi.swap import SwappableJob
from ..sim.events import Event
from ..sim.kernel import Simulator
from .kernels import BYTES_PER_ELEMENT, nbody_state_bytes, nbody_step_mflop

__all__ = ["NBodySimulation", "ProgressPoint"]


@dataclass(frozen=True)
class ProgressPoint:
    """One (time, iteration) sample of application progress."""

    time: float
    iteration: int


class NBodySimulation:
    """A swappable N-body run over a machine pool."""

    def __init__(self, sim: Simulator, topology: Topology,
                 pool: Sequence[Host], active_n: int,
                 n_bodies: int, n_iterations: int) -> None:
        if n_bodies < 1 or n_iterations < 1:
            raise ValueError("need at least one body and one iteration")
        self.sim = sim
        self.n_bodies = n_bodies
        self.n_iterations = n_iterations
        self.job = SwappableJob(
            sim, topology, list(pool), active_n=active_n,
            state_bytes_per_rank=nbody_state_bytes(n_bodies) / active_n,
            name=f"nbody-{n_bodies}")
        #: Figure 4 series: appended when the slowest rank finishes an iter
        self.progress: List[ProgressPoint] = []
        self._iter_reports: dict = {}
        self.finished: Optional[Event] = None

    def step_mflop_per_rank(self) -> float:
        return nbody_step_mflop(self.n_bodies) / self.job.active_n

    def exchange_bytes(self) -> float:
        """Per-rank allgather payload: its share of positions (3 doubles)."""
        return 3 * self.n_bodies * BYTES_PER_ELEMENT / self.job.active_n

    def launch(self) -> Event:
        if self.finished is not None:
            raise RuntimeError("simulation already launched")
        self.job.job.on_iteration(self._on_iteration)
        self.finished = self.job.launch(self._body)
        return self.finished

    def _on_iteration(self, rank: int, iteration: int, seconds: float) -> None:
        self._iter_reports[iteration] = self._iter_reports.get(iteration, 0) + 1
        if self._iter_reports[iteration] == self.job.active_n:
            self.progress.append(ProgressPoint(time=self.sim.now,
                                               iteration=iteration + 1))

    def _body(self, ctx: MpiContext):
        work = self.step_mflop_per_rank()
        payload = self.exchange_bytes()
        for iteration in range(self.n_iterations):
            t0 = self.sim.now
            yield ctx.compute(work, tag=f"iter{iteration}")
            yield from ctx.comm.allgather(ctx.rank, nbytes=payload)
            yield from self.job.sync_point(ctx)
            ctx.report_iteration(iteration, self.sim.now - t0)
        return "done"
