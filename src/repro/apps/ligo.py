"""A LIGO-style pulsar-search workflow.

Section 3 opens with "The LIGO pulsar search and several image
processing applications are examples of workflow applications that
harness the power of the Grid."  This module provides that second
exemplar: the standard LIGO periodic-source pipeline of the GrADS era —
short Fourier transforms over the interferometer strain channel, a
demodulated search over sky positions and frequency bands
(embarrassingly parallel and by far the dominant cost), candidate
sifting, and a coincidence step against a second detector's candidate
list.

Costs are classic FFT/demodulation counts: an SFT of length L costs
~5 L log2 L flops; searching one (sky point, band) template costs a few
ops per SFT bin summed over the observation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..perfmodel.model import AnalyticComponentModel
from ..scheduler.workflow import Workflow, WorkflowComponent
from .kernels import BYTES_PER_ELEMENT

__all__ = ["LigoParameters", "ligo_pulsar_search_workflow", "LIGO_STAGES"]

LIGO_STAGES = ("frame_extract", "make_sfts", "pulsar_search",
               "sift_candidates", "coincidence")


@dataclass(frozen=True)
class LigoParameters:
    """Size knobs of one pulsar-search run."""

    observation_hours: float = 10.0
    sample_rate_hz: float = 16384.0
    sft_length_s: float = 1800.0  # standard 30-minute SFTs
    n_sky_points: int = 500
    n_frequency_bands: int = 20
    band_bins: int = 200_000  # frequency bins searched per band

    def __post_init__(self) -> None:
        if self.observation_hours <= 0 or self.sample_rate_hz <= 0:
            raise ValueError("implausible observation parameters")
        if self.sft_length_s <= 0 or self.band_bins < 1:
            raise ValueError("implausible SFT parameters")
        if self.n_sky_points < 1 or self.n_frequency_bands < 1:
            raise ValueError("need at least one sky point and one band")

    @property
    def n_sfts(self) -> int:
        return max(int(self.observation_hours * 3600 / self.sft_length_s), 1)

    @property
    def sft_samples(self) -> int:
        return int(self.sft_length_s * self.sample_rate_hz)

    # -- per-stage operation counts (Mflop) ------------------------------------
    def frame_extract_mflop(self) -> float:
        """Decode + calibrate the raw strain: ~20 ops per sample."""
        samples = self.observation_hours * 3600 * self.sample_rate_hz
        return 20.0 * samples / 1e6

    def make_sfts_mflop(self) -> float:
        """One FFT per SFT segment: 5 L log2 L each."""
        fft = 5.0 * self.sft_samples * math.log2(self.sft_samples)
        return self.n_sfts * fft / 1e6

    def pulsar_search_mflop(self) -> float:
        """Demodulated search: ~10 ops per (template, SFT-bin) pair.

        Dominant by orders of magnitude; embarrassingly parallel over
        (sky point, band) templates."""
        templates = self.n_sky_points * self.n_frequency_bands
        return 10.0 * templates * self.n_sfts * self.band_bins / 1e6

    def sift_mflop(self) -> float:
        """Sort/threshold the candidate lists: ~100 ops per candidate."""
        return 100.0 * self.expected_candidates() / 1e6

    def coincidence_mflop(self) -> float:
        """Cross-match against the second detector: ~300 ops/candidate."""
        return 300.0 * self.expected_candidates() / 1e6

    def expected_candidates(self) -> float:
        """~1 candidate per 1e4 searched bins survives thresholding."""
        searched = (self.n_sky_points * self.n_frequency_bands
                    * self.band_bins)
        return max(searched / 1e4, 1.0)

    # -- data volumes --------------------------------------------------------------
    def frame_bytes(self) -> float:
        samples = self.observation_hours * 3600 * self.sample_rate_hz
        return samples * 2  # 16-bit raw frames

    def sft_db_bytes(self) -> float:
        return self.n_sfts * self.sft_samples * BYTES_PER_ELEMENT

    def candidate_bytes(self) -> float:
        return self.expected_candidates() * 32  # packed records


def ligo_pulsar_search_workflow(params: LigoParameters,
                                search_tasks: int = 40,
                                sft_tasks: int = 8) -> Workflow:
    """Build the pipeline as a schedulable :class:`Workflow`."""
    if search_tasks < 1 or sft_tasks < 1:
        raise ValueError("task counts must be >= 1")
    wf = Workflow("ligo-pulsar-search")

    def add(name: str, mflop: float, n_tasks: int,
            input_bytes: float, output_bytes: float) -> None:
        wf.add_component(WorkflowComponent(
            name=name,
            model=AnalyticComponentModel(mflop_fn=lambda _n, m=mflop: m),
            problem_size=float(params.n_sky_points),
            n_tasks=n_tasks,
            input_bytes_per_task=input_bytes / n_tasks,
            output_bytes_per_task=output_bytes / n_tasks,
        ))

    add("frame_extract", params.frame_extract_mflop(), 1,
        params.frame_bytes(), params.frame_bytes() * 4)
    add("make_sfts", params.make_sfts_mflop(), sft_tasks,
        params.frame_bytes() * 4, params.sft_db_bytes())
    add("pulsar_search", params.pulsar_search_mflop(), search_tasks,
        params.sft_db_bytes(), params.candidate_bytes())
    add("sift_candidates", params.sift_mflop(), 1,
        params.candidate_bytes(), params.candidate_bytes() / 10)
    add("coincidence", params.coincidence_mflop(), 1,
        params.candidate_bytes() / 5, params.candidate_bytes() / 50)

    for producer, consumer in zip(LIGO_STAGES, LIGO_STAGES[1:]):
        wf.add_dependence(producer, consumer)
    return wf
