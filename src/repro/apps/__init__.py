"""The paper's applications: QR, N-body, and the EMAN workflow."""

from .eman import EMAN_STAGES, EmanParameters, eman_refinement_workflow
from .ligo import LIGO_STAGES, LigoParameters, ligo_pulsar_search_workflow
from .kernels import (
    BYTES_PER_ELEMENT,
    INTERACTION_FLOPS,
    nbody_state_bytes,
    nbody_step_mflop,
    qr_matrix_bytes,
    qr_panel_bytes,
    qr_step_mflop,
    qr_steps,
    qr_total_mflop,
)
from .nbody import NBodySimulation, ProgressPoint
from .qr import (
    PERF_MODELING_SECONDS,
    RESOURCE_SELECTION_SECONDS,
    QrBenchmark,
    QrRun,
    qr_cop,
)

__all__ = [
    "BYTES_PER_ELEMENT",
    "EMAN_STAGES",
    "EmanParameters",
    "INTERACTION_FLOPS",
    "LIGO_STAGES",
    "LigoParameters",
    "NBodySimulation",
    "PERF_MODELING_SECONDS",
    "ProgressPoint",
    "QrBenchmark",
    "QrRun",
    "RESOURCE_SELECTION_SECONDS",
    "eman_refinement_workflow",
    "ligo_pulsar_search_workflow",
    "nbody_state_bytes",
    "nbody_step_mflop",
    "qr_cop",
    "qr_matrix_bytes",
    "qr_panel_bytes",
    "qr_step_mflop",
    "qr_steps",
    "qr_total_mflop",
]
