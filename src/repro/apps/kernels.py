"""Analytic cost kernels for the paper's applications.

These are the closed-form operation counts that the §3.2 fitting
pipeline recovers from instrumented runs; tests cross-check the fitted
models against these formulas.

QR: right-looking blocked Householder QR of an N x N matrix does
~(4/3) N^3 flops.  Step j (panel width nb, trailing size m = N - j*nb)
costs ~4 m^2 nb flops: the trailing-matrix update dominates.

N-body: a direct-sum step over B bodies is B^2 pairwise interactions
at ~INTERACTION_FLOPS flops each.
"""

from __future__ import annotations

import math

__all__ = [
    "qr_total_mflop",
    "qr_steps",
    "qr_step_mflop",
    "qr_panel_bytes",
    "qr_matrix_bytes",
    "nbody_step_mflop",
    "nbody_state_bytes",
    "INTERACTION_FLOPS",
    "BYTES_PER_ELEMENT",
]

BYTES_PER_ELEMENT = 8  # double precision
INTERACTION_FLOPS = 20.0  # flops per body-body interaction


# -- ScaLAPACK-style QR -------------------------------------------------------
def qr_total_mflop(n: float) -> float:
    """Total work of QR on an n x n matrix, in Mflop."""
    if n < 0:
        raise ValueError("matrix size must be non-negative")
    return (4.0 / 3.0) * n ** 3 / 1e6


def qr_steps(n: int, nb: int) -> int:
    """Number of panel steps for matrix size n and block size nb."""
    if n < 0 or nb <= 0:
        raise ValueError("need n >= 0 and nb > 0")
    return int(math.ceil(n / nb)) if n else 0


def qr_step_mflop(n: int, nb: int, step: int) -> float:
    """Work of panel step ``step`` (0-based), in Mflop.

    4 * m^2 * nb with m the trailing-matrix size; the per-step series
    sums to ~(4/3) n^3 like the true factorization.
    """
    total_steps = qr_steps(n, nb)
    if not 0 <= step < max(total_steps, 1):
        raise ValueError(f"step {step} out of range for {total_steps} steps")
    m = n - step * nb
    width = min(nb, m)
    return 4.0 * m * m * width / 1e6


def qr_panel_bytes(n: int, nb: int, step: int) -> float:
    """Bytes of the factored panel broadcast at step ``step``."""
    m = n - step * nb
    width = min(nb, max(m, 0))
    return max(m, 0) * width * BYTES_PER_ELEMENT


def qr_matrix_bytes(n: int) -> float:
    """Checkpoint volume: the matrix A plus the right-hand side B."""
    return (n * n + n) * BYTES_PER_ELEMENT


# -- N-body ---------------------------------------------------------------
def nbody_step_mflop(n_bodies: int) -> float:
    """Work of one direct-sum N-body step, in Mflop."""
    if n_bodies < 0:
        raise ValueError("body count must be non-negative")
    return INTERACTION_FLOPS * n_bodies * n_bodies / 1e6


def nbody_state_bytes(n_bodies: int) -> float:
    """Positions + velocities + masses: 7 doubles per body."""
    return 7 * n_bodies * BYTES_PER_ELEMENT
