"""The ScaLAPACK QR factorization benchmark (§4.1.2).

An SRS-instrumented, block-cyclic, bulk-synchronous QR factorization:
each panel step factors a panel, broadcasts it, and updates the
trailing matrix; the matrix A and right-hand side B are registered with
SRS, the stop flag is polled at step boundaries, and a stop triggers a
consistent checkpoint to local IBP depots.

:class:`QrRun` is the full GrADS lifecycle driver — resource selection,
performance modeling, binding, launching, monitoring, migration — and
implements :class:`~repro.rescheduling.rescheduler.MigratableApp`, so
the generic rescheduler can move it.  Its phase-time ledger is exactly
the stacked-bar breakdown of Figure 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..binder.binder import DistributedBinder
from ..binder.launcher import MPI_STARTUP_SECONDS
from ..cop.cop import CompilationPackage, ConfigurableObjectProgram
from ..cop.mapper import ClusterMapper
from ..contracts.monitor import ContractMonitor
from ..gis.directory import GridInformationService
from ..microgrid.dml import Grid
from ..microgrid.host import HostFailure
from ..mpi.comm import MpiContext, MpiJob
from ..nws.service import NetworkWeatherService
from ..perfmodel.model import AnalyticComponentModel
from ..rescheduling.rescheduler import MigratableApp
from ..rescheduling.rss import RuntimeSupportSystem
from ..rescheduling.srs import RegisteredData, SRSLibrary
from ..sim.events import Event
from ..sim.kernel import Simulator
from .kernels import (
    BYTES_PER_ELEMENT,
    qr_matrix_bytes,
    qr_panel_bytes,
    qr_step_mflop,
    qr_steps,
    qr_total_mflop,
)

__all__ = ["QrBenchmark", "QrRun", "qr_cop", "PERF_MODELING_SECONDS",
           "RESOURCE_SELECTION_SECONDS"]

#: fixed service costs charged per (re)schedule, visible as the small
#: "performance modeling" and "resource selection" bars in Figure 3
PERF_MODELING_SECONDS = 3.0
RESOURCE_SELECTION_SECONDS = 2.0


@dataclass(frozen=True)
class QrBenchmark:
    """Static description of one QR problem."""

    n: int
    nb: int = 64

    def __post_init__(self) -> None:
        if self.n < 1 or self.nb < 1:
            raise ValueError("need n >= 1 and nb >= 1")

    @property
    def steps(self) -> int:
        return qr_steps(self.n, self.nb)

    @property
    def checkpoint_bytes(self) -> float:
        return qr_matrix_bytes(self.n)

    def step_mflop(self, step: int) -> float:
        return qr_step_mflop(self.n, self.nb, step)

    def remaining_mflop(self, from_step: int) -> float:
        return sum(self.step_mflop(j) for j in range(from_step, self.steps))

    def registered_data(self) -> List[RegisteredData]:
        """Matrix A and vector B, dealt block-cyclically by columns."""
        col_block_bytes = self.n * self.nb * BYTES_PER_ELEMENT
        return [
            RegisteredData("A", total_bytes=float(self.n * self.n
                                                  * BYTES_PER_ELEMENT),
                           block_bytes=float(col_block_bytes)),
            RegisteredData("B", total_bytes=float(self.n * BYTES_PER_ELEMENT),
                           block_bytes=float(self.nb * BYTES_PER_ELEMENT)),
        ]


def qr_cop(benchmark: QrBenchmark, n_procs: int = 4
           ) -> ConfigurableObjectProgram:
    """Package the benchmark as a COP."""
    model = AnalyticComponentModel(
        mflop_fn=lambda n: qr_total_mflop(n),
        input_fn=lambda n: qr_matrix_bytes(int(n)),
        output_fn=lambda n: qr_matrix_bytes(int(n)),
        memory_fn=lambda n: 3.0 * n * n * BYTES_PER_ELEMENT / max(n_procs, 1),
    )
    return ConfigurableObjectProgram(
        name=f"scalapack-qr-{benchmark.n}",
        body_factory=lambda run: run.make_body(),
        mapper=ClusterMapper(),
        model=model,
        package=CompilationPackage(required_packages=("scalapack", "mpi")),
        n_procs=n_procs,
    )


class QrRun(MigratableApp):
    """One managed execution of the QR benchmark on a grid."""

    def __init__(self, sim: Simulator, grid: Grid,
                 gis: GridInformationService, nws: NetworkWeatherService,
                 binder: DistributedBinder, rss: RuntimeSupportSystem,
                 srs: SRSLibrary, benchmark: QrBenchmark,
                 initial_hosts: Sequence[str],
                 monitor: Optional[ContractMonitor] = None,
                 checkpoint_every: Optional[int] = None,
                 max_restart_attempts: int = 8,
                 retry_backoff_seconds: float = 5.0) -> None:
        """``checkpoint_every`` enables periodic SRS checkpoints every k
        panel steps, which is what makes crash recovery (the VGrADS
        fault-tolerance extension) possible: after a host failure the
        manager restarts from the last periodic checkpoint instead of
        from scratch.

        ``max_restart_attempts`` bounds *consecutive* failed restart
        attempts (the counter resets each time a segment launches
        successfully), so a run wedged against dead resources gives up
        with a RuntimeError instead of spinning forever;
        ``retry_backoff_seconds`` is the base of the exponential
        backoff between those attempts."""
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if max_restart_attempts < 1:
            raise ValueError("max_restart_attempts must be >= 1")
        if retry_backoff_seconds <= 0:
            raise ValueError("retry_backoff_seconds must be positive")
        self.sim = sim
        self.grid = grid
        self.gis = gis
        self.nws = nws
        self.binder = binder
        self.rss = rss
        self.srs = srs
        self.benchmark = benchmark
        self.name = f"qr-{benchmark.n}"
        self.monitor = monitor
        self._hosts: List[str] = list(initial_hosts)
        self._cop = qr_cop(benchmark, n_procs=len(self._hosts))
        for data in benchmark.registered_data():
            srs.register_data(data)
        self.checkpoint_every = checkpoint_every
        self.max_restart_attempts = max_restart_attempts
        self.retry_backoff_seconds = retry_backoff_seconds
        #: completed panel steps (all ranks past this step)
        self.progress = 0
        #: Figure 3 ledger: phase name -> seconds
        self.timings: Dict[str, float] = {}
        self.migrations = 0
        #: host failures the manager recovered from
        self.failures_recovered = 0
        #: per-recovery log: {"segment", "crashed_at", "restarted_at"}
        self.recoveries: List[Dict[str, float]] = []
        #: backoff waits taken because no candidate resources existed
        self.retry_waits = 0
        self._migration_target: Optional[List[str]] = None
        self._migration_done: Optional[Event] = None
        self._finished: Optional[Event] = None
        self._job: Optional[MpiJob] = None
        self._ckpt_write_secs: Dict[int, float] = {}
        self._ckpt_read_secs: Dict[int, float] = {}

    # -- MigratableApp interface ---------------------------------------------------
    def current_hosts(self) -> List[str]:
        return list(self._hosts)

    def propose_hosts(self, exclude: Sequence[str] = ()) -> List[str]:
        """Best whole cluster by predicted remaining time (the COP's
        mapper specialized to the app's own cost model)."""
        banned = set(exclude)
        best_hosts: Optional[List[str]] = None
        best_seconds = math.inf
        by_cluster: Dict[str, List[str]] = {}
        for record in self.gis.resources():
            if record.cluster is None or record.name in banned:
                continue
            if not self.gis.host(record.name).alive:
                continue
            by_cluster.setdefault(record.cluster, []).append(record.name)
        for cluster in sorted(by_cluster):
            hosts = sorted(by_cluster[cluster])
            if len(hosts) < 2:
                continue
            seconds = self.predicted_remaining_seconds(hosts)
            if seconds < best_seconds:
                best_seconds = seconds
                best_hosts = hosts
        if best_hosts is None:
            raise RuntimeError("no candidate cluster for QR")
        return best_hosts

    def predicted_remaining_seconds(self, host_names: Sequence[str]) -> float:
        """Sum the per-step model over the remaining panel steps."""
        if not host_names:
            return math.inf
        return sum(self.predicted_step_seconds(j, host_names)
                   for j in range(self.progress, self.benchmark.steps))

    def predicted_step_seconds(self, step: int,
                               host_names: Sequence[str],
                               availability: Optional[Dict[str, float]] = None
                               ) -> float:
        """Contract prediction for one step on the given hosts.

        Bulk-synchronous: the slowest host gates each step; the panel
        broadcast crosses the cluster fabric log2(P) times.

        ``availability`` freezes the CPU forecasts (contract terms are
        negotiated once, at launch); None queries NWS live, which is
        what rescheduling cost/benefit evaluation wants.
        """
        p = len(host_names)
        speeds = []
        for name in host_names:
            record = self.gis.lookup(name)
            avail = (availability[name] if availability is not None
                     else self.nws.cpu_forecast(name))
            if avail <= 0:
                return math.inf
            speeds.append(record.mflops * avail)
        slowest = min(speeds)
        flop_seconds = self.benchmark.step_mflop(step) / p / slowest
        comm_seconds = 0.0
        if p > 1:
            panel = qr_panel_bytes(self.benchmark.n, self.benchmark.nb, step)
            pair = self.nws.transfer_forecast(host_names[0], host_names[1],
                                              panel)
            comm_seconds = pair * math.ceil(math.log2(p))
        return flop_seconds + comm_seconds

    def migration_cost_estimate(self, new_hosts: Sequence[str]) -> float:
        """Checkpoint write + cross-grid read/redistribution + restart."""
        data = self.benchmark.checkpoint_bytes
        p = max(len(self._hosts), 1)
        q = max(len(new_hosts), 1)
        write_seconds = (data / p) / self._min_disk_bw(self._hosts, "write")
        # Read: every byte moves from the old depots to the new hosts.
        # The old ranks stream in parallel, but cross-site streams share
        # the same WAN path, so the aggregate is volume / path bandwidth.
        bw = self.nws.bandwidth_forecast(self._hosts[0], new_hosts[0])
        if self._hosts[0].split(".")[0] == new_hosts[0].split(".")[0]:
            read_seconds = (data / q) / self._min_disk_bw(new_hosts, "read")
        else:
            read_seconds = data / bw
        overhead = (RESOURCE_SELECTION_SECONDS + PERF_MODELING_SECONDS
                    + self._bind_estimate(new_hosts) + MPI_STARTUP_SECONDS)
        return write_seconds + read_seconds + overhead

    def _min_disk_bw(self, hosts: Sequence[str], kind: str) -> float:
        values = []
        for name in hosts:
            host = self.gis.host(name)
            values.append(host.disk_write_bw if kind == "write"
                          else host.disk_read_bw)
        return min(values) if values else 30e6

    def _bind_estimate(self, hosts: Sequence[str]) -> float:
        pkg = self._cop.package
        slowest = min(self.gis.lookup(name).mflops for name in hosts)
        return (pkg.configure_seconds + 0.5
                + pkg.compile_mflop / slowest
                + self.nws.transfer_forecast(self.binder.package_source,
                                             hosts[0], pkg.ir_bytes))

    def migrate(self, new_hosts: Sequence[str]) -> Event:
        """Stop/checkpoint, then restart on ``new_hosts`` (§4.1)."""
        if self._migration_target is not None:
            raise RuntimeError("migration already in progress")
        self._migration_target = list(new_hosts)
        self._migration_done = self.sim.event(name=f"{self.name}:migrated")
        if self.monitor is not None:
            self.monitor.suspend()
        self.rss.request_stop()
        return self._migration_done

    @property
    def finished(self) -> Optional[Event]:
        return self._finished

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> Event:
        """Run the whole GrADS cycle; the event triggers at completion
        with the phase-time ledger as its value."""
        if self._finished is not None:
            raise RuntimeError("QR run already started")
        self._finished = self.sim.process(self._lifecycle(),
                                          name=f"{self.name}:manager")
        return self._finished

    def _lifecycle(self):
        segment = 1
        attempt = 0  # consecutive failed restarts (resets on launch)
        while True:
            hosts = self._hosts
            suffix = f"_{segment}"
            seg_t0 = self.sim.now
            job: Optional[MpiJob] = None
            launch_t0: Optional[float] = None
            try:
                # Resource selection + performance modeling service time.
                yield self.sim.timeout(RESOURCE_SELECTION_SECONDS)
                self.timings[f"resource_selection{suffix}"] = \
                    RESOURCE_SELECTION_SECONDS
                yield self.sim.timeout(PERF_MODELING_SECONDS)
                self.timings[f"performance_modeling{suffix}"] = \
                    PERF_MODELING_SECONDS
                # Grid overhead: the distributed binder.
                t0 = self.sim.now
                report = yield self.binder.bind(self._cop, hosts)
                self.timings[f"grid_overhead{suffix}"] = self.sim.now - t0
                # Application start: MPI synchronization.
                t0 = self.sim.now
                yield self.sim.timeout(MPI_STARTUP_SECONDS)
                self.timings[f"application_start{suffix}"] = \
                    self.sim.now - t0
                # Renegotiate the contract for this segment's resources,
                # freezing the CPU availability terms as of launch time —
                # a contract that tracked live NWS data would adapt itself
                # to any slowdown and never register a violation.
                if self.monitor is not None:
                    frozen = {name: self.nws.cpu_forecast(name)
                              for name in hosts}
                    self.monitor.contract.update_terms(
                        lambda step, h=tuple(hosts), a=frozen:
                        max(self.predicted_step_seconds(step, list(h),
                                                        availability=a),
                            1e-9))
                    self.monitor.resume()
                # Run the application segment.
                self._ckpt_write_secs.clear()
                self._ckpt_read_secs.clear()
                live_hosts = [self.gis.host(name) for name in hosts]
                job = MpiJob(self.sim, self.grid.topology, live_hosts,
                             name=f"{self.name}:seg{segment}")
                self._job = job
                if self.monitor is not None:
                    self.monitor.attach_job(job)
                self._track_progress(job)
                launch_t0 = self.sim.now
                done = job.launch(self.make_body())
                attempt = 0
                if self.recoveries and \
                        self.recoveries[-1].get("restarted_at") is None:
                    self.recoveries[-1]["restarted_at"] = self.sim.now
                yield done
            except HostFailure as exc:
                # Fault tolerance (the VGrADS extension): reap any
                # surviving ranks, drop the dead machines, and restart
                # the segment from the last SRS checkpoint.  The try
                # covers the *whole* segment — a target host dying
                # during bind or launch lands here too, instead of
                # killing the manager process.
                attempt += 1
                yield from self._recover(exc, segment, job,
                                         seg_t0 if launch_t0 is None
                                         else launch_t0, attempt)
                segment += 1
                continue
            elapsed = self.sim.now - launch_t0
            ckpt_read = max(self._ckpt_read_secs.values(), default=0.0)
            ckpt_write = max(self._ckpt_write_secs.values(), default=0.0)
            if ckpt_read > 0:
                self.timings[f"checkpoint_read_{segment}"] = ckpt_read
            self.timings[f"application_duration{suffix}"] = \
                elapsed - ckpt_read - ckpt_write
            if self._migration_target is None:
                return self.timings
            # Migration: account the write, switch hosts, loop.
            self.timings[f"checkpoint_write_{segment}"] = ckpt_write
            self._hosts = self._migration_target
            self._migration_target = None
            self.rss.clear_stop()
            self.migrations += 1
            segment += 1
            done_event, self._migration_done = self._migration_done, None
            done_event.succeed(self._hosts)

    def _recover(self, exc: HostFailure, segment: int,
                 job: Optional[MpiJob], billed_from: float, attempt: int):
        """Clean up after a HostFailure and pick restart resources.

        Generator (it may sleep between resource-selection retries);
        raises RuntimeError once ``max_restart_attempts`` consecutive
        attempts could not produce a running segment.
        """
        if job is not None:
            for proc in job._procs:
                proc.kill()
        if self.monitor is not None:
            self.monitor.suspend()
        self.timings[f"failure_recovery_{segment}"] = \
            self.timings.get(f"failure_recovery_{segment}", 0.0) \
            + (self.sim.now - billed_from)
        self.failures_recovered += 1
        self.recoveries.append({"segment": float(segment),
                                "crashed_at": self.sim.now,
                                "restarted_at": None})
        trace = self.sim.trace
        if trace is not None and "fault" in trace.active:
            trace.instant("fault", "restart", app=self.name,
                          segment=segment, host=exc.host_name,
                          attempt=attempt)
        # A migration that was in flight is dead: fail its event so the
        # rescheduler abandons the attempt (unblocking future
        # rescheduling) instead of waiting forever.
        self.rss.clear_stop()
        self._migration_target = None
        done_event, self._migration_done = self._migration_done, None
        if done_event is not None and not done_event.triggered:
            done_event.fail(exc)
            if trace is not None and "fault" in trace.active:
                trace.instant("fault", "migration-aborted", app=self.name,
                              segment=segment)
        if attempt > self.max_restart_attempts:
            raise RuntimeError(
                f"{self.name}: giving up after {attempt - 1} consecutive "
                f"failed restart attempts")
        # Exponential backoff on repeated consecutive failures: do not
        # hammer a grid that keeps killing us the moment we launch.
        if attempt >= 2:
            wait = self.retry_backoff_seconds * 2 ** (attempt - 2)
            self.retry_waits += 1
            if trace is not None and "fault" in trace.active:
                trace.instant("fault", "retry-wait", app=self.name,
                              seconds=wait, attempt=attempt)
            yield self.sim.timeout(wait)
        # Pick restart resources, waiting out total outages: when every
        # candidate cluster is down the mapper raises, and we retry on
        # the same bounded/backed-off budget until something recovers.
        while True:
            dead = [name for name in self._hosts
                    if not self.gis.host(name).alive]
            try:
                self._hosts = self.propose_hosts(exclude=dead)
                return
            except RuntimeError:
                attempt += 1
                if attempt > self.max_restart_attempts:
                    raise RuntimeError(
                        f"{self.name}: no candidate resources after "
                        f"{self.max_restart_attempts} attempts")
                wait = self.retry_backoff_seconds * 2 ** max(attempt - 2, 0)
                self.retry_waits += 1
                if trace is not None and "fault" in trace.active:
                    trace.instant("fault", "retry-wait", app=self.name,
                                  seconds=wait, attempt=attempt)
                yield self.sim.timeout(wait)

    def _track_progress(self, job: MpiJob) -> None:
        per_step: Dict[int, int] = {}

        def on_iteration(rank: int, iteration: int, seconds: float) -> None:
            per_step[iteration] = per_step.get(iteration, 0) + 1
            if per_step[iteration] == job.size:
                self.progress = max(self.progress, iteration + 1)

        job.on_iteration(on_iteration)

    # -- the instrumented rank body ------------------------------------------------
    def make_body(self):
        benchmark = self.benchmark
        srs = self.srs

        def body(ctx: MpiContext):
            n_procs = ctx.comm.size
            t0 = self.sim.now
            progress = yield from srs.restore(ctx, "A", n_procs)
            yield from srs.restore(ctx, "B", n_procs)
            read_secs = self.sim.now - t0
            if read_secs > 0:
                self._ckpt_read_secs[ctx.rank] = read_secs
            start_step = progress or 0
            for step in range(start_step, benchmark.steps):
                step_t0 = self.sim.now
                # Panel factorization + trailing update, split over ranks.
                yield ctx.compute(benchmark.step_mflop(step) / n_procs,
                                  tag=f"step{step}")
                # Panel broadcast from the owner of this step's columns.
                if n_procs > 1:
                    panel = qr_panel_bytes(benchmark.n, benchmark.nb, step)
                    yield from ctx.comm.bcast(ctx.rank, step % n_procs,
                                              nbytes=panel)
                ctx.report_iteration(step, self.sim.now - step_t0)
                # SRS stop check: the decision must be consistent across
                # ranks (real SRS coordinates through RSS).  Ranks can be
                # skewed by a step — the bcast root runs ahead — so a
                # tiny allreduce agrees on stopping at this same step.
                stop_votes = 0.0
                if n_procs > 1:
                    stop_votes = yield from ctx.comm.allreduce(
                        ctx.rank, nbytes=8,
                        value=1.0 if srs.should_stop() else 0.0,
                        op=max)
                else:
                    stop_votes = 1.0 if srs.should_stop() else 0.0
                if stop_votes > 0:
                    t1 = self.sim.now
                    yield from srs.checkpoint(ctx, "A", step + 1, n_procs)
                    yield from srs.checkpoint(ctx, "B", step + 1, n_procs)
                    self._ckpt_write_secs[ctx.rank] = self.sim.now - t1
                    return "stopped"
                # Periodic checkpoint (fault-tolerance extension): the
                # step number makes the decision consistent across
                # ranks without extra coordination.
                if self.checkpoint_every is not None \
                        and (step + 1) % self.checkpoint_every == 0:
                    yield from srs.checkpoint(ctx, "A", step + 1, n_procs)
                    yield from srs.checkpoint(ctx, "B", step + 1, n_procs)
            return "done"

        return body
