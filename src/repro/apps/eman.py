"""The EMAN refinement workflow (§3.3).

"EMAN automates a portion [of] producing 3-D reconstructions of single
particles from electron micrographs ...  the refinement from a
preliminary model to the final model is fully automated.  This
refinement process is the most computationally intensive step ...
Figure 2 shows the components in the EMAN refinement workflow, which
forms a linear graph in which some components can be parallelized."

The refinement pipeline (one round), following EMAN's ``refine``
driver: ``proc3d`` (prepare the model) -> ``project3d`` (generate
reference projections; parallelizable) -> ``classesbymra`` (classify
every particle against the projections; by far the dominant cost,
embarrassingly parallel over particles) -> ``classalign2`` (align and
average each class; parallel over classes) -> ``make3d`` (reconstruct
the new model) -> ``eotest`` (resolution check).

Costs are parameterized by particle count, class count and box size,
with constants chosen to reproduce the published profile (classesbymra
at ~90% of the round's compute).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perfmodel.model import AnalyticComponentModel
from ..scheduler.workflow import Workflow, WorkflowComponent
from .kernels import BYTES_PER_ELEMENT

__all__ = ["EmanParameters", "eman_refinement_workflow", "EMAN_STAGES"]

#: the linear stage order of Figure 2
EMAN_STAGES = ("proc3d", "project3d", "classesbymra", "classalign2",
               "make3d", "eotest")


@dataclass(frozen=True)
class EmanParameters:
    """Size knobs of one refinement round."""

    n_particles: int = 20000
    n_classes: int = 200
    box_size: int = 64  # particle image is box_size^2 pixels

    def __post_init__(self) -> None:
        if self.n_particles < 1 or self.n_classes < 1 or self.box_size < 4:
            raise ValueError("implausible EMAN parameters")

    # -- per-stage operation counts (Mflop) -----------------------------------
    @property
    def pixels(self) -> int:
        return self.box_size * self.box_size

    def proc3d_mflop(self) -> float:
        """Volume preprocessing: ~100 ops per voxel."""
        return 100.0 * self.box_size ** 3 / 1e6

    def project3d_mflop(self) -> float:
        """One projection per class: ~500 ops per projected pixel."""
        return 500.0 * self.n_classes * self.pixels / 1e6

    def classesbymra_mflop(self) -> float:
        """Every particle aligned against every class projection:
        ~200 ops per pixel per (particle, class) pair.  Dominant."""
        return 200.0 * self.n_particles * self.n_classes * self.pixels / 1e6

    def classalign2_mflop(self) -> float:
        """Iterative alignment within each class: ~2000 ops/pixel/particle."""
        return 2000.0 * self.n_particles * self.pixels / 1e6

    def make3d_mflop(self) -> float:
        """Fourier reconstruction from class averages."""
        return 1000.0 * self.n_classes * self.pixels / 1e6 \
            + 500.0 * self.box_size ** 3 / 1e6

    def eotest_mflop(self) -> float:
        """Even/odd resolution test: ~two half reconstructions."""
        return 2.0 * self.make3d_mflop()

    # -- data volumes ------------------------------------------------------------
    def particle_stack_bytes(self) -> float:
        return float(self.n_particles * self.pixels * BYTES_PER_ELEMENT)

    def class_stack_bytes(self) -> float:
        return float(self.n_classes * self.pixels * BYTES_PER_ELEMENT)

    def volume_bytes(self) -> float:
        return float(self.box_size ** 3 * BYTES_PER_ELEMENT)


def eman_refinement_workflow(params: EmanParameters,
                             classesbymra_tasks: int = 32,
                             classalign_tasks: int = 16,
                             project_tasks: int = 4) -> Workflow:
    """Build one refinement round as a schedulable :class:`Workflow`.

    Parallelizable stages are split into independent tasks, the way the
    GrADS EMAN port farmed them out.
    """
    if classesbymra_tasks < 1 or classalign_tasks < 1 or project_tasks < 1:
        raise ValueError("task counts must be >= 1")
    wf = Workflow("eman-refinement")

    def add(name: str, mflop: float, n_tasks: int,
            input_bytes: float, output_bytes: float) -> None:
        wf.add_component(WorkflowComponent(
            name=name,
            model=AnalyticComponentModel(mflop_fn=lambda _n, m=mflop: m),
            problem_size=float(params.n_particles),
            n_tasks=n_tasks,
            input_bytes_per_task=input_bytes / n_tasks,
            output_bytes_per_task=output_bytes / n_tasks,
        ))

    add("proc3d", params.proc3d_mflop(), 1,
        params.volume_bytes(), params.volume_bytes())
    add("project3d", params.project3d_mflop(), project_tasks,
        params.volume_bytes(), params.class_stack_bytes())
    add("classesbymra", params.classesbymra_mflop(), classesbymra_tasks,
        params.particle_stack_bytes() + params.class_stack_bytes(),
        params.particle_stack_bytes() / 10)
    add("classalign2", params.classalign2_mflop(), classalign_tasks,
        params.particle_stack_bytes(), params.class_stack_bytes())
    add("make3d", params.make3d_mflop(), 1,
        params.class_stack_bytes(), params.volume_bytes())
    add("eotest", params.eotest_mflop(), 1,
        params.class_stack_bytes(), params.volume_bytes())

    for producer, consumer in zip(EMAN_STAGES, EMAN_STAGES[1:]):
        wf.add_dependence(producer, consumer)
    return wf
