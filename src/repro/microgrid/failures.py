"""Host failure injection.

Fault tolerance is the paper's named future-work item (§5: the VGrADS
follow-on adds "new capabilities, such as fault tolerance").  This
module provides the substrate: hosts can crash (killing their running
tasks) and recover, on a schedule or stochastically.  The SRS
checkpoint library plus the application manager's recovery path (see
``repro.apps.qr.QrRun``) turn those crashes into restart-from-
checkpoint instead of lost work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..sim.kernel import Simulator
from .host import Host, HostFailure

__all__ = ["HostFailure", "ScheduledFailure", "RandomFailureInjector"]


@dataclass
class ScheduledFailure:
    """Crash a host at a fixed time, optionally recovering later.

    The kill and the recovery are tolerant of interleaving with other
    failure sources (another :class:`ScheduledFailure`, a
    :class:`RandomFailureInjector`): a host that is already down at
    ``at`` stays down, and a host already recovered by someone else at
    ``recover_at`` stays up, instead of raising mid-callback and
    aborting the whole simulation.
    """

    host: Host
    at: float
    recover_at: Optional[float] = None

    def install(self, sim: Simulator) -> None:
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recovery must come after the failure")
        sim.call_at(self.at, self._fail)
        if self.recover_at is not None:
            sim.call_at(self.recover_at, self._recover)

    def _fail(self) -> None:
        if self.host.alive:
            self.host.fail()

    def _recover(self) -> None:
        if not self.host.alive:
            self.host.recover()


class RandomFailureInjector:
    """Exponential failure/repair process over a set of hosts.

    Each host independently alternates up/down with exponentially
    distributed durations (MTBF / MTTR), the standard availability
    model for long-running grid studies.

    ``rng`` may be a ``numpy.random.Generator``, an integer seed, or
    ``None`` (then ``seed`` — default 0 — creates the generator), so
    two injectors built with equal seeds produce identical failure
    schedules.
    """

    def __init__(self, hosts: Sequence[Host], rng=None, *,
                 mtbf: float, mttr: float, seed: Optional[int] = None) -> None:
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        if rng is None:
            rng = np.random.default_rng(0 if seed is None else seed)
        elif isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        elif not isinstance(rng, np.random.Generator):
            raise TypeError(f"rng must be a Generator or seed, "
                            f"got {type(rng).__name__}")
        self.hosts = list(hosts)
        self.rng = rng
        self.mtbf = mtbf
        self.mttr = mttr
        self.failures: List[tuple] = []  # (time, host_name)

    def install(self, sim: Simulator) -> None:
        for host in self.hosts:
            sim.process(self._drive(sim, host), name=f"failures:{host.name}")

    def _drive(self, sim: Simulator, host: Host):
        while True:
            yield sim.timeout(float(self.rng.exponential(self.mtbf)))
            injected = False
            if host.alive:
                host.fail()
                injected = True
                self.failures.append((sim.now, host.name))
                trace = sim.trace
                if trace is not None and "fault" in trace.active:
                    trace.instant("fault", "inject", host=host.name,
                                  mtbf=self.mtbf, mttr=self.mttr)
            yield sim.timeout(float(self.rng.exponential(self.mttr)))
            # Only repair a failure *this* injector caused: a host that a
            # ScheduledFailure (or another injector) deliberately left
            # down must stay down, and a host someone else already
            # recovered must not be double-recovered.
            if injected and not host.alive:
                host.recover()
                trace = sim.trace
                if trace is not None and "fault" in trace.active:
                    trace.instant("fault", "repair", host=host.name)
