"""Virtual hosts with a processor-sharing CPU model.

A :class:`Host` executes *compute tasks*.  Tasks on the same host share
the CPU the way timeshared Unix boxes of the GrADS era did: with ``n``
runnable tasks on a host with ``cores`` processors, each task runs at
``speed * min(1, cores / n)`` where ``speed`` is the per-core rate in
Mflop/s.  The paper's "artificial load" experiments (§4.1.2, §4.2) are
expressed as competing tasks that never finish, which is exactly how the
authors loaded their testbed nodes.

Units (project-wide convention): time in seconds, work in Mflop,
``speed`` in Mflop/s, memory sizes in bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from ..sim.events import Event
from ..sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["Host", "CacheLevel", "Architecture", "HostFailure"]


class HostFailure(RuntimeError):
    """Raised at tasks running on a host when it crashes."""

    def __init__(self, host_name: str) -> None:
        super().__init__(f"host {host_name} failed")
        self.host_name = host_name

#: relative tolerance when deciding a task's remaining work has drained
_EPS = 1e-9


@dataclass(frozen=True)
class CacheLevel:
    """One level of a host's cache hierarchy.

    ``size`` in bytes, ``line`` in bytes, ``miss_penalty`` in seconds per
    miss (the *additional* latency of missing this level).
    """

    size: int
    line: int = 64
    miss_penalty: float = 1e-7

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line <= 0:
            raise ValueError("cache size and line must be positive")
        if self.miss_penalty < 0:
            raise ValueError("miss_penalty must be non-negative")


@dataclass(frozen=True)
class Architecture:
    """Machine-level parameters the performance models consume (§3.2).

    The GrADS models are architecture independent; converting their
    resource counts (flops, cache misses) to time needs exactly these
    numbers.  ``isa`` matters to the binder: a component compiled for
    one ISA cannot be launched on another without recompilation.
    """

    name: str
    mflops: float
    isa: str = "ia32"
    caches: tuple = (CacheLevel(size=512 * 1024),)
    memory_bytes: int = 512 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.mflops <= 0:
            raise ValueError("mflops must be positive")


@dataclass(eq=False, slots=True)
class _Task:
    """Bookkeeping for one compute task on a host.

    ``eq=False`` keeps identity comparison: tasks double as opaque
    handles, and two background-load tasks are field-identical, so a
    field-based ``__eq__`` would make ``list.remove`` delete the wrong
    one and orphan the caller's handle.  ``slots=True`` because busy
    hosts churn through one of these per compute call.
    """

    remaining: float  # Mflop left
    event: Optional[Event]  # None for background-load tasks
    rate: float = 0.0  # current Mflop/s share
    tag: str = ""
    total: float = field(default=0.0)
    started_at: float = 0.0


class Host:
    """A single grid compute node under processor sharing."""

    def __init__(self, sim: Simulator, name: str, arch: Architecture,
                 cores: int = 1, disk_read_bw: float = 30e6,
                 disk_write_bw: float = 30e6) -> None:
        if cores < 1:
            raise ValueError("a host needs at least one core")
        self.sim = sim
        self.name = name
        self.arch = arch
        self.cores = cores
        #: disk bandwidths in bytes/s, used by the IBP depot model
        self.disk_read_bw = float(disk_read_bw)
        self.disk_write_bw = float(disk_write_bw)
        self.cluster: Optional["Cluster"] = None
        self._tasks: List[_Task] = []
        self._last_update = sim.now
        self._epoch = 0
        #: cumulative Mflop completed on this host (for accounting)
        self.mflop_done = 0.0
        #: False while the host is crashed (see fail()/recover())
        self.alive = True
        #: crash count, for availability accounting
        self.failures = 0
        #: called with this host on every fail() — how higher layers
        #: (e.g. MPI jobs) learn of a crash even when nothing they own
        #: is computing here at that instant
        self._fail_listeners: List[Callable[["Host"], None]] = []

    # -- derived properties -------------------------------------------------
    @property
    def speed(self) -> float:
        """Per-core peak rate in Mflop/s."""
        return self.arch.mflops

    @property
    def n_runnable(self) -> int:
        """Number of tasks (foreground + background) sharing the CPU."""
        return len(self._tasks)

    def availability(self) -> float:
        """Fraction of one core a *new* task would receive right now.

        This is what an NWS CPU sensor measures on a timeshared node.
        A crashed host offers nothing.
        """
        if not self.alive:
            return 0.0
        return min(1.0, self.cores / (len(self._tasks) + 1))

    def current_share(self) -> float:
        """Fraction of one core each current task receives."""
        n = len(self._tasks)
        if n == 0:
            return 1.0
        return min(1.0, self.cores / n)

    # -- public API -----------------------------------------------------------
    def compute(self, mflop: float, tag: str = "") -> Event:
        """Run ``mflop`` of work; the returned event triggers when done.

        The event value is the elapsed wall time of the task.
        """
        if mflop < 0:
            raise ValueError(f"negative work: {mflop}")
        ev = self.sim.event(name=f"{self.name}:compute:{tag}")
        if not self.alive:
            # A dead machine rejects work the moment anything touches it.
            ev.fail(HostFailure(self.name))
            return ev
        if mflop == 0:
            # Zero work still takes a scheduling round trip of zero time.
            ev.succeed(0.0)
            return ev
        self._settle()
        task = _Task(remaining=float(mflop), event=ev, tag=tag,
                     total=float(mflop), started_at=self.sim.now)
        self._tasks.append(task)
        self._reschedule()
        return ev

    def add_background_load(self, nprocs: int = 1, tag: str = "load") -> List[_Task]:
        """Add ``nprocs`` competing processes that never finish.

        Returns handles usable with :meth:`remove_background_load`.
        """
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self._settle()
        handles = []
        for _ in range(nprocs):
            task = _Task(remaining=math.inf, event=None, tag=tag)
            self._tasks.append(task)
            handles.append(task)
        self._reschedule()
        return handles

    def remove_background_load(self, handles) -> None:
        """Remove previously added background-load processes."""
        self._settle()
        for handle in handles:
            try:
                self._tasks.remove(handle)
            except ValueError:
                raise ValueError("unknown background load handle") from None
        self._reschedule()

    def background_load(self) -> int:
        """Number of background (never-finishing) load processes."""
        return sum(1 for t in self._tasks if t.event is None)

    def fail(self) -> None:
        """Crash the host: every running task fails with HostFailure,
        background load is dropped, and new work is rejected until
        :meth:`recover`."""
        if not self.alive:
            raise ValueError(f"host {self.name} is already down")
        self._settle()
        self.alive = False
        self.failures += 1
        victims, self._tasks = self._tasks, []
        self._epoch += 1  # invalidate pending completion wake-ups
        trace = self.sim.trace
        if trace is not None and "fault" in trace.active:
            trace.instant("fault", "host-down", host=self.name,
                          killed_tasks=sum(1 for t in victims
                                           if t.event is not None))
        for task in victims:
            if task.event is not None:
                task.event.fail(HostFailure(self.name))
        # Notify after the task events so a direct compute failure is
        # delivered to its waiter first; listener-driven deaths are the
        # fallback for processes blocked elsewhere (e.g. on a transfer).
        for listener in list(self._fail_listeners):
            listener(self)

    def on_fail(self, listener: Callable[["Host"], None]) -> None:
        """Subscribe ``listener(host)`` to this host's crashes."""
        self._fail_listeners.append(listener)

    def recover(self) -> None:
        """Bring a crashed host back, empty and idle."""
        if self.alive:
            raise ValueError(f"host {self.name} is not down")
        self.alive = True
        self._last_update = self.sim.now
        trace = self.sim.trace
        if trace is not None and "fault" in trace.active:
            trace.instant("fault", "host-up", host=self.name)

    def estimate_seconds(self, mflop: float, assume_share: Optional[float] = None
                         ) -> float:
        """Predicted run time of ``mflop`` of work on this host.

        With ``assume_share=None`` the *current* contention level is
        assumed to persist (this is what a scheduler using NWS data
        effectively predicts).
        """
        share = self.availability() if assume_share is None else assume_share
        if share <= 0:
            return math.inf
        return mflop / (self.speed * share)

    # -- processor-sharing internals -------------------------------------------
    def _settle(self) -> None:
        """Account for work done at the current rates since last update."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for task in self._tasks:
                done = task.rate * dt
                if not math.isinf(task.remaining):
                    task.remaining -= done
                    self.mflop_done += done
        self._last_update = now

    def _reschedule(self) -> None:
        """Recompute shares and schedule the next completion wake-up."""
        self._epoch += 1
        n = len(self._tasks)
        if n == 0:
            return
        rate = self.speed * min(1.0, self.cores / n)
        horizon = math.inf
        for task in self._tasks:
            task.rate = rate
            if not math.isinf(task.remaining):
                horizon = min(horizon, task.remaining / rate)
        if math.isinf(horizon):
            return  # only background load is running
        epoch = self._epoch
        self.sim.call_after(max(horizon, 0.0), lambda: self._wake(epoch))

    def _wake(self, epoch: int) -> None:
        if epoch != self._epoch:
            self.sim.stats.wakeups_cancelled += 1
            return  # stale wake-up; the task set changed since
        self._settle()
        # Finished = relatively drained, or the residual would drain
        # within a nanosecond at the current rate (absorbs the absolute
        # float error of time deltas; see the same logic in network.py).
        finished = [t for t in self._tasks
                    if t.event is not None
                    and (t.remaining <= _EPS * t.total
                         or (t.rate > 0 and t.remaining <= t.rate * 1e-9))]
        for task in finished:
            self._tasks.remove(task)
        self._reschedule()
        for task in finished:
            assert task.event is not None
            task.event.succeed(self.sim.now - task.started_at)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Host {self.name} {self.arch.name} {self.speed:.0f}Mflop/s"
                f" x{self.cores} tasks={len(self._tasks)}>")
