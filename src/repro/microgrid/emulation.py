"""MicroGrid-style emulation with virtual-time dilation.

The MicroGrid runs real applications on *scaled* resources: when the
emulation hosts are slower than the virtual hosts they model, the
MicroGrid dilates virtual time by a constant factor so that observed
behaviour, rescaled, matches the modeled grid (Song et al., SC2000).
The paper leans on this: "We earlier ran very similar experiments on
the MacroGrid, validating both the MicroGrid's emulation and the
rescheduling method's practicality."

:func:`dilated_grid` builds a grid whose compute and network rates are
all scaled down by ``dilation`` — the emulation — and
:class:`VirtualClock` converts between emulation time and virtual grid
time.  Experiments that produce matching results on the direct grid and
on a rescaled dilated grid demonstrate exactly the property the paper's
validation established (see ``benchmarks/test_bench_microgrid_validation``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sim.kernel import Simulator
from .dml import Grid
from .host import Architecture

__all__ = ["VirtualClock", "dilated_grid"]


@dataclass(frozen=True)
class VirtualClock:
    """Conversion between emulation time and virtual-grid time."""

    dilation: float

    def __post_init__(self) -> None:
        if self.dilation <= 0:
            raise ValueError("dilation must be positive")

    def to_virtual(self, emulation_seconds: float) -> float:
        """Observed emulation time -> modeled grid time."""
        return emulation_seconds / self.dilation

    def to_emulation(self, virtual_seconds: float) -> float:
        """Modeled grid time -> when it happens in the emulation."""
        return virtual_seconds * self.dilation


def _scaled_arch(arch: Architecture, dilation: float) -> Architecture:
    return Architecture(
        name=f"{arch.name}@1/{dilation:g}",
        mflops=arch.mflops / dilation,
        isa=arch.isa,
        caches=arch.caches,
        memory_bytes=arch.memory_bytes,
    )


def dilated_grid(builder: Callable[[Simulator], Grid], sim: Simulator,
                 dilation: float) -> Grid:
    """Build ``builder``'s grid with every rate divided by ``dilation``.

    Host speeds, NIC and WAN bandwidths, and disk rates all shrink by
    the same factor; latencies stretch by it.  Running a workload on
    the result and dividing measured times by ``dilation`` reproduces
    the direct grid's timeline exactly (for deterministic workloads),
    which is the MicroGrid's core soundness property.
    """
    clock = VirtualClock(dilation)  # validates the factor
    grid = builder(sim)
    # Scale hosts in place: architectures are frozen, so swap them.
    for host in grid.all_hosts():
        host.arch = _scaled_arch(host.arch, dilation)
        host.disk_read_bw /= dilation
        host.disk_write_bw /= dilation
    for cluster in grid.clusters.values():
        cluster.arch = _scaled_arch(cluster.arch, dilation)
    # Scale every link: bandwidth down, latency up.
    for u, v, data in grid.topology.graph.edges(data=True):
        data["bandwidth"] /= dilation
        data["latency"] *= dilation
    grid.topology.local_copy_bw /= dilation
    # Rates/latencies changed under the topology's feet: drop routing
    # caches and resync interned capacities (and any in-flight flows).
    grid.topology._topology_changed()
    return grid
