"""Cluster construction helpers.

A cluster is a set of identical hosts joined by a local switch node with
uniform intra-cluster links, which matches how the GrADS testbed sites
(UTK, UIUC, UCSD, UH) were built: homogeneous Linux boxes behind one
switched Ethernet or Myrinet fabric.
"""

from __future__ import annotations

from typing import List

from ..sim.kernel import Simulator
from .host import Architecture, Host
from .network import Topology

__all__ = ["Cluster"]


class Cluster:
    """A named set of identical hosts behind a shared switch."""

    def __init__(self, sim: Simulator, topology: Topology, name: str,
                 arch: Architecture, n_hosts: int, cores_per_host: int = 1,
                 link_bandwidth: float = 12.5e6, link_latency: float = 1e-4,
                 site: str = "") -> None:
        """Build the cluster and wire it into ``topology``.

        ``link_bandwidth`` is the per-host NIC capacity in bytes/s
        (100 Mb Ethernet ≈ 12.5e6 B/s, Myrinet 1.28 Gb ≈ 160e6 B/s).
        """
        if n_hosts < 1:
            raise ValueError("a cluster needs at least one host")
        self.sim = sim
        self.topology = topology
        self.name = name
        self.arch = arch
        self.site = site or name
        self.switch = f"{name}.switch"
        topology.add_node(self.switch)
        self.hosts: List[Host] = []
        for i in range(n_hosts):
            host = Host(sim, f"{name}.n{i}", arch, cores=cores_per_host)
            host.cluster = self
            topology.attach_host(host)
            topology.add_link(host.name, self.switch,
                              bandwidth=link_bandwidth, latency=link_latency)
            self.hosts.append(host)

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)

    def __getitem__(self, index: int) -> Host:
        return self.hosts[index]

    def host_names(self) -> List[str]:
        return [h.name for h in self.hosts]

    def connect_to(self, other: "Cluster", bandwidth: float,
                   latency: float) -> None:
        """Add a WAN link between this cluster's switch and another's."""
        self.topology.add_link(self.switch, other.switch,
                               bandwidth=bandwidth, latency=latency)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cluster {self.name} {len(self.hosts)}x{self.arch.name}"
                f" @{self.arch.mflops:.0f}Mflop/s>")
