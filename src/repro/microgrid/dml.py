"""A small Domain-Modeling-Language-style topology description format.

The MicroGrid takes its virtual-grid descriptions in DML plus "a simple
resource description for the processor nodes" (§4.2).  We provide an
equivalent: a line-oriented text format describing architectures,
clusters, standalone hosts and WAN links, with unit-suffixed quantities.

Example::

    arch pIII-933 mflops=933 isa=ia32 cache=256KB
    arch pII-450  mflops=450 isa=ia32 cache=512KB
    cluster utk  arch=pIII-933 hosts=4 cores=2 nic=100Mb  lat=0.1ms
    cluster uiuc arch=pII-450  hosts=8 cores=1 nic=1.28Gb lat=0.05ms
    link utk uiuc bw=40Mb lat=11ms

Bandwidths accept bit-suffixes (``Kb``/``Mb``/``Gb``, decimal, per
second) and byte-suffixes (``KB``/``MB``/``GB``); times accept ``us``,
``ms``, ``s``.  ``#`` starts a comment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from .cluster import Cluster
from .host import Architecture, CacheLevel, Host
from .network import Topology

__all__ = ["DMLError", "parse_quantity", "parse_grid", "Grid"]


class DMLError(ValueError):
    """Raised for malformed DML text."""


_BANDWIDTH_UNITS = {
    "b": 1 / 8, "kb": 125.0, "mb": 125e3, "gb": 125e6,  # bits/s -> bytes/s
    "B": 1.0, "KB": 1e3, "MB": 1e6, "GB": 1e9,  # bytes/s
}
_TIME_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0}
_SIZE_UNITS = {"B": 1, "KB": 1024, "MB": 1024 ** 2, "GB": 1024 ** 3}


def parse_quantity(text: str, kind: str) -> float:
    """Parse ``"11ms"`` / ``"1.28Gb"`` / ``"512KB"`` into project units.

    ``kind`` is one of ``"bandwidth"`` (bytes/s), ``"time"`` (seconds)
    or ``"size"`` (bytes).  Bare numbers are taken as already being in
    project units.
    """
    text = text.strip()
    i = len(text)
    while i > 0 and not (text[i - 1].isdigit() or text[i - 1] == "."):
        i -= 1
    number, suffix = text[:i], text[i:]
    try:
        value = float(number)
    except ValueError:
        raise DMLError(f"bad quantity {text!r}") from None
    if not suffix:
        return value
    if kind == "bandwidth":
        # Bit units are case-insensitive except trailing B means bytes.
        if suffix in _BANDWIDTH_UNITS:
            return value * _BANDWIDTH_UNITS[suffix]
        if suffix.lower() in _BANDWIDTH_UNITS:
            return value * _BANDWIDTH_UNITS[suffix.lower()]
    elif kind == "time":
        if suffix in _TIME_UNITS:
            return value * _TIME_UNITS[suffix]
    elif kind == "size":
        if suffix in _SIZE_UNITS:
            return value * _SIZE_UNITS[suffix]
    else:
        raise ValueError(f"unknown quantity kind {kind!r}")
    raise DMLError(f"bad {kind} unit in {text!r}")


class Grid:
    """A built virtual grid: simulator + topology + clusters + hosts."""

    def __init__(self, sim: Simulator, topology: Optional[Topology] = None) -> None:
        self.sim = sim
        self.topology = topology if topology is not None else Topology(sim)
        self.clusters: Dict[str, Cluster] = {}
        self.architectures: Dict[str, Architecture] = {}
        self.standalone_hosts: Dict[str, Host] = {}

    def add_cluster(self, cluster: Cluster) -> Cluster:
        if cluster.name in self.clusters:
            raise DMLError(f"duplicate cluster {cluster.name!r}")
        self.clusters[cluster.name] = cluster
        return cluster

    def add_standalone_host(self, host: Host, uplink_bw: float,
                            uplink_lat: float) -> Host:
        """Attach a single machine (like the paper's lone UCSD node)."""
        self.topology.attach_host(host)
        router = f"{host.name}.uplink"
        self.topology.add_node(router)
        self.topology.add_link(host.name, router, bandwidth=uplink_bw,
                               latency=uplink_lat)
        self.standalone_hosts[host.name] = host
        return host

    def all_hosts(self) -> List[Host]:
        hosts: List[Host] = []
        for cluster in self.clusters.values():
            hosts.extend(cluster.hosts)
        hosts.extend(self.standalone_hosts.values())
        return hosts

    def host(self, name: str) -> Host:
        return self.topology.host(name)


def parse_grid(text: str, sim: Simulator) -> Grid:
    """Build a :class:`Grid` from DML text."""
    grid = Grid(sim)
    pending_links: List[Tuple[str, str, float, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        kind, args = fields[0], fields[1:]
        try:
            if kind == "arch":
                _parse_arch(grid, args)
            elif kind == "cluster":
                _parse_cluster(grid, sim, args)
            elif kind == "host":
                _parse_host(grid, sim, args)
            elif kind == "link":
                pending_links.append(_parse_link(args))
            else:
                raise DMLError(f"unknown directive {kind!r}")
        except DMLError as exc:
            raise DMLError(f"line {lineno}: {exc}") from None
    for a, b, bw, lat in pending_links:
        node_a = _endpoint(grid, a)
        node_b = _endpoint(grid, b)
        grid.topology.add_link(node_a, node_b, bandwidth=bw, latency=lat)
    return grid


def _kv(args: List[str], skip: int = 0) -> Dict[str, str]:
    out = {}
    for item in args[skip:]:
        if "=" not in item:
            raise DMLError(f"expected key=value, got {item!r}")
        key, value = item.split("=", 1)
        out[key] = value
    return out


def _parse_arch(grid: Grid, args: List[str]) -> None:
    if not args:
        raise DMLError("arch needs a name")
    name = args[0]
    kv = _kv(args, skip=1)
    if "mflops" not in kv:
        raise DMLError(f"arch {name!r} needs mflops=")
    cache_bytes = int(parse_quantity(kv.get("cache", "512KB"), "size"))
    grid.architectures[name] = Architecture(
        name=name,
        mflops=float(kv["mflops"]),
        isa=kv.get("isa", "ia32"),
        caches=(CacheLevel(size=cache_bytes),),
        memory_bytes=int(parse_quantity(kv.get("memory", "512MB"), "size")),
    )


def _arch(grid: Grid, name: str) -> Architecture:
    try:
        return grid.architectures[name]
    except KeyError:
        raise DMLError(f"unknown arch {name!r}") from None


def _parse_cluster(grid: Grid, sim: Simulator, args: List[str]) -> None:
    if not args:
        raise DMLError("cluster needs a name")
    name = args[0]
    kv = _kv(args, skip=1)
    for req in ("arch", "hosts"):
        if req not in kv:
            raise DMLError(f"cluster {name!r} needs {req}=")
    cluster = Cluster(
        sim, grid.topology, name,
        arch=_arch(grid, kv["arch"]),
        n_hosts=int(kv["hosts"]),
        cores_per_host=int(kv.get("cores", "1")),
        link_bandwidth=parse_quantity(kv.get("nic", "100Mb"), "bandwidth"),
        link_latency=parse_quantity(kv.get("lat", "0.1ms"), "time"),
        site=kv.get("site", ""),
    )
    grid.add_cluster(cluster)


def _parse_host(grid: Grid, sim: Simulator, args: List[str]) -> None:
    if not args:
        raise DMLError("host needs a name")
    name = args[0]
    kv = _kv(args, skip=1)
    if "arch" not in kv:
        raise DMLError(f"host {name!r} needs arch=")
    host = Host(sim, name, _arch(grid, kv["arch"]),
                cores=int(kv.get("cores", "1")))
    grid.add_standalone_host(
        host,
        uplink_bw=parse_quantity(kv.get("nic", "100Mb"), "bandwidth"),
        uplink_lat=parse_quantity(kv.get("lat", "0.1ms"), "time"),
    )


def _parse_link(args: List[str]) -> Tuple[str, str, float, float]:
    if len(args) < 2:
        raise DMLError("link needs two endpoints")
    kv = _kv(args, skip=2)
    for req in ("bw", "lat"):
        if req not in kv:
            raise DMLError(f"link needs {req}=")
    return (args[0], args[1],
            parse_quantity(kv["bw"], "bandwidth"),
            parse_quantity(kv["lat"], "time"))


def _endpoint(grid: Grid, name: str) -> str:
    """Resolve a link endpoint: cluster switch, host uplink, or raw node."""
    if name in grid.clusters:
        return grid.clusters[name].switch
    if name in grid.standalone_hosts:
        return f"{name}.uplink"
    raise DMLError(f"unknown link endpoint {name!r}")
