"""Network topology and max-min fair flow simulation.

The MicroGrid paper emulates wide-area links with an online network
simulator; we reproduce the behaviour that matters to scheduling and
rescheduling decisions: per-path latency and *shared* bandwidth.  Every
transfer is a flow routed over the shortest path (by latency) between
two hosts; link capacities are divided among the flows crossing them by
progressive-filling **max-min fairness**, recomputed whenever a flow
starts or finishes.

Two hot paths are engineered for scale (GridSim-style indexed event
processing rather than per-event rescans):

* **Incremental reallocation.**  Directed edges are interned to integer
  ids the first time a flow crosses them, and the topology maintains a
  persistent edge→flows index.  A flow arrival or departure only
  re-runs progressive filling over the *connected component* of edges
  and flows actually perturbed — max-min fairness is separable across
  flow-disjoint components, so untouched components keep their rates.
  The from-scratch allocator is kept as :func:`reference_max_min` for
  property testing and as the benchmark baseline
  (``Topology(..., allocator="reference")``).

* **Routing cache.**  Routes are computed one *source* at a time with a
  single-source Dijkstra pass (all destinations at once) and cached
  until the topology mutates; per-pair ``(latency, bottleneck)`` tuples
  are memoised so :meth:`Topology.estimate_transfer_seconds` is a dict
  lookup.  Hits/misses are counted in ``sim.stats``.

Capacities are in bytes/s, latencies in seconds, transfers in bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..sim.events import Event
from ..sim.kernel import Simulator
from .host import Host

__all__ = ["Link", "Topology", "Flow", "NetworkError", "reference_max_min"]

_EPS = 1e-9


class NetworkError(RuntimeError):
    """Raised for malformed topologies or unroutable transfers."""


@dataclass(frozen=True)
class Link:
    """A bidirectional network link (each direction has full capacity)."""

    a: str
    b: str
    bandwidth: float  # bytes/s
    latency: float  # seconds

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("link latency must be non-negative")


@dataclass
class Flow:
    """An in-flight transfer."""

    src: str
    dst: str
    path: Tuple[Tuple[str, str], ...]  # directed edges as ordered node pairs
    remaining: float  # bytes
    event: Event
    allocation: float = 0.0  # bytes/s currently granted
    started_at: float = 0.0
    total: float = 0.0
    edge_ids: Tuple[int, ...] = ()  # interned directed-edge ids (see Topology)


def reference_max_min(paths: Sequence[Sequence[int]],
                      capacity: Dict[int, float]) -> List[float]:
    """From-scratch progressive-filling max-min fair allocation.

    ``paths[i]`` lists the edge ids flow ``i`` crosses; ``capacity``
    maps edge id to bandwidth.  Returns the per-flow rates.  This is
    the pre-overhaul O(rounds × flows × path) algorithm, kept pure (no
    topology state) as the oracle for the Hypothesis property tests and
    as the ``allocator="reference"`` benchmark baseline.
    """
    n = len(paths)
    alloc = [0.0] * n
    residual: Dict[int, float] = {}
    users: Dict[int, List[int]] = {}
    for i, path in enumerate(paths):
        for e in path:
            residual.setdefault(e, capacity[e])
            users.setdefault(e, []).append(i)
    unfixed = set(range(n))
    while unfixed:
        # Find the bottleneck: the edge with the smallest fair share.
        best_e, best_share = None, math.inf
        for e, flows in users.items():
            active = [i for i in flows if i in unfixed]
            if not active:
                continue
            share = residual[e] / len(active)
            if share < best_share:
                best_share, best_e = share, e
        if best_e is None:
            break  # remaining flows cross no constrained edge
        for i in [i for i in users[best_e] if i in unfixed]:
            alloc[i] = best_share
            unfixed.discard(i)
            for e in paths[i]:
                residual[e] = max(residual[e] - best_share, 0.0)
    return alloc


class Topology:
    """A routed grid network carrying max-min fair flows.

    Nodes are strings (host names and router names); hosts must be
    attached via :meth:`attach_host` before they can transfer.  Local
    (same-host) transfers complete at ``local_copy_bw``.

    ``allocator`` selects the reallocation strategy: ``"incremental"``
    (default; component-scoped progressive filling) or ``"reference"``
    (full recompute on every flow event, for benchmarking/validation —
    both produce identical allocations).
    """

    def __init__(self, sim: Simulator, local_copy_bw: float = 1e9,
                 allocator: str = "incremental") -> None:
        if allocator not in ("incremental", "reference"):
            raise ValueError(f"unknown allocator {allocator!r}")
        self.sim = sim
        self.graph = nx.Graph()
        self.local_copy_bw = float(local_copy_bw)
        self.allocator = allocator
        self._hosts: Dict[str, Host] = {}
        self._flows: List[Flow] = []
        self._last_update = sim.now
        self._epoch = 0
        # -- edge interning (stable across route-cache invalidation) --
        self._edge_ids: Dict[Tuple[str, str], int] = {}  # directed pair -> id
        self._edge_cap: List[float] = []  # id -> bandwidth (refreshed on mutation)
        self._edge_users: List[List[Flow]] = []  # id -> flows currently crossing
        # -- routing caches (cleared on any topology mutation) --
        self._sssp: Dict[str, Tuple[Dict[str, float], Dict[str, List[str]]]] = {}
        self._metrics: Dict[Tuple[str, str], Tuple[float, float]] = {}
        #: cumulative bytes delivered (for accounting/benchmarks)
        self.bytes_delivered = 0.0

    # -- construction -----------------------------------------------------------
    def add_node(self, name: str) -> None:
        """Add a routing-only node (e.g. a WAN router)."""
        self.graph.add_node(name)
        self._topology_changed()

    def attach_host(self, host: Host) -> None:
        """Register a host as an endpoint node."""
        if host.name in self._hosts:
            raise NetworkError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        self.graph.add_node(host.name)
        self._topology_changed()

    def add_link(self, a: str, b: str, bandwidth: float, latency: float) -> Link:
        """Connect two nodes with a bidirectional link.

        Adding (or re-adding, to change bandwidth/latency) a link while
        flows are in flight settles their progress and reallocates, so
        the new capacity takes effect immediately rather than at the
        next unrelated flow event.
        """
        link = Link(a, b, bandwidth, latency)
        self.graph.add_edge(a, b, bandwidth=float(bandwidth),
                            latency=float(latency))
        self._topology_changed()
        return link

    def _topology_changed(self) -> None:
        """Invalidate routing caches and re-fit in-flight flows."""
        self._sssp.clear()
        self._metrics.clear()
        # An add_link over an existing edge rewrites its capacity; keep
        # the interned capacities in sync (edge ids themselves are
        # stable: they name directed node pairs, not graph epochs).
        graph_edges = self.graph.edges
        for (u, v), eid in self._edge_ids.items():
            if (u, v) in graph_edges:
                self._edge_cap[eid] = graph_edges[u, v]["bandwidth"]
        if self._flows:
            # In-flight flows keep their paths but must share the new
            # capacities from *now*; without this they would coast on
            # stale allocations until the next flow arrival/departure.
            self._settle()
            self._reallocate()

    def host(self, name: str) -> Host:
        """Look up an attached host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    # -- routing ------------------------------------------------------------------
    def _sssp_from(self, src: str) -> Tuple[Dict[str, float], Dict[str, List[str]]]:
        """Distances and paths from ``src`` to every reachable node."""
        entry = self._sssp.get(src)
        if entry is None:
            self.sim.stats.route_cache_misses += 1
            if src not in self.graph:
                raise NetworkError(f"no route from unknown node {src!r}")
            dist, paths = nx.single_source_dijkstra(self.graph, src,
                                                    weight="latency")
            entry = (dist, paths)
            self._sssp[src] = entry
        else:
            self.sim.stats.route_cache_hits += 1
        return entry

    def route(self, src: str, dst: str) -> List[str]:
        """Shortest path by latency between two nodes."""
        _dist, paths = self._sssp_from(src)
        path = paths.get(dst)
        if path is None:
            raise NetworkError(f"no route {src!r} -> {dst!r}")
        return path

    def _path_metrics(self, src: str, dst: str) -> Tuple[float, float]:
        """Memoised ``(latency, bottleneck_bw)`` of the routed path."""
        key = (src, dst)
        metrics = self._metrics.get(key)
        if metrics is None:
            dist, paths = self._sssp_from(src)
            path = paths.get(dst)
            if path is None:
                raise NetworkError(f"no route {src!r} -> {dst!r}")
            edges = self.graph.edges
            bottleneck = min(edges[u, v]["bandwidth"]
                             for u, v in zip(path, path[1:]))
            metrics = (dist[dst], bottleneck)
            self._metrics[key] = metrics
        else:
            self.sim.stats.route_cache_hits += 1
        return metrics

    def path_latency(self, src: str, dst: str) -> float:
        """One-way latency along the routed path (0 for local)."""
        if src == dst:
            return 0.0
        return self._path_metrics(src, dst)[0]

    def path_bottleneck_bw(self, src: str, dst: str) -> float:
        """Raw bottleneck capacity along the path, ignoring other flows."""
        if src == dst:
            return self.local_copy_bw
        return self._path_metrics(src, dst)[1]

    def estimate_transfer_seconds(self, src: str, dst: str, nbytes: float) -> float:
        """Latency + bytes/bottleneck estimate, as an NWS client would make.

        This deliberately ignores current contention: it is the number a
        scheduler computes from NWS latency/bandwidth reports.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if src == dst:
            return nbytes / self.local_copy_bw
        latency, bottleneck = self._path_metrics(src, dst)
        return latency + nbytes / bottleneck

    # -- transfers -------------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float, tag: str = "") -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; event triggers on arrival.

        The event value is the elapsed transfer time in seconds.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        ev = self.sim.event(name=f"xfer:{src}->{dst}:{tag}")
        start = self.sim.now
        if src == dst:
            delay = nbytes / self.local_copy_bw
            self.sim.call_after(delay, lambda: ev.succeed(self.sim.now - start))
            return ev
        path_nodes = self.route(src, dst)
        latency = self._path_metrics(src, dst)[0]
        if nbytes == 0:
            self.sim.call_after(latency, lambda: ev.succeed(self.sim.now - start))
            return ev
        edges = tuple(zip(path_nodes, path_nodes[1:]))
        flow = Flow(src=src, dst=dst, path=edges, remaining=float(nbytes),
                    event=ev, started_at=start, total=float(nbytes),
                    edge_ids=self._intern_edges(edges))
        # The first byte spends `latency` in the pipe before streaming
        # begins; model it as a delayed flow start.
        self.sim.call_after(latency, lambda: self._start_flow(flow))
        return ev

    # -- edge interning -------------------------------------------------------------
    def _intern_edges(self, edges: Iterable[Tuple[str, str]]) -> Tuple[int, ...]:
        """Map directed edges to stable integer ids, registering new ones.

        Links are full duplex: (u, v) and (v, u) intern to distinct ids
        with independent capacity.
        """
        edge_ids = self._edge_ids
        out = []
        for pair in edges:
            eid = edge_ids.get(pair)
            if eid is None:
                eid = len(self._edge_cap)
                edge_ids[pair] = eid
                self._edge_cap.append(self.graph.edges[pair]["bandwidth"])
                self._edge_users.append([])
            out.append(eid)
        return tuple(out)

    # -- max-min fair sharing ------------------------------------------------------
    def _start_flow(self, flow: Flow) -> None:
        self._settle()
        self._flows.append(flow)
        users = self._edge_users
        for eid in flow.edge_ids:
            users[eid].append(flow)
        trace = self.sim.trace
        if trace is not None and "network" in trace.active:
            trace.instant("network", "flow-add", src=flow.src, dst=flow.dst,
                          bytes=flow.total, active=len(self._flows))
        self._reallocate(seed_edges=flow.edge_ids)

    def _settle(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            delivered = 0.0
            for flow in self._flows:
                moved = flow.allocation * dt
                flow.remaining -= moved
                delivered += moved
            self.bytes_delivered += delivered
        self._last_update = now

    # -- reallocation ---------------------------------------------------------------
    def _reallocate(self, seed_edges: Optional[Iterable[int]] = None) -> None:
        """Recompute max-min fair rates after a flow/topology change.

        With ``seed_edges`` (the edges of the arriving or departing
        flows) only the connected component of flows transitively
        sharing an edge with the perturbation is recomputed; rates
        outside that component cannot change.  Without it (topology
        mutation, or ``allocator="reference"``) everything is redone.
        """
        self._epoch += 1
        self.sim.stats.reallocations += 1
        trace = self.sim.trace
        if trace is not None and "network" in trace.active:
            trace.instant("network", "realloc", epoch=self._epoch,
                          flows=len(self._flows),
                          scoped=seed_edges is not None)
        if not self._flows:
            return
        if self.allocator == "reference":
            alloc = reference_max_min(
                [f.edge_ids for f in self._flows],
                dict(enumerate(self._edge_cap)))
            for flow, rate in zip(self._flows, alloc):
                flow.allocation = rate
        elif seed_edges is None:
            self._fill(self._flows)
        else:
            component = self._component_flows(seed_edges)
            if component:
                self._fill(component)
        self._schedule_next_completion()

    def _component_flows(self, seed_edges: Iterable[int]) -> List[Flow]:
        """Flows transitively sharing an edge with ``seed_edges``."""
        users = self._edge_users
        pending = list(seed_edges)
        seen_edges = set(pending)
        seen_flows = set()
        component: List[Flow] = []
        while pending:
            eid = pending.pop()
            for flow in users[eid]:
                fid = id(flow)
                if fid in seen_flows:
                    continue
                seen_flows.add(fid)
                component.append(flow)
                for other in flow.edge_ids:
                    if other not in seen_edges:
                        seen_edges.add(other)
                        pending.append(other)
        return component

    def _fill(self, flows: List[Flow]) -> None:
        """Progressive filling over ``flows`` (a closed component).

        Per-edge residual capacity and unfixed-user counts are kept as
        dicts keyed by edge id, so each round is one O(edges) scan plus
        O(path) updates per newly fixed flow — no per-round rescan of
        every flow on every edge.
        """
        cap = self._edge_cap
        users = self._edge_users
        residual: Dict[int, float] = {}
        nactive: Dict[int, int] = {}
        for flow in flows:
            flow.allocation = 0.0
            for eid in flow.edge_ids:
                if eid in nactive:
                    nactive[eid] += 1
                else:
                    nactive[eid] = 1
                    residual[eid] = cap[eid]
        unfixed = {id(f) for f in flows}
        while unfixed:
            best_eid, best_share = -1, math.inf
            for eid, n in nactive.items():
                if n:
                    share = residual[eid] / n
                    if share < best_share:
                        best_share, best_eid = share, eid
            if best_eid < 0:
                break  # remaining flows cross no constrained edge
            for flow in users[best_eid]:
                if id(flow) in unfixed:
                    flow.allocation = best_share
                    unfixed.discard(id(flow))
                    for eid in flow.edge_ids:
                        remaining = residual[eid] - best_share
                        residual[eid] = remaining if remaining > 0.0 else 0.0
                        nactive[eid] -= 1

    def _schedule_next_completion(self) -> None:
        horizon = math.inf
        for flow in self._flows:
            if flow.allocation > 0:
                eta = flow.remaining / flow.allocation
                if eta < horizon:
                    horizon = eta
        if math.isinf(horizon):
            return
        epoch = self._epoch
        self.sim.call_after(max(horizon, 0.0), lambda: self._wake(epoch))

    def _wake(self, epoch: int) -> None:
        trace = self.sim.trace
        if trace is not None and "network" not in trace.active:
            trace = None
        if epoch != self._epoch:
            self.sim.stats.wakeups_cancelled += 1
            if trace is not None:
                trace.instant("network", "stale-wakeup", epoch=epoch,
                              current=self._epoch)
            return
        self._settle()
        # Two completion criteria: the work is relatively drained, or the
        # residual would drain within a nanosecond at the current rate.
        # The latter absorbs the absolute float error of time deltas
        # (|now| * eps * rate), which can exceed any relative threshold
        # and would otherwise cause sub-ulp wakeup livelocks.
        finished = [f for f in self._flows
                    if f.remaining <= _EPS * f.total
                    or (f.allocation > 0
                        and f.remaining <= f.allocation * 1e-9)]
        seed: List[int] = []
        for flow in finished:
            self._flows.remove(flow)
            for eid in flow.edge_ids:
                self._edge_users[eid].remove(flow)
            seed.extend(flow.edge_ids)
            if trace is not None:
                trace.complete("network", "flow", ts=flow.started_at,
                               dur=self.sim.now - flow.started_at,
                               src=flow.src, dst=flow.dst, bytes=flow.total)
        self._reallocate(seed_edges=seed)
        for flow in finished:
            flow.event.succeed(self.sim.now - flow.started_at)

    @property
    def active_flows(self) -> int:
        return len(self._flows)
