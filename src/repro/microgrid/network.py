"""Network topology and max-min fair flow simulation.

The MicroGrid paper emulates wide-area links with an online network
simulator; we reproduce the behaviour that matters to scheduling and
rescheduling decisions: per-path latency and *shared* bandwidth.  Every
transfer is a flow routed over the shortest path (by latency) between
two hosts; link capacities are divided among the flows crossing them by
progressive-filling **max-min fairness**, recomputed whenever a flow
starts or finishes.

Capacities are in bytes/s, latencies in seconds, transfers in bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..sim.events import Event
from ..sim.kernel import Simulator
from .host import Host

__all__ = ["Link", "Topology", "Flow", "NetworkError"]

_EPS = 1e-9


class NetworkError(RuntimeError):
    """Raised for malformed topologies or unroutable transfers."""


@dataclass(frozen=True)
class Link:
    """A bidirectional network link (each direction has full capacity)."""

    a: str
    b: str
    bandwidth: float  # bytes/s
    latency: float  # seconds

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("link latency must be non-negative")


@dataclass
class Flow:
    """An in-flight transfer."""

    src: str
    dst: str
    path: Tuple[Tuple[str, str], ...]  # directed edges as ordered node pairs
    remaining: float  # bytes
    event: Event
    allocation: float = 0.0  # bytes/s currently granted
    started_at: float = 0.0
    total: float = 0.0


class Topology:
    """A routed grid network carrying max-min fair flows.

    Nodes are strings (host names and router names); hosts must be
    attached via :meth:`attach_host` before they can transfer.  Local
    (same-host) transfers complete at ``local_copy_bw``.
    """

    def __init__(self, sim: Simulator, local_copy_bw: float = 1e9) -> None:
        self.sim = sim
        self.graph = nx.Graph()
        self.local_copy_bw = float(local_copy_bw)
        self._hosts: Dict[str, Host] = {}
        self._flows: List[Flow] = []
        self._last_update = sim.now
        self._epoch = 0
        self._paths: Optional[dict] = None  # routing cache
        #: cumulative bytes delivered (for accounting/benchmarks)
        self.bytes_delivered = 0.0

    # -- construction -----------------------------------------------------------
    def add_node(self, name: str) -> None:
        """Add a routing-only node (e.g. a WAN router)."""
        self.graph.add_node(name)
        self._paths = None

    def attach_host(self, host: Host) -> None:
        """Register a host as an endpoint node."""
        if host.name in self._hosts:
            raise NetworkError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        self.graph.add_node(host.name)
        self._paths = None

    def add_link(self, a: str, b: str, bandwidth: float, latency: float) -> Link:
        """Connect two nodes with a bidirectional link."""
        link = Link(a, b, bandwidth, latency)
        self.graph.add_edge(a, b, bandwidth=float(bandwidth),
                            latency=float(latency))
        self._paths = None
        return link

    def host(self, name: str) -> Host:
        """Look up an attached host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    # -- routing ------------------------------------------------------------------
    def route(self, src: str, dst: str) -> List[str]:
        """Shortest path by latency between two nodes."""
        if self._paths is None:
            self._paths = {}
        key = (src, dst)
        path = self._paths.get(key)
        if path is None:
            try:
                path = nx.shortest_path(self.graph, src, dst, weight="latency")
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise NetworkError(f"no route {src!r} -> {dst!r}") from exc
            self._paths[key] = path
        return path

    def path_latency(self, src: str, dst: str) -> float:
        """One-way latency along the routed path (0 for local)."""
        if src == dst:
            return 0.0
        path = self.route(src, dst)
        return sum(self.graph.edges[u, v]["latency"]
                   for u, v in zip(path, path[1:]))

    def path_bottleneck_bw(self, src: str, dst: str) -> float:
        """Raw bottleneck capacity along the path, ignoring other flows."""
        if src == dst:
            return self.local_copy_bw
        path = self.route(src, dst)
        return min(self.graph.edges[u, v]["bandwidth"]
                   for u, v in zip(path, path[1:]))

    def estimate_transfer_seconds(self, src: str, dst: str, nbytes: float) -> float:
        """Latency + bytes/bottleneck estimate, as an NWS client would make.

        This deliberately ignores current contention: it is the number a
        scheduler computes from NWS latency/bandwidth reports.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.path_latency(src, dst) + nbytes / self.path_bottleneck_bw(src, dst)

    # -- transfers -------------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float, tag: str = "") -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; event triggers on arrival.

        The event value is the elapsed transfer time in seconds.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        ev = self.sim.event(name=f"xfer:{src}->{dst}:{tag}")
        start = self.sim.now
        if src == dst:
            delay = nbytes / self.local_copy_bw
            self.sim.call_after(delay, lambda: ev.succeed(self.sim.now - start))
            return ev
        path_nodes = self.route(src, dst)
        latency = self.path_latency(src, dst)
        if nbytes == 0:
            self.sim.call_after(latency, lambda: ev.succeed(self.sim.now - start))
            return ev
        edges = tuple(zip(path_nodes, path_nodes[1:]))
        flow = Flow(src=src, dst=dst, path=edges, remaining=float(nbytes),
                    event=ev, started_at=start, total=float(nbytes))
        # The first byte spends `latency` in the pipe before streaming
        # begins; model it as a delayed flow start.
        self.sim.call_after(latency, lambda: self._start_flow(flow))
        return ev

    # -- max-min fair sharing ------------------------------------------------------
    def _start_flow(self, flow: Flow) -> None:
        self._settle()
        self._flows.append(flow)
        self._reallocate()

    def _settle(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                moved = flow.allocation * dt
                flow.remaining -= moved
                self.bytes_delivered += moved
        self._last_update = now

    def _edge_key(self, u: str, v: str) -> Tuple[str, str]:
        # Links are full duplex: each direction is an independent capacity.
        return (u, v)

    def _reallocate(self) -> None:
        """Progressive-filling max-min fair allocation across all flows."""
        self._epoch += 1
        if not self._flows:
            return
        # Residual capacity per directed edge and the unfixed flows on it.
        residual: Dict[Tuple[str, str], float] = {}
        users: Dict[Tuple[str, str], List[Flow]] = {}
        for flow in self._flows:
            flow.allocation = 0.0
            for u, v in flow.path:
                key = self._edge_key(u, v)
                residual.setdefault(key, self.graph.edges[u, v]["bandwidth"])
                users.setdefault(key, []).append(flow)
        unfixed = set(map(id, self._flows))
        flows_by_id = {id(f): f for f in self._flows}
        while unfixed:
            # Find the bottleneck: the edge with the smallest fair share.
            best_key, best_share = None, math.inf
            for key, flows in users.items():
                active = [f for f in flows if id(f) in unfixed]
                if not active:
                    continue
                share = residual[key] / len(active)
                if share < best_share:
                    best_share, best_key = share, key
            if best_key is None:
                break  # remaining flows cross no constrained edge
            saturated = [f for f in users[best_key] if id(f) in unfixed]
            for flow in saturated:
                flow.allocation = best_share
                unfixed.discard(id(flow))
                for u, v in flow.path:
                    key = self._edge_key(u, v)
                    residual[key] = max(residual[key] - best_share, 0.0)
        del flows_by_id
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        horizon = math.inf
        for flow in self._flows:
            if flow.allocation > 0:
                horizon = min(horizon, flow.remaining / flow.allocation)
        if math.isinf(horizon):
            return
        epoch = self._epoch
        self.sim.call_after(max(horizon, 0.0), lambda: self._wake(epoch))

    def _wake(self, epoch: int) -> None:
        if epoch != self._epoch:
            return
        self._settle()
        # Two completion criteria: the work is relatively drained, or the
        # residual would drain within a nanosecond at the current rate.
        # The latter absorbs the absolute float error of time deltas
        # (|now| * eps * rate), which can exceed any relative threshold
        # and would otherwise cause sub-ulp wakeup livelocks.
        finished = [f for f in self._flows
                    if f.remaining <= _EPS * f.total
                    or (f.allocation > 0
                        and f.remaining <= f.allocation * 1e-9)]
        for flow in finished:
            self._flows.remove(flow)
        self._reallocate()
        for flow in finished:
            flow.event.succeed(self.sim.now - flow.started_at)

    @property
    def active_flows(self) -> int:
        return len(self._flows)
