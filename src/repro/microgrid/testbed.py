"""Canonical GrADS testbed definitions.

Three virtual grids used throughout the reproduction:

* :func:`grads_macrogrid` — the full MacroGrid of §1: clusters at UCSD
  (10 machines), UTK (2 x 12), UIUC (2 x 12) and UH (24), joined by
  Internet links.
* :func:`fig3_testbed` — the §4.1.2 stop/restart experiment: 4 UTK
  933 MHz dual-PIII nodes on 100 Mb switched Ethernet and 8 UIUC
  450 MHz PII nodes on 1.28 Gb Myrinet, connected via the Internet.
* :func:`fig4_testbed` — the §4.2 MicroGrid swap experiment: 3 UTK
  550 MHz PII + 3 UIUC 450 MHz PII clusters on Gigabit Ethernet and a
  lone 1.7 GHz Athlon at UCSD; 30 ms UCSD<->site latency, 11 ms
  UTK<->UIUC latency.

Clock-speed-to-Mflop/s conversion: these are late-90s x86 parts running
dense kernels at well under one flop per cycle; we use the conventional
~0.4 flop/cycle sustained figure for ScaLAPACK-era BLAS, which keeps the
*ratios* between machines (what the scheduler actually consumes) equal
to the paper's clock ratios.
"""

from __future__ import annotations

from ..sim.kernel import Simulator
from .cluster import Cluster
from .dml import Grid
from .host import Architecture, CacheLevel, Host

__all__ = [
    "ARCH_PIII_933",
    "ARCH_PII_550",
    "ARCH_PII_450",
    "ARCH_ATHLON_1700",
    "ARCH_IA64_900",
    "grads_macrogrid",
    "fig3_testbed",
    "fig4_testbed",
    "heterogeneous_testbed",
]

_SUSTAINED = 0.4  # sustained flops per cycle for dense kernels

ARCH_PIII_933 = Architecture(
    name="pentium3-933", mflops=933 * _SUSTAINED, isa="ia32",
    caches=(CacheLevel(size=256 * 1024),), memory_bytes=1 << 30)
ARCH_PII_550 = Architecture(
    name="pentium2-550", mflops=550 * _SUSTAINED, isa="ia32",
    caches=(CacheLevel(size=512 * 1024),), memory_bytes=512 << 20)
ARCH_PII_450 = Architecture(
    name="pentium2-450", mflops=450 * _SUSTAINED, isa="ia32",
    caches=(CacheLevel(size=512 * 1024),), memory_bytes=512 << 20)
ARCH_ATHLON_1700 = Architecture(
    name="athlon-1700", mflops=1700 * _SUSTAINED, isa="ia32",
    caches=(CacheLevel(size=256 * 1024),), memory_bytes=1 << 30)
ARCH_IA64_900 = Architecture(
    name="itanium2-900", mflops=900 * 2 * _SUSTAINED, isa="ia64",
    caches=(CacheLevel(size=1536 * 1024),), memory_bytes=2 << 30)

MB100 = 12.5e6  # 100 Mb Ethernet in bytes/s
GB1 = 125e6  # Gigabit Ethernet
MYRINET = 160e6  # 1.28 Gb/s full-duplex Myrinet
INTERNET_BW = 5e6  # conservative 2003 cross-country Internet path


def fig3_testbed(sim: Simulator, internet_bw: float = INTERNET_BW,
                 internet_lat: float = 0.011) -> Grid:
    """The QR stop/restart testbed of §4.1.2."""
    grid = Grid(sim)
    utk = grid.add_cluster(Cluster(
        sim, grid.topology, "utk", arch=ARCH_PIII_933, n_hosts=4,
        cores_per_host=2, link_bandwidth=MB100, link_latency=1e-4,
        site="UTK"))
    uiuc = grid.add_cluster(Cluster(
        sim, grid.topology, "uiuc", arch=ARCH_PII_450, n_hosts=8,
        cores_per_host=1, link_bandwidth=MYRINET, link_latency=5e-5,
        site="UIUC"))
    grid.topology.add_link(utk.switch, uiuc.switch,
                           bandwidth=internet_bw, latency=internet_lat)
    return grid


def fig4_testbed(sim: Simulator) -> Grid:
    """The N-body process-swapping virtual grid of §4.2."""
    grid = Grid(sim)
    utk = grid.add_cluster(Cluster(
        sim, grid.topology, "utk", arch=ARCH_PII_550, n_hosts=3,
        cores_per_host=1, link_bandwidth=GB1, link_latency=1e-4,
        site="UTK"))
    uiuc = grid.add_cluster(Cluster(
        sim, grid.topology, "uiuc", arch=ARCH_PII_450, n_hosts=3,
        cores_per_host=1, link_bandwidth=GB1, link_latency=1e-4,
        site="UIUC"))
    # 11 ms between UTK and UIUC, 30 ms from UCSD to both sites.
    grid.topology.add_link(utk.switch, uiuc.switch,
                           bandwidth=INTERNET_BW, latency=0.011)
    ucsd = Host(sim, "ucsd.n0", ARCH_ATHLON_1700, cores=1)
    grid.add_standalone_host(ucsd, uplink_bw=MB100, uplink_lat=1e-4)
    grid.topology.add_link("ucsd.n0.uplink", utk.switch,
                           bandwidth=INTERNET_BW, latency=0.030)
    grid.topology.add_link("ucsd.n0.uplink", uiuc.switch,
                           bandwidth=INTERNET_BW, latency=0.030)
    return grid


def grads_macrogrid(sim: Simulator) -> Grid:
    """The full GrADS MacroGrid of §1 (UCSD + UTK + UIUC + UH)."""
    grid = Grid(sim)
    specs = [
        ("ucsd", ARCH_ATHLON_1700, 10, 1, MB100),
        ("utk-a", ARCH_PIII_933, 12, 2, MB100),
        ("utk-b", ARCH_PII_550, 12, 1, GB1),
        ("uiuc-a", ARCH_PII_450, 12, 1, MYRINET),
        ("uiuc-b", ARCH_PII_450, 12, 1, GB1),
        ("uh", ARCH_PIII_933, 24, 1, MB100),
    ]
    clusters = []
    for name, arch, n, cores, nic in specs:
        clusters.append(grid.add_cluster(Cluster(
            sim, grid.topology, name, arch=arch, n_hosts=n,
            cores_per_host=cores, link_bandwidth=nic, link_latency=1e-4,
            site=name.split("-")[0].upper())))
    # Star over an Internet core; inter-site paths share the core links.
    grid.topology.add_node("internet")
    lat = {"ucsd": 0.030, "utk-a": 0.011, "utk-b": 0.011,
           "uiuc-a": 0.012, "uiuc-b": 0.012, "uh": 0.020}
    for cluster in clusters:
        grid.topology.add_link(cluster.switch, "internet",
                               bandwidth=INTERNET_BW,
                               latency=lat[cluster.name] / 2)
    return grid


def heterogeneous_testbed(sim: Simulator) -> Grid:
    """Mixed IA-32 / IA-64 grid for the EMAN §3.3 experiment.

    The SC2003 demonstration used both IA-32 and IA-64 machines; the
    binder's recompile-at-target design is what makes this legal.
    """
    grid = Grid(sim)
    grid.add_cluster(Cluster(
        sim, grid.topology, "ia32", arch=ARCH_PIII_933, n_hosts=8,
        cores_per_host=2, link_bandwidth=MB100, link_latency=1e-4,
        site="RICE"))
    grid.add_cluster(Cluster(
        sim, grid.topology, "ia64", arch=ARCH_IA64_900, n_hosts=4,
        cores_per_host=1, link_bandwidth=GB1, link_latency=1e-4,
        site="RICE64"))
    grid.topology.add_link(grid.clusters["ia32"].switch,
                           grid.clusters["ia64"].switch,
                           bandwidth=GB1, latency=5e-4)
    return grid
