"""Background-load generation for hosts.

The paper's experiments inject "artificial load" (§4.1.2) or
"competitive processes" (§4.2) at a chosen instant.  This module
provides that, plus stochastic load traces for the wider parameter
sweeps (NWS forecasting benchmarks, swap-policy ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from ..sim.kernel import Simulator
from .host import Host

__all__ = ["ScheduledLoad", "RandomLoadGenerator", "TraceLoad"]


@dataclass
class ScheduledLoad:
    """Inject ``nprocs`` competing processes on a host at a given time.

    Mirrors the paper: "five minutes after the start of the application,
    an artificial load was introduced on a UTK node" and "at (virtual)
    time 80 seconds, we added two competitive processes".
    """

    host: Host
    at: float
    nprocs: int = 1
    until: Optional[float] = None  # remove again at this time, if set
    _handles: list = field(default_factory=list, repr=False)
    #: host failure count at injection time; a later crash drops our
    #: tasks, making the recorded handles stale
    _epoch: int = field(default=-1, repr=False)

    def install(self, sim: Simulator) -> None:
        """Arm the injection (and removal, if ``until`` is set)."""
        if self.until is not None and self.until <= self.at:
            raise ValueError("load removal must come after injection")
        sim.call_at(self.at, self._inject)
        if self.until is not None:
            sim.call_at(self.until, self._remove)

    def _inject(self) -> None:
        if not self.host.alive:
            return  # a crashed host has no competing processes
        self._handles = self.host.add_background_load(self.nprocs)
        self._epoch = self.host.failures

    def _remove(self) -> None:
        handles, self._handles = self._handles, []
        if not handles:
            return
        if self.host.failures != self._epoch:
            return  # the crash already dropped these tasks
        self.host.remove_background_load(handles)


class TraceLoad:
    """Replay a (time, nprocs) load trace on one host.

    The trace must be sorted by time; each entry sets the *absolute*
    number of background processes from that instant onward.
    """

    def __init__(self, host: Host, trace: Sequence[Tuple[float, int]]) -> None:
        times = [t for t, _ in trace]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("load trace must be sorted by time")
        if any(n < 0 for _, n in trace):
            raise ValueError("load levels must be non-negative")
        self.host = host
        self.trace = list(trace)
        self._handles: list = []
        self._epoch = host.failures

    def install(self, sim: Simulator) -> None:
        for at, nprocs in self.trace:
            sim.call_at(at, lambda n=nprocs: self._set_level(n))

    def _set_level(self, nprocs: int) -> None:
        if self.host.failures != self._epoch:
            # A crash dropped whatever we had injected; the recorded
            # handles are stale and must not be "removed" again.
            self._handles = []
            self._epoch = self.host.failures
        if not self.host.alive:
            return  # pick the level back up at the next trace entry
        current = len(self._handles)
        if nprocs > current:
            self._handles.extend(
                self.host.add_background_load(nprocs - current))
        elif nprocs < current:
            drop, self._handles = (self._handles[nprocs:],
                                   self._handles[:nprocs])
            self.host.remove_background_load(drop)


class RandomLoadGenerator:
    """Markov on/off background load across a set of hosts.

    Each host independently alternates between idle and loaded periods
    with exponentially distributed durations; loaded periods run
    ``nprocs`` competing processes.  Used for the NWS forecasting and
    swap-policy sweeps where the paper varies "dynamic conditions".
    """

    def __init__(self, hosts: Sequence[Host], rng: np.random.Generator,
                 mean_idle: float = 120.0, mean_busy: float = 60.0,
                 nprocs: int = 1) -> None:
        if mean_idle <= 0 or mean_busy <= 0:
            raise ValueError("mean period lengths must be positive")
        self.hosts = list(hosts)
        self.rng = rng
        self.mean_idle = mean_idle
        self.mean_busy = mean_busy
        self.nprocs = nprocs

    def install(self, sim: Simulator) -> None:
        for host in self.hosts:
            sim.process(self._drive(sim, host), name=f"loadgen:{host.name}")

    def _drive(self, sim: Simulator, host: Host):
        while True:
            yield sim.timeout(float(self.rng.exponential(self.mean_idle)))
            # Both timeouts are always drawn so the schedule for a seed
            # does not depend on host health (same idiom as the failure
            # injector); injection/removal skip crashed-host windows.
            injected = False
            epoch = 0
            handles: list = []
            if host.alive:
                handles = host.add_background_load(self.nprocs)
                epoch = host.failures
                injected = True
            yield sim.timeout(float(self.rng.exponential(self.mean_busy)))
            if injected and host.failures == epoch:
                host.remove_background_load(handles)
