"""The MicroGrid: a controlled emulation of the Grid.

Virtual hosts (processor-sharing CPUs), clusters, routed network
topologies with max-min fair bandwidth sharing, background-load
injection and the canonical GrADS testbed descriptions.
"""

from .cluster import Cluster
from .dml import DMLError, Grid, parse_grid, parse_quantity
from .emulation import VirtualClock, dilated_grid
from .failures import RandomFailureInjector, ScheduledFailure
from .host import Architecture, CacheLevel, Host, HostFailure
from .loadgen import RandomLoadGenerator, ScheduledLoad, TraceLoad
from .network import Flow, Link, NetworkError, Topology, reference_max_min
from .testbed import (
    ARCH_ATHLON_1700,
    ARCH_IA64_900,
    ARCH_PII_450,
    ARCH_PII_550,
    ARCH_PIII_933,
    fig3_testbed,
    fig4_testbed,
    grads_macrogrid,
    heterogeneous_testbed,
)

__all__ = [
    "ARCH_ATHLON_1700",
    "ARCH_IA64_900",
    "ARCH_PII_450",
    "ARCH_PII_550",
    "ARCH_PIII_933",
    "Architecture",
    "CacheLevel",
    "Cluster",
    "DMLError",
    "Flow",
    "Grid",
    "Host",
    "HostFailure",
    "Link",
    "NetworkError",
    "RandomFailureInjector",
    "RandomLoadGenerator",
    "ScheduledFailure",
    "ScheduledLoad",
    "Topology",
    "TraceLoad",
    "VirtualClock",
    "dilated_grid",
    "fig3_testbed",
    "fig4_testbed",
    "grads_macrogrid",
    "heterogeneous_testbed",
    "parse_grid",
    "parse_quantity",
    "reference_max_min",
]
