"""Distributed binder and launcher (paper §2)."""

from .binder import (
    BINDER_PACKAGE,
    SENSOR_INSTRUMENT_SECONDS,
    BinderError,
    BindReport,
    DistributedBinder,
)
from .launcher import MPI_STARTUP_SECONDS, Launcher, LaunchHandle

__all__ = [
    "BINDER_PACKAGE",
    "BinderError",
    "BindReport",
    "DistributedBinder",
    "Launcher",
    "LaunchHandle",
    "MPI_STARTUP_SECONDS",
    "SENSOR_INSTRUMENT_SECONDS",
]
