"""The distributed GrADS binder (§2).

The binder "executes on all Grid resources specified in the schedule".
The *global* binder queries GIS for the location of all software —
starting with the local binder code itself — then launches a *local*
binder on each scheduled machine.  Each local binder locates the
application libraries, instruments the code with Autopilot sensors,
and configures and compiles the shipped intermediate representation
*on the target*, which is what makes heterogeneous (e.g. IA-32 +
IA-64) resource sets work.

Everything here costs real simulated time: the compilation package is
transferred over the network, and configuring/compiling consume target
CPU, so binding a loaded or slow node is visibly slower — as it was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..gis.directory import GridInformationService
from ..gis.software import SoftwareNotFound, SoftwareRegistry
from ..microgrid.host import HostFailure
from ..microgrid.network import Topology
from ..sim.events import AllOf, Event
from ..sim.kernel import Simulator
from ..cop.cop import ConfigurableObjectProgram

__all__ = ["BinderError", "BindReport", "DistributedBinder",
           "BINDER_PACKAGE", "SENSOR_INSTRUMENT_SECONDS"]

#: package name the local binder code is registered under in GIS
BINDER_PACKAGE = "grads-binder"

#: fixed cost of inserting Autopilot sensors into one component
SENSOR_INSTRUMENT_SECONDS = 0.5


class BinderError(RuntimeError):
    """Raised when binding cannot complete (missing software, etc.)."""


@dataclass
class BindReport:
    """Timing breakdown of one bind operation (feeds the Figure 3
    "Grid overhead" bar)."""

    hosts: List[str]
    started_at: float
    finished_at: float
    per_host_seconds: Dict[str, float] = field(default_factory=dict)
    isas: Dict[str, str] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.finished_at - self.started_at


class DistributedBinder:
    """Global binder + per-target local binders."""

    def __init__(self, sim: Simulator, topology: Topology,
                 gis: GridInformationService,
                 software: SoftwareRegistry,
                 package_source: str) -> None:
        """``package_source`` names the host holding the compilation
        package (where the user invoked the application manager)."""
        self.sim = sim
        self.topology = topology
        self.gis = gis
        self.software = software
        self.package_source = package_source

    def bind(self, cop: ConfigurableObjectProgram,
             host_names: Sequence[str]) -> Event:
        """Bind ``cop`` onto the scheduled hosts.

        Returns a process-event whose value is a :class:`BindReport`.
        Fails (raises through the event) if required software is absent
        anywhere — the global binder checks *before* shipping anything.
        """
        if not host_names:
            raise BinderError("empty schedule")
        # Global binder phase: locate the local binder code and all
        # required libraries on every target, via GIS.
        for name in host_names:
            if name not in self.gis:
                raise BinderError(f"host {name!r} not registered in GIS")
            missing = self.software.missing(
                (BINDER_PACKAGE, *cop.package.required_packages), name)
            if missing:
                raise BinderError(
                    f"software missing on {name!r}: {', '.join(missing)}")
        return self.sim.process(self._run(cop, list(host_names)),
                                name=f"binder:{cop.name}")

    def _run(self, cop: ConfigurableObjectProgram, host_names: List[str]):
        # A target that is already down fails the bind before any IR
        # ships; one that dies *during* the bind fails its local binder
        # mid-flight instead.
        for name in host_names:
            host = self.gis.host(name)
            if not host.alive:
                raise HostFailure(host.name)
        report = BindReport(hosts=host_names, started_at=self.sim.now,
                            finished_at=self.sim.now)
        local_binders = [
            self.sim.process(self._local_bind(cop, name, report),
                             name=f"localbinder:{name}")
            for name in host_names
        ]
        try:
            yield AllOf(self.sim, local_binders)
        except Exception:
            # Reap the surviving local binders: once the bind has
            # failed, a sibling failing later would have no waiter and
            # would abort the whole simulation.
            for proc in local_binders:
                proc.kill()
            raise
        report.finished_at = self.sim.now
        return report

    def _local_bind(self, cop: ConfigurableObjectProgram, host_name: str,
                    report: BindReport):
        started = self.sim.now
        host = self.gis.host(host_name)
        # Ship the compilation package (IR + configure script).
        yield self.topology.transfer(self.package_source, host_name,
                                     cop.package.ir_bytes,
                                     tag=f"bind:{cop.name}")
        # Local binder resolves library paths via GIS (zero-cost lookups,
        # but they must succeed — rechecked here in case of races).
        for package in cop.package.required_packages:
            try:
                self.software.locate(package, host_name)
            except SoftwareNotFound as exc:
                raise BinderError(str(exc)) from exc
        # Instrument with Autopilot sensors, then configure and compile
        # on the target machine — target CPU, target ISA.
        yield self.sim.timeout(SENSOR_INSTRUMENT_SECONDS
                               + cop.package.configure_seconds)
        yield host.compute(cop.package.compile_mflop, tag="compile")
        report.per_host_seconds[host_name] = self.sim.now - started
        report.isas[host_name] = host.arch.isa
