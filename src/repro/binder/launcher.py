"""The launcher: starts a bound COP on its scheduled resources.

"If the application is an MPI application, then a global
synchronization must be carried out as part of the MPI protocol at the
beginning of the execution.  In this case, the binder returns control
to the application manager which launches the application after
synchronization.  In non-MPI applications, the binder launches the
application and notifies the application manager when the program
terminates." (§2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gis.directory import GridInformationService
from ..microgrid.host import HostFailure
from ..microgrid.network import Topology
from ..mpi.comm import MpiJob
from ..sim.events import Event
from ..sim.kernel import Simulator
from ..cop.cop import ConfigurableObjectProgram

__all__ = ["Launcher", "LaunchHandle", "MPI_STARTUP_SECONDS"]

#: cost of the MPI global synchronization at startup
MPI_STARTUP_SECONDS = 1.0


@dataclass
class LaunchHandle:
    """A running (or finished) application instance."""

    job: MpiJob
    started_at: float
    finished: Event


class Launcher:
    """Creates the MPI job for a bound COP and starts its rank bodies."""

    def __init__(self, sim: Simulator, topology: Topology,
                 gis: GridInformationService) -> None:
        self.sim = sim
        self.topology = topology
        self.gis = gis

    def launch(self, cop: ConfigurableObjectProgram,
               host_names: Sequence[str],
               body) -> Event:
        """Start ``body`` (a rank-body generator function) on the hosts.

        Returns a process-event whose value is a :class:`LaunchHandle`;
        it triggers once the application has *started* (after the MPI
        synchronization), with ``handle.finished`` tracking completion.

        Refuses to launch onto a dead host: raises
        :class:`HostFailure` synchronously so the caller's retry logic
        sees the problem before any MPI startup time is billed.
        """
        if not host_names:
            raise ValueError("empty host list")
        hosts = [self.gis.host(name) for name in host_names]
        for host in hosts:
            if not host.alive:
                trace = self.sim.trace
                if trace is not None and "fault" in trace.active:
                    trace.instant("fault", "launch-refused", host=host.name,
                                  cop=cop.name)
                raise HostFailure(host.name)
        return self.sim.process(self._run(cop, hosts, body),
                                name=f"launch:{cop.name}")

    def _run(self, cop: ConfigurableObjectProgram, hosts, body):
        if cop.is_mpi:
            yield self.sim.timeout(MPI_STARTUP_SECONDS)
        job = MpiJob(self.sim, self.topology, hosts, name=cop.name)
        finished = job.launch(body)
        return LaunchHandle(job=job, started_at=self.sim.now,
                            finished=finished)
