"""The contract monitor (§4.1.1).

"The contract monitor compares the actual execution times with
predicted ones and calculates the ratio.  The tolerance limits of the
ratio are specified as inputs to the contract monitor.  When a given
ratio is greater than the upper tolerance limit, the contract monitor
calculates the average of the computed ratios.  If the average is
greater than the upper tolerance limit, it contacts the rescheduler,
requesting that the application be migrated.  If the rescheduler
chooses not to migrate the application, the contract monitor adjusts
its tolerance limits to new values.  Similarly, when a given ratio is
less than the lower tolerance limit, the contract monitor calculates
the average of the ratios and lowers the tolerance limits, if
necessary."

The fuzzy engine grades each violation's severity, which is also what
the Contract Viewer GUI visualized; severity is attached to the
migration request so reschedulers can prioritize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..mpi.comm import MpiJob
from ..sim.kernel import Simulator
from .contract import ContractViolation, PerformanceContract
from .fuzzy import FuzzyEngine, contract_violation_engine

__all__ = ["MigrationRequest", "ContractMonitor"]


@dataclass(frozen=True)
class MigrationRequest:
    """What the monitor hands the rescheduler on a confirmed violation."""

    time: float
    phase: int
    ratio: float
    average_ratio: float
    severity: float  # fuzzy violation degree in [0, 1]


class ContractMonitor:
    """Adaptive-tolerance ratio monitoring for one application."""

    def __init__(self, sim: Simulator, contract: PerformanceContract,
                 rescheduler: Optional[Callable[[MigrationRequest], bool]] = None,
                 fuzzy: Optional[FuzzyEngine] = None,
                 window: int = 5, adjust_margin: float = 1.2) -> None:
        """``rescheduler(request) -> bool`` returns True if it migrated.

        ``window`` is how many recent ratios the confirmation average
        uses; ``adjust_margin`` is the headroom factor applied when the
        monitor renegotiates its limits after a declined migration.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        if adjust_margin < 1.0:
            raise ValueError("adjust_margin must be >= 1")
        self.sim = sim
        self.contract = contract
        self.rescheduler = rescheduler
        self.fuzzy = fuzzy if fuzzy is not None else contract_violation_engine()
        self.window = window
        self.adjust_margin = adjust_margin
        # live tolerance limits (the contract's are the initial terms)
        self.upper = contract.upper
        self.lower = contract.lower
        self.ratios: List[float] = []
        self.requests: List[MigrationRequest] = []
        self.limit_adjustments: List[tuple] = []
        self._suspended = False

    # -- wiring ---------------------------------------------------------------
    def attach_job(self, job: MpiJob) -> None:
        """Subscribe to the job's binder-inserted iteration sensors.

        Ranks report individually; a bulk-synchronous app's phase time
        is governed by its slowest rank, so the monitor keeps the max
        over ranks for each phase and evaluates when the phase is fully
        reported.

        Failure hardening: ranks are tracked per phase as a *set* (a
        rank re-reporting an iteration — e.g. replaying steps after an
        SRS checkpoint restart — cannot overshoot the ``>= job.size``
        completion test), evaluated phases are popped so the pending map
        stays bounded, and re-reports of an already-evaluated phase are
        ignored as stale.
        """
        pending: dict = {}  # iteration -> (worst seconds, ranks reported)
        watermark = -1  # highest iteration already evaluated

        def on_iteration(rank: int, iteration: int, seconds: float) -> None:
            nonlocal watermark
            if iteration not in pending and iteration <= watermark:
                return  # stale re-report of an evaluated phase
            worst, ranks = pending.setdefault(iteration, (0.0, set()))
            if rank in ranks:
                return  # duplicate report from the same rank
            ranks.add(rank)
            pending[iteration] = (max(worst, seconds), ranks)
            if len(ranks) >= job.size:
                worst, _ranks = pending.pop(iteration)
                watermark = max(watermark, iteration)
                self.report_phase(iteration, worst)

        job.on_iteration(on_iteration)

    # -- suspension around migrations ---------------------------------------------
    def suspend(self) -> None:
        """Stop evaluating (used while a migration is in progress)."""
        self._suspended = True

    def resume(self, clear_history: bool = True) -> None:
        if clear_history:
            self.ratios.clear()
        self._suspended = False

    # -- the §4.1.1 algorithm -----------------------------------------------------
    def report_phase(self, phase: int, measured_seconds: float) -> None:
        if self._suspended:
            return
        ratio = self.contract.ratio(phase, measured_seconds)
        self.ratios.append(ratio)
        trace = self.sim.trace
        if trace is not None and "contract" in trace.active:
            trace.instant("contract", "ratio", phase=phase, ratio=ratio,
                          upper=self.upper, lower=self.lower)
        if ratio > self.upper:
            average = self._average()
            if average > self.upper:
                self._confirmed_slow(phase, ratio, average)
        elif ratio < self.lower:
            average = self._average()
            if average < self.lower:
                self._confirmed_fast(phase, ratio, average)

    def _average(self) -> float:
        recent = self.ratios[-self.window:]
        return float(np.mean(recent))

    def _confirmed_slow(self, phase: int, ratio: float,
                        average: float) -> None:
        severity = self.fuzzy.infer(ratio=average)
        self.contract.record_violation(ContractViolation(
            time=self.sim.now, phase=phase, ratio=ratio,
            average_ratio=average, kind="slow"))
        request = MigrationRequest(time=self.sim.now, phase=phase,
                                   ratio=ratio, average_ratio=average,
                                   severity=severity)
        self.requests.append(request)
        trace = self.sim.trace
        if trace is not None and "contract" in trace.active:
            trace.instant("contract", "violation", kind="slow", phase=phase,
                          ratio=ratio, average_ratio=average,
                          severity=severity)
            trace.instant("contract", "migration-request", phase=phase,
                          severity=severity)
        migrated = False
        if self.rescheduler is not None:
            migrated = bool(self.rescheduler(request))
        if not migrated:
            # Rescheduler declined: accept the new normal so the monitor
            # does not re-fire every phase on the same condition.  Only
            # log an adjustment when the live limit actually moves — an
            # append for new_upper <= upper would make the adjustment
            # log disagree with self.upper.
            new_upper = average * self.adjust_margin
            if new_upper > self.upper:
                self.limit_adjustments.append(
                    (self.sim.now, self.upper, new_upper))
                self.upper = new_upper

    def _confirmed_fast(self, phase: int, ratio: float,
                        average: float) -> None:
        self.contract.record_violation(ContractViolation(
            time=self.sim.now, phase=phase, ratio=ratio,
            average_ratio=average, kind="fast"))
        trace = self.sim.trace
        if trace is not None and "contract" in trace.active:
            trace.instant("contract", "violation", kind="fast", phase=phase,
                          ratio=ratio, average_ratio=average)
        # Running faster than contract: tighten limits downward so a
        # later slowdown back to the (poor) contract level is caught.
        new_upper = max(average * self.adjust_margin, self.lower * 1.01)
        if new_upper < self.upper:
            self.limit_adjustments.append(
                (self.sim.now, self.upper, new_upper))
            self.upper = new_upper
        new_lower = average / self.adjust_margin
        if new_lower < self.lower:
            self.limit_adjustments.append(
                (self.sim.now, self.lower, new_lower))
            self.lower = new_lower
