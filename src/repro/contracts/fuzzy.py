"""A small fuzzy-logic inference engine.

Autopilot provides "a decision-making mechanism based on fuzzy logic"
(§1).  The contract monitor uses it to turn a noisy performance ratio
into a graded violation severity instead of a brittle threshold.  This
is a classic zero-order Sugeno system: trapezoidal memberships, max-min
rule activation, weighted-average defuzzification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["Trapezoid", "FuzzyVariable", "FuzzyRule", "FuzzyEngine"]


@dataclass(frozen=True)
class Trapezoid:
    """Trapezoidal membership function (a <= b <= c <= d).

    Degenerate shapes are allowed: a==b gives a crisp left edge,
    b==c a triangle.
    """

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not (self.a <= self.b <= self.c <= self.d):
            raise ValueError(f"trapezoid corners must be ordered: {self}")

    def __call__(self, x: float) -> float:
        if x < self.a or x > self.d:
            return 0.0
        if self.b <= x <= self.c:
            return 1.0
        if x < self.b:  # rising edge (a < b guaranteed here)
            return (x - self.a) / (self.b - self.a)
        return (self.d - x) / (self.d - self.c)  # falling edge


@dataclass(frozen=True)
class FuzzyVariable:
    """A named input variable with labelled membership sets."""

    name: str
    sets: Mapping[str, Trapezoid]

    def fuzzify(self, x: float) -> Dict[str, float]:
        return {label: mf(x) for label, mf in self.sets.items()}

    def membership(self, label: str, x: float) -> float:
        try:
            return self.sets[label](x)
        except KeyError:
            raise KeyError(f"{self.name} has no set {label!r}") from None


@dataclass(frozen=True)
class FuzzyRule:
    """IF var1 is setA AND var2 is setB ... THEN output = value."""

    antecedents: Tuple[Tuple[str, str], ...]  # (variable, set) pairs
    output: float

    def activation(self, variables: Mapping[str, FuzzyVariable],
                   inputs: Mapping[str, float]) -> float:
        degree = 1.0
        for var_name, set_label in self.antecedents:
            if var_name not in variables:
                raise KeyError(f"unknown fuzzy variable {var_name!r}")
            if var_name not in inputs:
                raise KeyError(f"missing input for {var_name!r}")
            degree = min(degree,
                         variables[var_name].membership(set_label,
                                                        inputs[var_name]))
        return degree


class FuzzyEngine:
    """Zero-order Sugeno inference over a rule base."""

    def __init__(self, variables: Sequence[FuzzyVariable],
                 rules: Sequence[FuzzyRule]) -> None:
        if not rules:
            raise ValueError("a fuzzy engine needs at least one rule")
        self.variables = {v.name: v for v in variables}
        self.rules = list(rules)

    def infer(self, **inputs: float) -> float:
        """Crisp output: activation-weighted average of rule outputs.

        With zero total activation (inputs outside every set) returns 0.
        """
        weighted = 0.0
        total = 0.0
        for rule in self.rules:
            w = rule.activation(self.variables, inputs)
            weighted += w * rule.output
            total += w
        return weighted / total if total > 0 else 0.0

    def activations(self, **inputs: float) -> List[Tuple[FuzzyRule, float]]:
        """Per-rule activations, for explainability in the monitor GUI."""
        return [(rule, rule.activation(self.variables, inputs))
                for rule in self.rules]


def contract_violation_engine() -> FuzzyEngine:
    """The contract monitor's rule base.

    Input: ``ratio`` = measured / predicted phase time.  Output in
    [0, 1]: 0 = performing to contract, 1 = severe violation.
    """
    ratio = FuzzyVariable("ratio", {
        "fast": Trapezoid(0.0, 0.0, 0.5, 0.8),
        "nominal": Trapezoid(0.5, 0.8, 1.2, 1.6),
        "slow": Trapezoid(1.2, 1.6, 2.5, 3.5),
        "very_slow": Trapezoid(2.5, 3.5, 1e9, 1e9),
    })
    rules = [
        FuzzyRule((("ratio", "fast"),), 0.0),
        FuzzyRule((("ratio", "nominal"),), 0.0),
        FuzzyRule((("ratio", "slow"),), 0.6),
        FuzzyRule((("ratio", "very_slow"),), 1.0),
    ]
    return FuzzyEngine([ratio], rules)
