"""Performance contracts (Vraalsen et al.; paper §1, §4.1.1).

A contract "specif[ies] an agreement between application demands and
resource capabilities": for each execution phase (an iteration, a
panel factorization step, ...) the model-predicted duration on the
scheduled resources.  The monitor compares measured durations against
these predictions as ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

__all__ = ["PerformanceContract", "ContractViolation"]


@dataclass(frozen=True)
class ContractViolation:
    """Recorded when measured performance leaves the tolerance band."""

    time: float
    phase: int
    ratio: float
    average_ratio: float
    kind: str  # "slow" or "fast"


@dataclass
class PerformanceContract:
    """Predicted phase durations plus the tolerance band around ratio 1.

    ``predicted_fn(phase_index)`` -> predicted seconds for that phase.
    ``upper``/``lower`` are the initial tolerance limits on the
    measured/predicted ratio; the monitor adjusts copies of these at
    run time (§4.1.1), never the contract itself.
    """

    predicted_fn: Callable[[int], float]
    upper: float = 1.5
    lower: float = 0.5
    violations: List[ContractViolation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.lower < self.upper:
            raise ValueError(
                f"need 0 < lower < upper, got {self.lower}, {self.upper}")

    def predicted(self, phase: int) -> float:
        value = self.predicted_fn(phase)
        if value <= 0:
            raise ValueError(f"non-positive prediction for phase {phase}")
        return value

    def ratio(self, phase: int, measured_seconds: float) -> float:
        """Measured over predicted: >1 is slower than promised."""
        if measured_seconds < 0:
            raise ValueError("negative measured time")
        return measured_seconds / self.predicted(phase)

    def record_violation(self, violation: ContractViolation) -> None:
        self.violations.append(violation)

    def update_terms(self, predicted_fn: Callable[[int], float]) -> None:
        """Renegotiate the contract after a migration — "the rescheduler
        may contact the contract monitor to update the terms" (§4)."""
        self.predicted_fn = predicted_fn
