"""Performance contracts and Autopilot-style monitoring."""

from .autopilot import Actuator, AutopilotManager, Sensor, SensorReading
from .contract import ContractViolation, PerformanceContract
from .fuzzy import (
    FuzzyEngine,
    FuzzyRule,
    FuzzyVariable,
    Trapezoid,
    contract_violation_engine,
)
from .monitor import ContractMonitor, MigrationRequest
from .viewer import ContractViewer

__all__ = [
    "Actuator",
    "AutopilotManager",
    "ContractMonitor",
    "ContractViewer",
    "ContractViolation",
    "FuzzyEngine",
    "FuzzyRule",
    "FuzzyVariable",
    "MigrationRequest",
    "PerformanceContract",
    "Sensor",
    "SensorReading",
    "Trapezoid",
    "contract_violation_engine",
]
