"""Autopilot: sensors, actuators, and the manager that wires them.

"Autopilot provides sensors for performance data acquisition, actuators
for implementing optimization commands and a decision-making mechanism
based on fuzzy logic" (§1).  The binder inserts application sensors;
the contract monitor subscribes to them through the manager; the
rescheduler registers actuators the monitor can fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ..sim.kernel import Simulator

__all__ = ["SensorReading", "Sensor", "Actuator", "AutopilotManager"]


@dataclass(frozen=True)
class SensorReading:
    """One datum published by a sensor."""

    sensor: str
    time: float
    value: float
    attributes: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attributes:
            if k == key:
                return v
        return default


class Sensor:
    """A named data source applications (or the runtime) publish through."""

    def __init__(self, manager: "AutopilotManager", name: str) -> None:
        self.manager = manager
        self.name = name

    def publish(self, value: float, **attributes: Any) -> SensorReading:
        reading = SensorReading(
            sensor=self.name, time=self.manager.sim.now, value=value,
            attributes=tuple(sorted(attributes.items())))
        self.manager._dispatch(reading)
        return reading


@dataclass
class Actuator:
    """A named command endpoint (e.g. "request-migration")."""

    name: str
    action: Callable[..., Any]

    def fire(self, *args: Any, **kwargs: Any) -> Any:
        return self.action(*args, **kwargs)


class AutopilotManager:
    """Registry connecting sensors to clients and actuators to callers."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._sensors: Dict[str, Sensor] = {}
        self._actuators: Dict[str, Actuator] = {}
        self._subscribers: Dict[str, List[Callable[[SensorReading], None]]] = {}
        self._history: Dict[str, List[SensorReading]] = {}

    # -- sensors -----------------------------------------------------------
    def register_sensor(self, name: str) -> Sensor:
        if name in self._sensors:
            raise ValueError(f"duplicate sensor {name!r}")
        sensor = Sensor(self, name)
        self._sensors[name] = sensor
        return sensor

    def sensor(self, name: str) -> Sensor:
        try:
            return self._sensors[name]
        except KeyError:
            raise KeyError(f"unknown sensor {name!r}") from None

    def subscribe(self, sensor_name: str,
                  callback: Callable[[SensorReading], None]) -> None:
        """Deliver every reading of ``sensor_name`` to ``callback``."""
        self._subscribers.setdefault(sensor_name, []).append(callback)

    def _dispatch(self, reading: SensorReading) -> None:
        self._history.setdefault(reading.sensor, []).append(reading)
        for callback in self._subscribers.get(reading.sensor, []):
            callback(reading)

    def history(self, sensor_name: str) -> List[SensorReading]:
        return list(self._history.get(sensor_name, []))

    # -- actuators -----------------------------------------------------------
    def register_actuator(self, name: str,
                          action: Callable[..., Any]) -> Actuator:
        if name in self._actuators:
            raise ValueError(f"duplicate actuator {name!r}")
        actuator = Actuator(name=name, action=action)
        self._actuators[name] = actuator
        return actuator

    def actuate(self, name: str, *args: Any, **kwargs: Any) -> Any:
        try:
            actuator = self._actuators[name]
        except KeyError:
            raise KeyError(f"unknown actuator {name!r}") from None
        return actuator.fire(*args, **kwargs)
