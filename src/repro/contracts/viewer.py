"""A text-mode Contract Viewer.

"GrADS incorporates a variety of utilities associated with contract
monitoring, including a Java-based Contract Viewer GUI to visualize the
performance contract validation activity in real-time" (§1).  This is
that utility for a terminal: a timeline of measured/predicted ratios
against the (possibly adapting) tolerance band, with violations and
migration requests called out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .monitor import ContractMonitor

__all__ = ["ContractViewer"]

_GLYPH_IN_BAND = "*"
_GLYPH_ABOVE = "!"
_GLYPH_BELOW = "v"


@dataclass
class _Sample:
    phase: int
    ratio: float
    upper: float
    lower: float


class ContractViewer:
    """Record a monitor's activity and render it as an ASCII chart.

    Attach before the run starts::

        viewer = ContractViewer(monitor)
        ... run the application ...
        print(viewer.render())
    """

    def __init__(self, monitor: ContractMonitor) -> None:
        self.monitor = monitor
        self._samples: List[_Sample] = []
        self._wrap(monitor)

    def _wrap(self, monitor: ContractMonitor) -> None:
        original = monitor.report_phase

        def recording_report(phase: int, measured_seconds: float) -> None:
            suspended = monitor._suspended
            # Snapshot the band *before* the report: the monitor may
            # adjust its limits in response to this very sample, and the
            # chart should show the band the sample was judged against.
            upper, lower = monitor.upper, monitor.lower
            original(phase, measured_seconds)
            if suspended:
                return
            try:
                ratio = monitor.contract.ratio(phase, measured_seconds)
            except ValueError:
                return
            self._samples.append(_Sample(
                phase=phase, ratio=ratio, upper=upper, lower=lower))

        monitor.report_phase = recording_report  # type: ignore[method-assign]

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def render(self, width: int = 60, max_ratio: float = 4.0) -> str:
        """One line per phase: ratio position in [0, max_ratio], the
        tolerance band edges as ``[`` and ``]``, violations flagged."""
        if not self._samples:
            return "(no contract activity recorded)"
        request_phases = {r.phase for r in self.monitor.requests}
        adjust_count = len(self.monitor.limit_adjustments)
        lines = [
            f"Contract Viewer — {len(self._samples)} phases, "
            f"{len(self.monitor.requests)} migration request(s), "
            f"{adjust_count} tolerance adjustment(s)",
            f"scale: 0 .. {max_ratio:.1f} (measured/predicted ratio)",
        ]
        for sample in self._samples:
            row = [" "] * width
            low = self._column(sample.lower, width, max_ratio)
            high = self._column(sample.upper, width, max_ratio)
            row[low] = "["
            row[high] = "]"
            pos = self._column(sample.ratio, width, max_ratio)
            if sample.ratio > sample.upper:
                glyph = _GLYPH_ABOVE
            elif sample.ratio < sample.lower:
                glyph = _GLYPH_BELOW
            else:
                glyph = _GLYPH_IN_BAND
            row[pos] = glyph
            note = ""
            if sample.phase in request_phases:
                note = "  <- migration requested"
            lines.append(f"phase {sample.phase:4d} |{''.join(row)}|"
                         f" {sample.ratio:5.2f}{note}")
        return "\n".join(lines)

    @staticmethod
    def _column(value: float, width: int, max_ratio: float) -> int:
        clamped = min(max(value, 0.0), max_ratio)
        return min(int(clamped / max_ratio * (width - 1)), width - 1)
