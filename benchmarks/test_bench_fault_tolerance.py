"""Benchmark: checkpoint-interval ablation (fault-tolerance extension).

The paper's §5 future work (realized in VGrADS) adds fault tolerance;
our implementation checkpoints every k panel steps to stable storage
and restarts from the last checkpoint after a host crash.  The classic
trade this sweep exposes: small k = high failure-free overhead, large
k (or no checkpoints) = expensive recovery.
"""

from typing import Dict, Optional

import pytest

from repro.sim import Simulator
from repro.microgrid import ScheduledFailure, fig3_testbed
from repro.appmanager import GradsEnvironment
from repro.apps import QrBenchmark
from repro.experiments import format_table

N = 4000
INTERVALS = (None, 2, 5, 10)
CRASH_AT = 100.0


def run_qr(checkpoint_every: Optional[int], crash: bool) -> Dict:
    sim = Simulator()
    grid = fig3_testbed(sim)
    env = GradsEnvironment(sim, grid, submission_host="utk.n3")
    run, monitor, rescheduler = env.managed_qr(
        QrBenchmark(n=N, nb=200),
        initial_hosts=grid.clusters["utk"].host_names()[:3],
        rescheduler_mode="force-stay",
        checkpoint_every=checkpoint_every,
        stable_storage=True)
    if crash:
        ScheduledFailure(host=grid.clusters["utk"][1],
                         at=CRASH_AT).install(sim)
    finished = run.start()
    sim.run(stop_event=finished)
    return {"total": sim.now, "recovered": run.failures_recovered,
            "progress": run.progress, "steps": run.benchmark.steps}


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for interval in INTERVALS:
        out[(interval, False)] = run_qr(interval, crash=False)
        out[(interval, True)] = run_qr(interval, crash=True)
    return out


def test_bench_fault_tolerant_run(benchmark):
    result = benchmark.pedantic(lambda: run_qr(5, crash=True),
                                rounds=1, iterations=1)
    assert result["recovered"] == 1


class TestCheckpointIntervalAblation:
    def test_print_sweep(self, sweep):
        rows = []
        for interval in INTERVALS:
            label = "none" if interval is None else str(interval)
            clean = sweep[(interval, False)]
            crashed = sweep[(interval, True)]
            rows.append([label, clean["total"], crashed["total"],
                         crashed["recovered"]])
        print()
        print(format_table(
            ["ckpt every (steps)", "no-failure total (s)",
             "with-crash total (s)", "recoveries"],
            rows,
            title=f"Checkpoint-interval ablation (QR N={N}, "
                  f"crash at t={CRASH_AT:.0f} s)"))

    def test_every_configuration_completes(self, sweep):
        for key, result in sweep.items():
            assert result["progress"] == result["steps"], key

    def test_checkpoint_overhead_grows_as_interval_shrinks(self, sweep):
        clean = {i: sweep[(i, False)]["total"] for i in INTERVALS}
        assert clean[2] > clean[10] > clean[None]

    def test_checkpointing_pays_off_under_failure(self, sweep):
        """With a crash, frequent checkpoints beat none despite their
        failure-free overhead."""
        crashed = {i: sweep[(i, True)]["total"] for i in INTERVALS}
        assert crashed[2] < crashed[None]
        assert crashed[5] < crashed[None]

    def test_all_crashed_runs_recovered_once(self, sweep):
        for interval in INTERVALS:
            assert sweep[(interval, True)]["recovered"] == 1
