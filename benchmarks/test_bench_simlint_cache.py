"""Benchmark: simlint incremental cache, warm vs cold (ISSUE 9).

Lints the full shipped ``src/repro`` tree with ``--jobs 4`` twice
against the same cache directory.  The cold run populates the cache;
the warm run must (a) serve every file from cache, (b) be measurably
faster, and (c) render byte-identical findings — caching is pure
speed, never a different answer.  A third, cache-less run pins the
cold/warm pair to the plain engine output.
"""

import os
from time import perf_counter

import pytest

import repro
from repro.simlint import render_json
from repro.simlint.engine import lint_tree

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))
JOBS = 4
#: warm must be at least this many times faster than cold; measured
#: locally at ~60x, so 2x leaves generous headroom for noisy CI boxes.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def timed_runs(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("simlint-cache"))
    t0 = perf_counter()  # simlint: ignore[SL001] — benchmark wall time
    cold = lint_tree([PACKAGE_DIR], jobs=JOBS, cache_dir=cache_dir)
    t1 = perf_counter()  # simlint: ignore[SL001] — benchmark wall time
    warm = lint_tree([PACKAGE_DIR], jobs=JOBS, cache_dir=cache_dir)
    t2 = perf_counter()  # simlint: ignore[SL001] — benchmark wall time
    return cold, t1 - t0, warm, t2 - t1


def test_warm_run_is_fully_cached(timed_runs):
    cold, _, warm, _ = timed_runs
    assert cold.cache_misses == cold.files > 0
    assert warm.cache_hits == warm.files == cold.files
    assert warm.cache_misses == 0


def test_warm_run_is_measurably_faster(timed_runs):
    _, cold_wall, _, warm_wall = timed_runs
    speedup = cold_wall / warm_wall
    assert speedup >= MIN_SPEEDUP, (
        f"warm cache run only {speedup:.2f}x faster "
        f"({cold_wall:.3f}s cold vs {warm_wall:.3f}s warm)")


def test_warm_output_is_byte_identical(timed_runs):
    cold, _, warm, _ = timed_runs
    assert render_json(warm.findings) == render_json(cold.findings)


def test_cached_output_matches_plain_engine(timed_runs):
    cold, _, _, _ = timed_runs
    plain = lint_tree([PACKAGE_DIR], jobs=1)
    assert render_json(plain.findings) == render_json(cold.findings)
