"""Benchmark: the MicroGrid substrate hot paths (kernel + network).

Every figure in the paper runs through `repro.sim` and
`repro.microgrid`, so this is the perf trajectory for the whole
reproduction: a 32-host / 8-cluster grid carrying 64 concurrent flows
under closed-loop churn (each completion launches a replacement), with
events/sec recorded for the incremental max-min allocator and the
from-scratch reference allocator.

Two claims are checked, matching the overhaul's contract:

* **Equivalence** — both allocators drive byte-identical simulations
  (same event count, same simulated makespan, same bytes delivered);
  the allocation-level property test lives in
  ``tests/microgrid/test_network.py``.
* **Speedup** — the incremental allocator completes the workload at
  least 2x faster in wall-clock terms.
"""

import pytest

from repro.experiments.substrate import run_substrate_bench

TRANSFERS = 1500
#: required wall-clock advantage of the incremental allocator
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def results():
    incremental = run_substrate_bench(total_transfers=TRANSFERS,
                                      allocator="incremental")
    reference = run_substrate_bench(total_transfers=TRANSFERS,
                                    allocator="reference")
    return incremental, reference


def test_bench_substrate_churn(benchmark):
    stats = benchmark.pedantic(
        lambda: run_substrate_bench(total_transfers=TRANSFERS),
        rounds=1, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(stats["events_per_sec"])
    benchmark.extra_info["events_processed"] = stats["events_processed"]
    assert stats["transfers_completed"] == TRANSFERS


class TestAllocatorEquivalence:
    def test_workload_completes(self, results):
        incremental, reference = results
        assert incremental["transfers_completed"] == TRANSFERS
        assert reference["transfers_completed"] == TRANSFERS

    def test_identical_event_counts(self, results):
        incremental, reference = results
        # Same flows, same completion times -> the agenda history must
        # match event for event and reallocation for reallocation.
        assert incremental["events_processed"] == reference["events_processed"]
        assert incremental["reallocations"] == reference["reallocations"]
        assert (incremental["wakeups_cancelled"]
                == reference["wakeups_cancelled"])

    def test_identical_simulated_outcome(self, results):
        incremental, reference = results
        assert incremental["sim_seconds"] == \
            pytest.approx(reference["sim_seconds"], rel=1e-9)
        assert incremental["bytes_delivered"] == \
            pytest.approx(reference["bytes_delivered"], rel=1e-9)


class TestSubstrateSpeed:
    def test_incremental_allocator_speedup(self, results):
        incremental, reference = results
        speedup = reference["wall_seconds"] / incremental["wall_seconds"]
        print(f"\nincremental {incremental['wall_seconds']:.3f}s "
              f"({incremental['events_per_sec']:,.0f} ev/s) vs reference "
              f"{reference['wall_seconds']:.3f}s -> {speedup:.2f}x")
        assert speedup >= MIN_SPEEDUP

    def test_route_cache_amortises(self, results):
        incremental, _reference = results
        # 32 sources, thousands of lookups: the SSSP cache must serve
        # nearly everything after warm-up.
        assert incremental["route_cache_hit_rate"] > 0.9
