"""Benchmark: NWS forecaster-battery ablation.

The adaptive selector is the substrate every scheduling decision reads
through.  This bench replays synthetic CPU-availability traces with
qualitatively different dynamics (flat+noise, on/off load, trending)
and compares each battery member's mean absolute error against the
adaptive selector — whose selling point is being near-best on *every*
regime without per-series tuning.
"""

from typing import Dict

import numpy as np
import pytest

from repro.nws import AdaptiveForecaster, default_battery
from repro.experiments import format_table


def make_traces(length=600, seed=7) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    flat = np.clip(0.8 + rng.normal(0, 0.05, length), 0, 1)
    onoff = np.where((np.arange(length) // 60) % 2 == 0, 0.95, 0.45) \
        + rng.normal(0, 0.02, length)
    trend = np.clip(np.linspace(1.0, 0.2, length)
                    + rng.normal(0, 0.03, length), 0, 1)
    spiky = np.clip(0.9 - 0.7 * (rng.random(length) < 0.05)
                    + rng.normal(0, 0.02, length), 0, 1)
    return {"flat": flat, "onoff": np.clip(onoff, 0, 1),
            "trend": trend, "spiky": spiky}


def score(trace: np.ndarray) -> Dict[str, float]:
    """MAE of each battery member and the adaptive selector."""
    members = default_battery()
    errors = {m.name: 0.0 for m in members}
    adaptive = AdaptiveForecaster()
    errors["adaptive"] = 0.0
    n_scored = 0
    for x in trace:
        for m in members:
            p = m.predict()
            if p is not None:
                errors[m.name] += abs(p - x)
        p = adaptive.predict()
        if p is not None:
            errors["adaptive"] += abs(p - x)
            n_scored += 1
        for m in members:
            m.update(x)
        adaptive.update(x)
    return {name: err / max(n_scored, 1) for name, err in errors.items()}


@pytest.fixture(scope="module")
def scores():
    return {name: score(trace) for name, trace in make_traces().items()}


def test_bench_forecasting(benchmark):
    trace = make_traces(length=200)["onoff"]
    out = benchmark.pedantic(lambda: score(trace), rounds=3, iterations=1)
    assert out["adaptive"] >= 0


class TestForecasterAblation:
    def test_print_error_table(self, scores):
        methods = sorted(next(iter(scores.values())))
        rows = [[m] + [scores[t][m] for t in sorted(scores)]
                for m in methods]
        print()
        print(format_table(["method"] + sorted(scores), rows,
                           title="Forecaster MAE per trace regime"))

    def test_adaptive_near_best_on_every_regime(self, scores):
        for trace_name, table in scores.items():
            best = min(err for name, err in table.items()
                       if name != "adaptive")
            assert table["adaptive"] <= best * 1.6 + 0.01, trace_name

    def test_no_single_member_dominates(self, scores):
        """The reason the battery exists: per-regime winners differ."""
        winners = set()
        for table in scores.values():
            members = {k: v for k, v in table.items() if k != "adaptive"}
            winners.add(min(members, key=members.get))
        assert len(winners) >= 2

    def test_adaptive_beats_naive_mean_overall(self, scores):
        adaptive_total = sum(t["adaptive"] for t in scores.values())
        mean_total = sum(t["mean"] for t in scores.values())
        assert adaptive_total < mean_total
