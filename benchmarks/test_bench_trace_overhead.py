"""Benchmark: the tracing subsystem's overhead contract.

The tracer's design promise (see ``repro.trace.tracer``) is that
instrumentation is effectively free when tracing is off: every hook
site guards on ``sim.trace is not None`` (hoisted to a local boolean in
the kernel's hot loop), so an untraced run pays one attribute load per
site.  This benchmark enforces the acceptance bound — a run with a
disabled tracer attached must stay within a few percent of a run with
no tracer at all — and records the cost of *enabled* tracing for
context (informational, no bound: collecting a million-record timeline
is allowed to cost real time).

Wall-clock noise is handled the standard way: min-of-N, identical
workloads, and a simulation outcome cross-check proving the compared
runs did exactly the same work.
"""

import pytest

from repro.experiments.substrate import run_substrate_bench
from repro.trace import Tracer

TRANSFERS = 1500
ROUNDS = 5
#: acceptance bound: disabled tracing within 5% of the untraced baseline
MAX_DISABLED_OVERHEAD = 1.05

_FACTORIES = {
    "baseline": lambda: None,
    "disabled": lambda: Tracer(enabled=False),
    "enabled": lambda: Tracer(categories=["kernel", "network"]),
}


@pytest.fixture(scope="module")
def timings():
    """Min-of-N wall seconds and last stats per variant.

    The variants are interleaved round-robin (A B C A B C ...) rather
    than measured in back-to-back blocks, so slow drift in machine load
    lands on all of them equally instead of biasing whichever block ran
    during the noisy stretch.
    """
    best = {name: float("inf") for name in _FACTORIES}
    stats = {}
    run_substrate_bench(total_transfers=TRANSFERS)  # warm-up, untimed
    for _ in range(ROUNDS):
        for name, factory in _FACTORIES.items():
            result = run_substrate_bench(total_transfers=TRANSFERS,
                                         tracer=factory())
            best[name] = min(best[name], result["wall_seconds"])
            stats[name] = result
    return {name: (best[name], stats[name]) for name in _FACTORIES}


class TestDisabledOverhead:
    def test_same_simulation_with_and_without_tracer(self, timings):
        _, base_stats = timings["baseline"]
        _, off_stats = timings["disabled"]
        assert off_stats["events_processed"] == base_stats["events_processed"]
        assert off_stats["sim_seconds"] == \
            pytest.approx(base_stats["sim_seconds"], rel=1e-12)
        assert off_stats["bytes_delivered"] == \
            pytest.approx(base_stats["bytes_delivered"], rel=1e-12)

    def test_disabled_tracer_within_overhead_bound(self, timings):
        baseline, _ = timings["baseline"]
        disabled, _ = timings["disabled"]
        ratio = disabled / baseline
        print(f"\nbaseline {baseline:.3f}s, disabled-tracer {disabled:.3f}s "
              f"-> {ratio:.3f}x (bound {MAX_DISABLED_OVERHEAD}x)")
        assert ratio <= MAX_DISABLED_OVERHEAD

    def test_enabled_tracing_reported(self, timings):
        baseline, _ = timings["baseline"]
        enabled, on_stats = timings["enabled"]
        # Informational: enabled tracing may legitimately cost time, but
        # it must not change the simulation itself.
        _, base_stats = timings["baseline"]
        assert on_stats["events_processed"] == base_stats["events_processed"]
        print(f"\nenabled kernel+network tracing: {enabled:.3f}s "
              f"({enabled / baseline:.2f}x baseline)")


def test_bench_trace_overhead(benchmark):
    stats = benchmark.pedantic(
        lambda: run_substrate_bench(total_transfers=TRANSFERS,
                                    tracer=Tracer(enabled=False)),
        rounds=1, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(stats["events_per_sec"])
    assert stats["transfers_completed"] == TRANSFERS
