"""Benchmark: regenerate Figure 4 (N-body progress under swapping).

Prints the iteration-vs-time series for the swap run and the no-swap
baseline, then asserts the published shape: progress slowed by the
competitive load introduced at t=80 s, all three processes moved to the
UIUC cluster by ~150 s, and the slope recovered after the migration.
"""

import pytest

from repro.experiments import run_fig4


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(n_iterations=120)


@pytest.fixture(scope="module")
def fig4_baseline():
    return run_fig4(n_iterations=120, with_swapping=False)


def test_bench_fig4_run(benchmark):
    result = benchmark.pedantic(lambda: run_fig4(n_iterations=60),
                                rounds=1, iterations=1)
    assert result.progress


class TestFigure4Shape:
    def test_print_figure(self, fig4, fig4_baseline):
        print()
        print(fig4.to_series())
        print(f"\nswaps applied at: "
              f"{[round(t, 1) for t in fig4.swap_times]} -> "
              f"{fig4.swapped_to}")
        print(f"finished with swapping:    {fig4.finished_at:8.1f} s")
        print(f"finished without swapping: "
              f"{fig4_baseline.finished_at:8.1f} s")

    def test_load_slows_progress(self, fig4):
        pre = fig4.rate_between(10.0, 80.0)
        swapped = fig4.all_swaps_done_by()
        loaded = fig4.rate_between(80.0, swapped)
        assert loaded < pre * 0.5

    def test_all_three_processes_on_uiuc_by_150s(self, fig4):
        assert len(fig4.swap_times) == 3
        assert max(fig4.swap_times) < 150.0
        assert all(name.startswith("uiuc.") for name in fig4.swapped_to)

    def test_slope_recovers_after_swap(self, fig4):
        swapped = fig4.all_swaps_done_by()
        pre = fig4.rate_between(10.0, 80.0)
        post = fig4.rate_between(swapped + 5.0, fig4.finished_at)
        assert post > pre * 0.6

    def test_swapping_beats_no_swapping(self, fig4, fig4_baseline):
        assert fig4.finished_at < fig4_baseline.finished_at * 0.8
        assert fig4_baseline.swap_times == []
