"""Benchmark: workflow-scheduler scale on an EMAN-shaped DAG (§3.1).

The ``classesbymra`` stage of the EMAN refinement round fans out to
hundreds of independent tasks; the pre-overhaul list scheduler
re-evaluated every (task, resource) completion time from scratch each
round — O(T²·R) Python-level NWS calls.  This benchmark times the
incremental array-backed engine against the retained reference oracle
on that exact shape and asserts both the speedup floor and that the
two engines emit placement-for-placement identical schedules in the
same run (speed must not buy a different answer).
"""

import pytest

from repro.experiments import format_table
from repro.experiments.scheduler_bench import (
    build_scheduler_bench_env,
    run_scheduler_bench,
    schedules_equal,
)

#: the ISSUE-mandated scale: >=512-task fan-out on 32+ hosts
FANOUT = 512
HOSTS = 32
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def scale_results():
    """Fast and reference runs of min-min over one shared environment.

    One heuristic keeps the oracle's O(T²·R) wall-clock tolerable at
    this size; the engines share the env so forecasts are identical.
    """
    env = build_scheduler_bench_env(n_tasks=FANOUT, n_hosts=HOSTS)
    fast = run_scheduler_bench(engine="fast", env=env,
                               heuristics=("min-min",),
                               keep_schedules=True)
    reference = run_scheduler_bench(engine="reference", env=env,
                                    heuristics=("min-min",),
                                    keep_schedules=True)
    return fast, reference


def test_bench_fast_engine(benchmark):
    env = build_scheduler_bench_env(n_tasks=FANOUT, n_hosts=HOSTS)
    result = benchmark.pedantic(
        lambda: run_scheduler_bench(engine="fast", env=env,
                                    heuristics=("min-min",)),
        rounds=1, iterations=1)
    assert result["makespans"]["min-min"] > 0


class TestSchedulerScale:
    def test_print_summary(self, scale_results):
        fast, reference = scale_results
        rows = [[r["engine"], f"{r['wall_seconds']:.3f}",
                 f"{r['sched_evaluations']}", f"{r['sched_memo_hits']}",
                 f"{r['makespans']['min-min']:.1f}"]
                for r in scale_results]
        speedup = reference["wall_seconds"] / fast["wall_seconds"]
        print()
        print(format_table(
            ["engine", "wall (s)", "evals", "memo hits", "makespan (s)"],
            rows,
            title=f"scheduler scale: {fast['n_tasks']} tasks / "
                  f"{fast['n_hosts']} hosts (min-min)"))
        print(f"fast engine speedup: {speedup:.1f}x")

    def test_speedup_floor(self, scale_results):
        fast, reference = scale_results
        speedup = reference["wall_seconds"] / fast["wall_seconds"]
        assert speedup >= MIN_SPEEDUP, (
            f"fast engine only {speedup:.2f}x over reference "
            f"(floor {MIN_SPEEDUP}x)")

    def test_schedules_identical(self, scale_results):
        """Equivalence in the same run that measures the speedup."""
        fast, reference = scale_results
        assert schedules_equal(fast["schedules"]["min-min"],
                               reference["schedules"]["min-min"])
        assert fast["makespans"] == reference["makespans"]

    def test_memo_does_its_job(self, scale_results):
        """The frozen-forecast memo, not re-querying, feeds the vectors."""
        fast, _reference = scale_results
        assert fast["sched_memo_hits"] > 0
        assert fast["sched_evaluations"] < _reference_evals(scale_results)

    def test_workload_is_eman_shaped(self, scale_results):
        fast, _ = scale_results
        # 6 stages: proc3d 1 + project3d 4 + classesbymra FANOUT
        # + classalign2 FANOUT//32 + make3d 1 + eotest 1
        assert fast["n_tasks"] == FANOUT + FANOUT // 32 + 7
        assert fast["n_hosts"] == HOSTS


def _reference_evals(scale_results) -> int:
    _fast, reference = scale_results
    return reference["sched_evaluations"]


def test_all_heuristics_equivalent_midsize():
    """Every registry entry, fast vs oracle, at a CI-friendly size."""
    env = build_scheduler_bench_env(n_tasks=96, n_hosts=16)
    names = ("min-min", "max-min", "sufferage", "random", "fifo", "heft")
    fast = run_scheduler_bench(engine="fast", env=env, heuristics=names,
                               keep_schedules=True)
    reference = run_scheduler_bench(engine="reference", env=env,
                                    heuristics=names, keep_schedules=True)
    for name in names:
        assert schedules_equal(fast["schedules"][name],
                               reference["schedules"][name]), name
