"""Benchmark: MicroGrid emulation validation.

"Grid computations can be successfully emulated by a controllable
testbed (i.e., the MicroGrid)" (§5), validated in the paper by running
"very similar experiments on the MacroGrid".  We reproduce that
validation in reverse: run the Figure 4 N-body swap scenario directly,
then on a 4x time-dilated emulation of the same virtual grid, rescale,
and check the timelines coincide.
"""

import pytest

from repro.sim import Simulator
from repro.microgrid import (
    ScheduledLoad,
    VirtualClock,
    dilated_grid,
    fig4_testbed,
)
from repro.nws import NetworkWeatherService
from repro.apps import NBodySimulation
from repro.rescheduling import SwapRescheduler
from repro.experiments import format_table

DILATION = 4.0


def run_swap_scenario(dilation: float = 1.0):
    """The Figure 4 run, on a direct or dilated grid.

    All wall-clock knobs (load time, sensor and swap periods) are
    expressed in virtual time and converted, exactly as a MicroGrid
    experiment description would be.
    """
    clock = VirtualClock(dilation)
    sim = Simulator()
    if dilation == 1.0:
        grid = fig4_testbed(sim)
    else:
        grid = dilated_grid(fig4_testbed, sim, dilation)
    nws = NetworkWeatherService(
        sim, grid, cpu_period=clock.to_emulation(5.0),
        deploy_network_sensors=False)
    pool = grid.clusters["utk"].hosts + grid.clusters["uiuc"].hosts
    app = NBodySimulation(sim, grid.topology, pool, active_n=3,
                          n_bodies=9000, n_iterations=60)
    ScheduledLoad(host=grid.clusters["utk"][0],
                  at=clock.to_emulation(80.0), nprocs=2).install(sim)
    SwapRescheduler(sim, app.job, nws, policy="gang",
                    period=clock.to_emulation(10.0),
                    improvement=1.1).start()
    done = app.launch()
    sim.run(stop_event=done)
    progress = [(clock.to_virtual(p.time), p.iteration)
                for p in app.progress]
    swaps = [clock.to_virtual(t)
             for t in (r.time for r in app.job.swap_log)]
    return {"progress": progress, "swaps": swaps,
            "finished": clock.to_virtual(sim.now)}


@pytest.fixture(scope="module")
def direct():
    return run_swap_scenario(dilation=1.0)


@pytest.fixture(scope="module")
def emulated():
    return run_swap_scenario(dilation=DILATION)


def test_bench_emulated_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_swap_scenario(dilation=DILATION),
        rounds=1, iterations=1)
    assert result["progress"]


class TestEmulationValidation:
    def test_print_comparison(self, direct, emulated):
        rows = []
        for virt_t in (50.0, 100.0, 200.0, 300.0):
            d = max((i for t, i in direct["progress"] if t <= virt_t),
                    default=0)
            e = max((i for t, i in emulated["progress"] if t <= virt_t),
                    default=0)
            rows.append([virt_t, d, e])
        print()
        print(format_table(
            ["virtual time (s)", "direct iterations",
             f"emulated (x{DILATION:.0f}) iterations"], rows,
            title="MicroGrid validation: direct vs dilated emulation"))
        print(f"completion: direct {direct['finished']:.1f} s, "
              f"emulated {emulated['finished']:.1f} s (virtual)")

    def test_completion_times_match_after_rescaling(self, direct, emulated):
        assert emulated["finished"] == pytest.approx(direct["finished"],
                                                     rel=0.02)

    def test_progress_curves_coincide(self, direct, emulated):
        d = dict((i, t) for t, i in direct["progress"])
        e = dict((i, t) for t, i in emulated["progress"])
        for iteration in sorted(set(d) & set(e)):
            assert e[iteration] == pytest.approx(d[iteration], rel=0.02), \
                iteration

    def test_swap_times_match(self, direct, emulated):
        assert len(direct["swaps"]) == len(emulated["swaps"]) == 3
        for a, b in zip(direct["swaps"], emulated["swaps"]):
            assert b == pytest.approx(a, rel=0.05)
