"""Benchmark: metascheduler planning at stream scale (DESIGN.md §9.6).

A 1000-job Poisson stream over a 64-host four-cluster grid, served
twice — once by the incremental fast planner, once by the retained
cancel-all/rebuild-all reference oracle.  Asserts the speedup floor,
that both engines emit byte-identical same-seed reports in the same
run that measures the speedup (speed must not buy a different answer),
that the claim audit is clean at scale, and a throughput sanity floor.
Writes ``BENCH_metasched_scale.json`` for the CI artifact upload.
"""

import gc
import json
import pathlib
from time import perf_counter

import pytest

from repro.experiments import format_table
from repro.experiments.metasched_stream import run_metasched

#: the ISSUE-mandated scale: a 1000-job stream on 64 hosts
JOBS = 1000
HOSTS = 64
STREAM = dict(users=16, arrival_rate=1 / 12.0, duration=12000.0, seed=0,
              max_jobs=JOBS, n_hosts=HOSTS, cpu_period=60.0)
MIN_SPEEDUP = 5.0
#: jobs/hour of simulated time; the measured stream sustains ~160
MIN_THROUGHPUT = 100.0

ARTIFACT = pathlib.Path("BENCH_metasched_scale.json")


def _timed_run(engine):
    """One wall-timed stream with the cyclic collector paused: retained
    result graphs otherwise add a constant ~10 s of gen-2 scans to both
    engines, which compresses the measured ratio."""
    gc.collect()
    gc.disable()
    try:
        t0 = perf_counter()  # simlint: ignore[SL001] — benchmark wall time
        result = run_metasched(engine=engine, **STREAM)
        wall = perf_counter() - t0  # simlint: ignore[SL001] — benchmark wall time
    finally:
        gc.enable()
    return result, wall


@pytest.fixture(scope="module")
def stream_results():
    """Fast and reference runs of the same seed-0 stream, wall-timed."""
    fast, fast_wall = _timed_run("fast")
    ref, ref_wall = _timed_run("reference")
    return fast, fast_wall, ref, ref_wall


def test_bench_fast_engine(benchmark):
    """Timing-infra smoke at a CI-friendly size."""
    result = benchmark.pedantic(
        lambda: run_metasched(engine="fast", users=6,
                              arrival_rate=1 / 30.0, duration=1800.0,
                              seed=1, max_jobs=60, n_hosts=16,
                              cpu_period=60.0),
        rounds=1, iterations=1)
    assert result.summary()["completed"] > 0
    assert result.conflicts == []


class TestMetaschedScale:
    def test_print_summary(self, stream_results):
        fast, fast_wall, ref, ref_wall = stream_results
        rows = []
        for result, wall in ((fast, fast_wall), (ref, ref_wall)):
            c = result.counters
            rows.append([
                "fast" if result is fast else "reference",
                f"{wall:.2f}", f"{int(c['meta_plan_rounds'])}",
                f"{int(c['meta_plan_kept'])}",
                f"{int(c['meta_plan_rebuilt'])}",
                f"{int(c['meta_plan_window_probes'])}",
                f"{result.summary()['throughput_jobs_per_hour']:.1f}",
            ])
        print()
        print(format_table(
            ["engine", "wall (s)", "rounds", "kept", "rebuilt",
             "window probes", "jobs/h"],
            rows,
            title=f"metasched scale: {JOBS}-job stream / {HOSTS} hosts"))
        print(f"fast engine speedup: {ref_wall / fast_wall:.1f}x")

    def test_speedup_floor(self, stream_results):
        _fast, fast_wall, _ref, ref_wall = stream_results
        speedup = ref_wall / fast_wall
        assert speedup >= MIN_SPEEDUP, (
            f"fast engine only {speedup:.2f}x over reference "
            f"(floor {MIN_SPEEDUP}x)")

    def test_reports_byte_identical(self, stream_results):
        """Equivalence in the same run that measures the speedup."""
        fast, _fw, ref, _rw = stream_results
        assert fast.to_json() == ref.to_json()

    def test_audit_clean_at_scale(self, stream_results):
        fast, _fw, ref, _rw = stream_results
        assert fast.conflicts == []
        assert ref.conflicts == []

    def test_every_job_reaches_a_terminal_state(self, stream_results):
        fast, _fw, _ref, _rw = stream_results
        summary = fast.summary()
        assert summary["submitted"] == JOBS
        terminal = (summary["completed"] + summary["failed"]
                    + summary["rejected"])
        assert terminal == JOBS

    def test_throughput_floor(self, stream_results):
        fast, _fw, _ref, _rw = stream_results
        assert (fast.summary()["throughput_jobs_per_hour"]
                >= MIN_THROUGHPUT)

    def test_fast_engine_actually_replans_incrementally(self,
                                                        stream_results):
        fast, _fw, ref, _rw = stream_results
        assert fast.counters["meta_plan_kept"] > 0
        assert fast.counters["meta_plan_estimate_memo_hits"] > 0
        assert ref.counters["meta_plan_kept"] == 0
        # The sweep rework pays: the measured stream settles around
        # ~40 feasibility probes per (job, host); hold the line well
        # under the pre-overhaul count (~550 per job-host pair).
        assert (fast.counters["meta_plan_window_probes"]
                < 100 * JOBS * HOSTS)

    def test_write_artifact(self, stream_results):
        fast, fast_wall, ref, ref_wall = stream_results
        ARTIFACT.write_text(json.dumps({
            "params": {**STREAM, "min_speedup": MIN_SPEEDUP},
            "fast_wall_seconds": fast_wall,
            "reference_wall_seconds": ref_wall,
            "speedup": ref_wall / fast_wall,
            "fast_counters": fast.counters,
            "reference_counters": ref.counters,
            "summary": fast.summary(),
        }, indent=2, sort_keys=True))
        assert ARTIFACT.exists()
