"""Benchmark: the metascheduler serving a 200-job multi-tenant stream.

Eight tenants submit a saturating Poisson stream (one job per ~45 s)
to the Figure 3 testbed — far past its capacity, so the fair-share
queue, advance reservations and backfill all do real work.  The
acceptance bar from the ISSUE: every job reaches a terminal state,
the claim audit finds zero reservation conflicts, and sustained
throughput stays above a floor.
"""

import pytest

from repro.experiments.metasched_stream import metasched_tables, run_metasched

N_JOBS = 200
#: jobs/hour the testbed must sustain under saturation (measured ~27)
THROUGHPUT_FLOOR = 15.0

KWARGS = dict(users=8, arrival_rate=1 / 45.0, duration=9000.0, seed=0,
              max_jobs=N_JOBS)


@pytest.fixture(scope="module")
def stream():
    return run_metasched(**KWARGS)


def test_bench_metasched_stream(benchmark):
    result = benchmark.pedantic(lambda: run_metasched(**KWARGS),
                                rounds=1, iterations=1)
    assert len(result.jobs) == N_JOBS


class TestStreamReport:
    def test_print_summary(self, stream):
        report = stream.report()
        print()
        print(metasched_tables(report).split("\n\n")[-1])

    def test_every_job_terminal(self, stream):
        assert len(stream.jobs) == N_JOBS
        assert all(j["status"] in ("completed", "failed", "rejected")
                   for j in stream.jobs)
        assert sum(1 for j in stream.jobs
                   if j["status"] == "completed") == N_JOBS

    def test_zero_reservation_conflicts(self, stream):
        assert stream.conflicts == []

    def test_throughput_floor(self, stream):
        assert (stream.summary()["throughput_jobs_per_hour"]
                >= THROUGHPUT_FLOOR)

    def test_contention_exercised_queue_and_backfill(self, stream):
        summary = stream.summary()
        counters = stream.counters
        assert summary["backfilled"] > 0
        assert counters["meta_reservations"] > 0
        assert counters["meta_queue_wait_seconds"] > 0.0
        assert summary["mean_queue_wait_seconds"] > 0.0

    def test_report_is_deterministic(self, stream):
        assert run_metasched(**KWARGS).to_json() == stream.to_json()
