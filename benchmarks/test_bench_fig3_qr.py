"""Benchmark: regenerate Figure 3 (QR stop/restart rescheduling).

Prints the stacked-bar table (both forced modes per matrix size) and
the default-mode decision table with the 900 s worst-case pessimism,
then asserts the paper's qualitative claims:

* checkpoint *reading* dominates the rescheduling cost; writing is
  insignificant (local IBP disks);
* rescheduling benefits grow with problem size; below the crossover
  migration loses, above it wins;
* the pessimistic worst-case cost produces a wrong "stay" decision at
  exactly the crossover size, and correct decisions elsewhere.
"""

import pytest

from repro.experiments import run_fig3
from repro.experiments.fig3_qr import DEFAULT_SIZES


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(sizes=DEFAULT_SIZES)


def test_bench_fig3_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3(sizes=(6000, 9000), with_decisions=False),
        rounds=1, iterations=1)
    assert result.points


class TestFigure3Shape:
    def test_print_figure(self, fig3_result):
        print()
        print(fig3_result.to_table())
        print()
        print(fig3_result.decision_table())
        print(f"\ncrossover size: {fig3_result.crossover_size()}")

    def test_checkpoint_read_dominates_write(self, fig3_result):
        for n in fig3_result.sizes():
            _stay, move = fig3_result.pair(n)
            if move.migrations:
                assert move.phase("checkpoint_read_2") > \
                    5 * move.phase("checkpoint_write_1"), n

    def test_rescheduling_benefit_grows_with_size(self, fig3_result):
        gains = []
        for n in fig3_result.sizes():
            stay, move = fig3_result.pair(n)
            gains.append(stay.total_seconds - move.total_seconds)
        # monotone non-decreasing trend over the sweep
        assert gains[-1] > gains[0]
        assert gains[-1] > 0

    def test_crossover_exists_midrange(self, fig3_result):
        crossover = fig3_result.crossover_size()
        sizes = fig3_result.sizes()
        assert crossover is not None
        assert sizes[0] < crossover <= sizes[-1]

    def test_wrong_decisions_form_pessimism_band_at_crossover(
            self, fig3_result):
        """§4.1.2's mechanism: the worst-case cost assumption turns the
        sizes just past the crossover into wrong "stay" calls (one size,
        8000, in the paper; a narrow contiguous band here).  Every wrong
        call must be an overly pessimistic keep, never a bad migrate,
        and sizes well past the crossover must decide correctly."""
        decisions = fig3_result.decisions
        wrong = sorted(n for n, d in decisions.items() if not d["correct"])
        sizes = sorted(decisions)
        assert len(wrong) <= 2
        for n in wrong:
            assert not decisions[n]["migrate"]  # pessimistic keep
            assert decisions[n]["benefit_actual"] > 0  # it would have won
        if wrong:
            # contiguous band ending right where migrate decisions start
            first_migrate = min(n for n in sizes if decisions[n]["migrate"])
            band = [n for n in sizes if wrong[0] <= n < first_migrate]
            assert wrong == band

    def test_small_sizes_stay_large_sizes_migrate(self, fig3_result):
        decisions = fig3_result.decisions
        sizes = sorted(decisions)
        assert not decisions[sizes[0]]["migrate"]
        assert decisions[sizes[-1]]["migrate"]
