"""Benchmark: scheduling-heuristic ablation (§3.1 design choice).

The paper runs min-min, max-min and sufferage and keeps the best
mapping.  This sweep quantifies that choice over randomized workflow
shapes and grid heterogeneity levels: no single heuristic dominates,
the best-of-three composite tracks the per-instance winner, and every
informed heuristic beats the model-blind FIFO baseline on
heterogeneous grids.
"""

from typing import Dict, List

import numpy as np
import pytest

from repro.sim import RngRegistry, Simulator
from repro.microgrid import Architecture, Cluster, Grid
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.perfmodel import AnalyticComponentModel
from repro.scheduler import (
    HEURISTICS,
    Workflow,
    WorkflowComponent,
    build_rank_matrix,
    random_schedule,
)
from repro.experiments import format_table

POLICIES = ("min-min", "max-min", "sufferage", "fifo", "heft")


def random_grid(sim, rng, heterogeneity: float) -> Grid:
    """Two clusters whose per-node speeds differ by ``heterogeneity``x."""
    grid = Grid(sim)
    base = 200.0
    fast = Architecture(name="fast", mflops=base * heterogeneity)
    slow = Architecture(name="slow", mflops=base)
    grid.add_cluster(Cluster(sim, grid.topology, "fast", arch=fast,
                             n_hosts=4, link_bandwidth=125e6,
                             link_latency=1e-4))
    grid.add_cluster(Cluster(sim, grid.topology, "slow", arch=slow,
                             n_hosts=8, link_bandwidth=125e6,
                             link_latency=1e-4))
    grid.topology.add_link(grid.clusters["fast"].switch,
                           grid.clusters["slow"].switch,
                           bandwidth=10e6, latency=0.01)
    return grid


def layered_workflow(rng, depth: int, width: int) -> Workflow:
    """A layered DAG with randomized task weights and fan-outs."""
    wf = Workflow("layered")
    previous = None
    for level in range(depth):
        n_tasks = 1 if level % 2 == 0 else width
        mflop = float(rng.uniform(500, 5000)) * n_tasks
        name = f"l{level}"
        wf.add_component(WorkflowComponent(
            name=name,
            model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop: m),
            problem_size=1.0,
            n_tasks=n_tasks,
            input_bytes_per_task=float(rng.uniform(0, 5e6)),
        ))
        if previous is not None:
            wf.add_dependence(previous, name)
        previous = name
    return wf


def bag_workflow(rng, n_components: int) -> Workflow:
    """Independent tasks with heavy-tailed sizes (max-min's regime)."""
    wf = Workflow("bag")
    for i in range(n_components):
        mflop = float(rng.pareto(1.2) * 800 + 200)
        wf.add_component(WorkflowComponent(
            name=f"t{i}",
            model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop: m),
            problem_size=1.0,
            input_bytes_per_task=float(rng.uniform(0, 30e6)),
        ))
    return wf


def random_data_sources(rng, wf: Workflow, gis) -> Dict[str, List[str]]:
    """Pin each entry component's input to a random host — the data
    affinity that makes sufferage-style decisions matter."""
    hosts = [r.name for r in gis.resources()]
    return {c.name: [hosts[int(rng.integers(len(hosts)))]]
            for c in wf.components()
            if not wf.predecessors(c.name)}


def sweep(n_instances=10, depth=6, width=8,
          heterogeneities=(1.5, 3.0, 6.0)) -> Dict:
    registry = RngRegistry(seed=1234)
    makespans: Dict[str, List[float]] = {p: [] for p in POLICIES}
    makespans["best-of-3"] = []
    makespans["random"] = []
    wins = {p: 0 for p in ("min-min", "max-min", "sufferage")}
    for het in heterogeneities:
        for instance in range(n_instances):
            rng = registry.stream(f"inst-{het}-{instance}")
            sim = Simulator()
            grid = random_grid(sim, rng, het)
            gis = GridInformationService()
            gis.register_grid(grid)
            nws = NetworkWeatherService(sim, grid,
                                        deploy_network_sensors=False)
            if instance % 2 == 0:
                wf = layered_workflow(rng, depth, width)
            else:
                wf = bag_workflow(rng, n_components=3 * width)
            matrix = build_rank_matrix(
                wf, gis, nws,
                data_sources=random_data_sources(rng, wf, gis))
            spans = {}
            for policy in POLICIES:
                spans[policy] = HEURISTICS[policy](wf, matrix, nws).makespan
                makespans[policy].append(spans[policy])
            three = {p: spans[p]
                     for p in ("min-min", "max-min", "sufferage")}
            winner = min(three, key=three.get)
            wins[winner] += 1
            makespans["best-of-3"].append(min(three.values()))
            makespans["random"].append(
                random_schedule(wf, matrix, nws, rng).makespan)
    return {"makespans": makespans, "wins": wins}


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_bench_heuristic_sweep(benchmark):
    out = benchmark.pedantic(
        lambda: sweep(n_instances=3, heterogeneities=(3.0,)),
        rounds=1, iterations=1)
    assert out["makespans"]["min-min"]


class TestHeuristicAblation:
    def test_print_summary(self, results):
        rows = [(name, float(np.mean(values)), float(np.max(values)))
                for name, values in sorted(results["makespans"].items())]
        print()
        print(format_table(["policy", "mean makespan (s)", "worst (s)"],
                           rows, title="Heuristic ablation (30 instances)"))
        print(f"per-instance winners among the three: {results['wins']}")

    def test_best_of_three_tracks_winner(self, results):
        spans = results["makespans"]
        for policy in ("min-min", "max-min", "sufferage"):
            assert np.mean(spans["best-of-3"]) <= \
                np.mean(spans[policy]) + 1e-9

    def test_no_single_heuristic_always_wins(self, results):
        """The rationale for running all three: each wins sometimes."""
        winners = [name for name, count in results["wins"].items()
                   if count > 0]
        assert len(winners) >= 2

    def test_informed_beats_random(self, results):
        spans = results["makespans"]
        assert np.mean(spans["best-of-3"]) < np.mean(spans["random"]) * 0.9

    def test_informed_beats_fifo(self, results):
        spans = results["makespans"]
        assert np.mean(spans["best-of-3"]) <= np.mean(spans["fifo"]) + 1e-9
