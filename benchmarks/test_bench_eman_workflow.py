"""Benchmark: the §3.3 EMAN workflow scheduling demonstration.

Prints the per-policy makespan table for the EMAN refinement workflow
on the heterogeneous IA-32 + IA-64 grid and asserts the demonstrated
claims: the model-guided heuristics produce far better schedules than a
model-blind baseline, the chosen schedule executes end to end, and the
mixed-ISA resource set genuinely carries work on both architectures
(the binder's heterogeneity story).
"""

import pytest

from repro.apps import EmanParameters
from repro.experiments import run_eman_demo


@pytest.fixture(scope="module")
def eman():
    return run_eman_demo(n_random=5)


def test_bench_eman_schedule_and_execute(benchmark):
    result = benchmark.pedantic(
        lambda: run_eman_demo(params=EmanParameters(n_particles=5000),
                              n_random=2),
        rounds=1, iterations=1)
    assert result.measured_makespan > 0


class TestEmanShape:
    def test_print_table(self, eman):
        print()
        print(eman.to_table())
        print(f"\nexecuted {eman.chosen_heuristic} schedule: "
              f"{eman.measured_makespan:.1f} s measured on "
              f"{eman.resources_used} resources, ISAs {eman.isas_used}")

    def test_informed_beats_random(self, eman):
        informed = min(eman.estimated[name]
                       for name in ("min-min", "max-min", "sufferage"))
        assert informed < eman.estimated["random(mean)"] * 0.7

    def test_informed_at_least_matches_fifo(self, eman):
        informed = min(eman.estimated[name]
                       for name in ("min-min", "max-min", "sufferage"))
        assert informed <= eman.estimated["fifo"] + 1e-9

    def test_chosen_is_min_of_three(self, eman):
        three = {k: v for k, v in eman.estimated.items()
                 if k in ("min-min", "max-min", "sufferage")}
        assert eman.estimated[eman.chosen_heuristic] == min(three.values())

    def test_executes_on_both_isas(self, eman):
        assert eman.isas_used == ["ia32", "ia64"]
        assert eman.resources_used >= 8

    def test_measured_tracks_estimate(self, eman):
        estimate = eman.estimated[eman.chosen_heuristic]
        assert eman.measured_makespan == pytest.approx(estimate, rel=0.5)
