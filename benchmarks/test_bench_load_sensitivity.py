"""Benchmark: rescheduling-benefit sensitivity (the [21] study).

"In another paper [21], we examine the effects of other parameters
(e.g., the load and the time after the start of the application when
the load was introduced)".  This sweep reproduces that study's shape on
the Figure 3 testbed at N=9000: the later the load arrives, the less
remaining work there is to protect and the smaller the migration gain;
the heavier the load, the larger the gain.
"""

from typing import Dict

import pytest

from repro.experiments import format_table
from repro.experiments.fig3_qr import run_fig3_point

N = 9000
LOAD_TIMES = (60.0, 180.0, 300.0, 420.0)
LOAD_LEVELS = (4, 8)


def gain(load_at: float, load_procs: int) -> Dict:
    stay = run_fig3_point(N, "no-reschedule", load_at=load_at,
                          load_procs=load_procs)
    move = run_fig3_point(N, "reschedule", load_at=load_at,
                          load_procs=load_procs)
    return {
        "stay": stay.total_seconds,
        "move": move.total_seconds,
        "gain": stay.total_seconds - move.total_seconds,
        "migrated": move.migrations > 0,
    }


@pytest.fixture(scope="module")
def sweep():
    return {(at, procs): gain(at, procs)
            for at in LOAD_TIMES for procs in LOAD_LEVELS}


def test_bench_load_sensitivity_point(benchmark):
    out = benchmark.pedantic(lambda: gain(300.0, 8), rounds=1, iterations=1)
    assert out["migrated"]


class TestLoadSensitivity:
    def test_print_sweep(self, sweep):
        rows = []
        for (at, procs), result in sorted(sweep.items()):
            rows.append([at, procs, result["stay"], result["move"],
                         result["gain"]])
        print()
        print(format_table(
            ["load at (s)", "load procs", "no-reschedule (s)",
             "reschedule (s)", "gain (s)"], rows,
            title=f"Rescheduling gain vs load timing/intensity (QR N={N})"))

    def test_later_load_smaller_gain(self, sweep):
        """Less lifetime left to protect -> less to win by moving."""
        for procs in LOAD_LEVELS:
            gains = [sweep[(at, procs)]["gain"] for at in LOAD_TIMES]
            assert gains[0] > gains[-1], procs
            # and the trend is monotone over the sweep
            assert all(a >= b - 30.0 for a, b in zip(gains, gains[1:])), \
                procs

    def test_heavier_load_larger_gain(self, sweep):
        for at in LOAD_TIMES[:-1]:  # at the latest time both are smallish
            assert sweep[(at, 8)]["gain"] > sweep[(at, 4)]["gain"], at

    def test_migration_happens_under_every_loaded_case(self, sweep):
        for key, result in sweep.items():
            assert result["migrated"], key
