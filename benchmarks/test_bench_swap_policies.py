"""Benchmark: swap-policy ablation (the [14] study the paper cites).

Runs the Figure 4 N-body scenario under each swap policy and under two
load patterns (the paper's single persistent load, and a roaming load
that moves between machines), comparing completion times and swap
counts.  Expected shape: every policy beats no-swapping under
persistent load; the gang policy avoids the WAN-split penalty that
piecemeal policies pay; the conservative threshold policy swaps least.
"""

from typing import Dict

import pytest

from repro.sim import Simulator
from repro.microgrid import ScheduledLoad, fig4_testbed
from repro.nws import NetworkWeatherService
from repro.apps import NBodySimulation
from repro.rescheduling import SWAP_POLICIES, SwapRescheduler
from repro.experiments import format_table

N_ITER = 100
POLICIES = tuple(sorted(SWAP_POLICIES)) + ("none",)


def run_policy(policy: str, load_pattern: str = "persistent") -> Dict:
    sim = Simulator()
    grid = fig4_testbed(sim)
    nws = NetworkWeatherService(sim, grid, cpu_period=5.0,
                                deploy_network_sensors=False)
    pool = grid.clusters["utk"].hosts + grid.clusters["uiuc"].hosts
    app = NBodySimulation(sim, grid.topology, pool, active_n=3,
                          n_bodies=9000, n_iterations=N_ITER)
    if load_pattern == "persistent":
        ScheduledLoad(host=grid.clusters["utk"][0], at=80.0,
                      nprocs=2).install(sim)
    elif load_pattern == "roaming":
        # the load hops between UTK machines every 60 s
        for i, start in enumerate(range(80, 400, 60)):
            host = grid.clusters["utk"][i % 3]
            ScheduledLoad(host=host, at=float(start), nprocs=2,
                          until=float(start + 60)).install(sim)
    else:
        raise ValueError(load_pattern)
    if policy != "none":
        SwapRescheduler(sim, app.job, nws, policy=policy, period=10.0,
                        improvement=1.1).start()
    done = app.launch()
    sim.run(stop_event=done)
    return {"policy": policy, "finished": sim.now,
            "swaps": len(app.job.swap_log)}


@pytest.fixture(scope="module")
def persistent():
    return {p: run_policy(p, "persistent") for p in POLICIES}


@pytest.fixture(scope="module")
def roaming():
    return {p: run_policy(p, "roaming") for p in POLICIES}


def test_bench_swap_policy(benchmark):
    out = benchmark.pedantic(lambda: run_policy("gang"),
                             rounds=1, iterations=1)
    assert out["finished"] > 0


class TestSwapPolicyAblation:
    def test_print_summary(self, persistent, roaming):
        rows = []
        for policy in POLICIES:
            rows.append([policy,
                         persistent[policy]["finished"],
                         persistent[policy]["swaps"],
                         roaming[policy]["finished"],
                         roaming[policy]["swaps"]])
        print()
        print(format_table(
            ["policy", "persistent: done (s)", "swaps",
             "roaming: done (s)", "swaps"], rows,
            title=f"Swap-policy ablation (N-body, {N_ITER} iterations)"))

    def test_every_policy_beats_none_under_persistent_load(self, persistent):
        baseline = persistent["none"]["finished"]
        for policy in SWAP_POLICIES:
            assert persistent[policy]["finished"] < baseline, policy

    def test_gang_is_best_or_near_best_persistent(self, persistent):
        best = min(persistent[p]["finished"] for p in SWAP_POLICIES)
        assert persistent["gang"]["finished"] <= best * 1.1

    def test_threshold_swaps_least(self, persistent):
        active = {p: persistent[p]["swaps"] for p in SWAP_POLICIES}
        assert active["threshold"] <= min(active["greedy"], active["gang"])

    def test_roaming_load_interim_shape(self, roaming):
        """Under a roaming load, reactive swapping still must not lose
        badly to doing nothing (thrash guard)."""
        baseline = roaming["none"]["finished"]
        for policy in SWAP_POLICIES:
            assert roaming[policy]["finished"] < baseline * 1.2, policy
