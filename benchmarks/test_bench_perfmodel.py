"""Benchmark: performance-model construction accuracy (§3.2).

The paper builds component models from small-size instrumented runs and
uses them at production sizes.  This bench fits flop-count and MRD
models on small problems and scores their extrapolation against ground
truth across problem sizes and cache configurations — the property the
whole workflow scheduler rests on.
"""

import pytest

from repro.apps import qr_total_mflop
from repro.perfmodel import (
    MrdModel,
    ReuseHistogram,
    fit_flop_model,
)
from repro.experiments import format_table

TRAIN_SIZES = (200, 300, 400, 500, 600)
EVAL_SIZES = (1000, 2000, 4000, 8000)


def fit_qr_flops():
    counts = [qr_total_mflop(n) * 1e6 for n in TRAIN_SIZES]
    return fit_flop_model(TRAIN_SIZES, counts)


def blocked_traverse_trace(n_blocks, passes=3, tile=8):
    """A tiled sweep: reuse distance ~tile within tiles, ~n across."""
    trace = []
    for _ in range(passes):
        for start in range(0, n_blocks, tile):
            for _rep in range(2):
                trace.extend(range(start, min(start + tile, n_blocks)))
    return trace


def fit_mrd():
    hists = [ReuseHistogram.from_trace(n, blocked_traverse_trace(n))
             for n in (32, 64, 128)]
    return MrdModel.fit(hists)


@pytest.fixture(scope="module")
def flop_model():
    return fit_qr_flops()


@pytest.fixture(scope="module")
def mrd_model():
    return fit_mrd()


def test_bench_model_fitting(benchmark):
    model = benchmark.pedantic(fit_qr_flops, rounds=3, iterations=1)
    assert model.dominant_degree == 3


def test_bench_mrd_fitting(benchmark):
    model = benchmark.pedantic(fit_mrd, rounds=3, iterations=1)
    assert model.bins


class TestModelAccuracy:
    def test_print_extrapolation_table(self, flop_model):
        rows = []
        for n in EVAL_SIZES:
            predicted = flop_model(n) / 1e6
            truth = qr_total_mflop(n)
            rows.append([n, truth, predicted,
                         100 * abs(predicted - truth) / truth])
        print()
        print(format_table(
            ["N", "true Mflop", "predicted Mflop", "error %"], rows,
            title="Flop-count extrapolation (trained on N=200..600)"))

    def test_extrapolation_error_small(self, flop_model):
        for n in EVAL_SIZES:
            predicted = flop_model(n) / 1e6
            truth = qr_total_mflop(n)
            assert abs(predicted - truth) / truth < 0.05, n

    def test_mrd_predicts_working_set_cliff(self, mrd_model):
        """Miss fraction must fall sharply once the cache covers the
        tile, and approach 1 when it does not even hold a tile."""
        line = 64
        n = 512  # unseen size
        rows = []
        for cache_lines in (4, 8, 16, 64, 256, 1024):
            frac = mrd_model.predict_miss_fraction(
                n, cache_bytes=cache_lines * line, line_bytes=line)
            rows.append([cache_lines, frac])
        print()
        print(format_table(["cache (lines)", "predicted miss fraction"],
                           rows, title=f"MRD model at N={n} blocks"))
        tiny = mrd_model.predict_miss_fraction(n, 4 * line, line)
        tile_sized = mrd_model.predict_miss_fraction(n, 64 * line, line)
        assert tiny > 0.8
        assert tile_sized < tiny * 0.7

    def test_mrd_access_counts_extrapolate(self, mrd_model):
        truth = len(blocked_traverse_trace(512))
        predicted = mrd_model.predict_accesses(512)
        assert predicted == pytest.approx(truth, rel=0.1)
