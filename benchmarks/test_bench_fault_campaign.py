"""Benchmark: the fault-injection campaign runner.

A reduced MTBF sweep (N=3000, one trial per cell) plus the scripted
kill scenarios; prints the campaign tables and re-checks that the
report is deterministic under a fixed seed.
"""

import pytest

from repro.experiments import campaign_tables
from repro.faults import CampaignSpec, run_campaign

SPEC = CampaignSpec(mtbf_grid=(400.0, 1200.0), mttr_grid=(90.0,),
                    trials=1, seed=0, n=3000, checkpoint_every=3)


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(SPEC, with_scenarios=True)


def test_bench_fault_campaign(benchmark):
    result = benchmark.pedantic(
        lambda: run_campaign(SPEC, with_scenarios=False),
        rounds=1, iterations=1)
    assert result.cells


class TestCampaignReport:
    def test_print_report(self, campaign):
        print()
        print(campaign_tables(campaign.report()))

    def test_no_trial_leaks_inflight_migrations(self, campaign):
        for cell in campaign.cells:
            assert cell["migrating_leaked"] == [], cell

    def test_all_scenarios_pass(self, campaign):
        assert all(s["passed"] for s in campaign.scenarios)

    def test_report_is_deterministic(self, campaign):
        again = run_campaign(SPEC, with_scenarios=True)
        assert again.to_json() == campaign.to_json()
