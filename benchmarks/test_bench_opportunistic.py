"""Benchmark: opportunistic rescheduling (§4.1.1 / [21]).

Application B starts on the slow cluster because A occupies the fast
one; B never violates its contract.  With the opportunistic daemon on,
B is migrated to the fast cluster once A completes and finishes much
sooner; with it off, B grinds to completion where it started.
"""

import pytest

from repro.experiments import format_table, run_opportunistic


@pytest.fixture(scope="module")
def with_daemon():
    return run_opportunistic(enable=True)


@pytest.fixture(scope="module")
def without_daemon():
    return run_opportunistic(enable=False)


def test_bench_opportunistic(benchmark):
    result = benchmark.pedantic(
        lambda: run_opportunistic(n_a=4000, n_b=6000, enable=True),
        rounds=1, iterations=1)
    assert result.b_migrations >= 0


class TestOpportunisticShape:
    def test_print_summary(self, with_daemon, without_daemon):
        rows = [
            ("daemon on", with_daemon.a_finished_at,
             with_daemon.b_finished_at, with_daemon.b_migrations,
             with_daemon.b_final_cluster),
            ("daemon off", without_daemon.a_finished_at,
             without_daemon.b_finished_at, without_daemon.b_migrations,
             without_daemon.b_final_cluster),
        ]
        print()
        print(format_table(
            ["mode", "A done (s)", "B done (s)", "B migrations",
             "B final cluster"], rows,
            title="Opportunistic rescheduling"))

    def test_daemon_migrates_b_to_freed_cluster(self, with_daemon):
        assert with_daemon.b_migrations == 1
        assert with_daemon.b_final_cluster == "fast"
        assert with_daemon.opportunistic_decisions >= 1
        # the migration happens only after A freed the fast cluster
        assert with_daemon.b_finished_at > with_daemon.a_finished_at

    def test_without_daemon_b_stays(self, without_daemon):
        assert without_daemon.b_migrations == 0
        assert without_daemon.b_final_cluster == "slow"

    def test_daemon_speeds_up_b(self, with_daemon, without_daemon):
        assert with_daemon.b_finished_at < \
            without_daemon.b_finished_at * 0.8
        # A is unaffected either way
        assert with_daemon.a_finished_at == pytest.approx(
            without_daemon.a_finished_at, rel=0.01)
