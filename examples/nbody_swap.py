#!/usr/bin/env python
"""Process-swap rescheduling of an N-body code on the MicroGrid (§4.2).

Reproduces the Figure 4 demonstration: the N-body simulation runs its
three active processes on the UTK cluster of the emulated grid, with
three idle UIUC machines in the inactive set.  At virtual time 80 s two
competitive processes land on one UTK machine; the swap rescheduler
notices and moves the computation to UIUC; the progress slope dips and
recovers.

Compare policies::

    python examples/nbody_swap.py            # gang (the paper's outcome)
    python examples/nbody_swap.py single     # move one process per check
    python examples/nbody_swap.py none       # no rescheduling baseline
"""

import sys

from repro.experiments import run_fig4


def main(policy: str = "gang") -> None:
    if policy == "none":
        result = run_fig4(with_swapping=False)
    else:
        result = run_fig4(policy=policy)
    print(result.to_series())
    if result.swap_times:
        print("\nswaps applied:")
        for when, where in zip(result.swap_times, result.swapped_to):
            print(f"  t={when:6.1f} s  -> {where}")
    else:
        print("\nno swaps were performed")
    pre = result.rate_between(10.0, 80.0)
    print(f"\nprogress rate before the load: {pre:.3f} iterations/s")
    end = result.all_swaps_done_by() or 150.0
    if end > 81.0:
        print(f"progress rate under the load:  "
              f"{result.rate_between(80.0, end):.3f} iterations/s")
    print(f"progress rate afterwards:      "
          f"{result.rate_between(end + 5.0, result.finished_at):.3f} "
          f"iterations/s")
    print(f"\nfinished at t={result.finished_at:.1f} s "
          f"(policy: {result.policy})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gang")
