#!/usr/bin/env python
"""Quickstart: build a virtual grid, schedule a workflow, run it.

This walks the core GrADS loop in ~60 lines:

1. describe a grid in DML and build it;
2. stand up the information services (GIS + NWS);
3. declare a small workflow with performance models;
4. let the GrADS scheduler pick a mapping (min-min / max-min /
   sufferage, best makespan wins);
5. execute the schedule on the simulated grid and compare the
   estimated makespan against the measured one.
"""

from repro.sim import Simulator
from repro.microgrid import parse_grid
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.perfmodel import AnalyticComponentModel
from repro.scheduler import (
    GradsWorkflowScheduler,
    Workflow,
    WorkflowComponent,
    WorkflowExecutor,
)

GRID_DML = """
arch fast mflops=400 isa=ia32 cache=512KB
arch slow mflops=150 isa=ia32 cache=256KB
cluster alpha arch=fast hosts=4 nic=1Gb   lat=0.1ms
cluster beta  arch=slow hosts=8 nic=100Mb lat=0.1ms
link alpha beta bw=10MB lat=5ms
"""


def main() -> None:
    sim = Simulator()
    grid = parse_grid(GRID_DML, sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)

    # A fan-out workflow: preprocess -> 12 parallel analyses -> merge.
    workflow = Workflow("quickstart")
    for name, mflop, n_tasks in (("preprocess", 2_000.0, 1),
                                 ("analyze", 48_000.0, 12),
                                 ("merge", 1_000.0, 1)):
        workflow.add_component(WorkflowComponent(
            name=name,
            model=AnalyticComponentModel(mflop_fn=lambda n, m=mflop: m),
            problem_size=1.0,
            n_tasks=n_tasks,
            input_bytes_per_task=2e6,
        ))
    workflow.add_dependence("preprocess", "analyze")
    workflow.add_dependence("analyze", "merge")

    result = GradsWorkflowScheduler(gis, nws).schedule(workflow)
    print("candidate makespans (s):")
    for heuristic, seconds in sorted(result.makespans().items()):
        marker = "  <- chosen" if heuristic == result.best.heuristic else ""
        print(f"  {heuristic:10s} {seconds:8.1f}{marker}")

    trace_event = WorkflowExecutor(sim, grid.topology, gis).execute(
        workflow, result.best)
    sim.run(stop_event=trace_event)
    trace = trace_event.value
    print(f"\nexecuted on the grid: measured makespan "
          f"{trace.makespan:.1f} s (estimated {result.best.makespan:.1f} s)")
    used = sorted({t.resource for t in trace.tasks.values()})
    print(f"resources used ({len(used)}): {', '.join(used)}")


if __name__ == "__main__":
    main()
