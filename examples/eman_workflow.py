#!/usr/bin/env python
"""Scheduling the EMAN refinement workflow on a heterogeneous grid (§3.3).

Builds the EMAN bio-imaging refinement pipeline (proc3d -> project3d ->
classesbymra -> classalign2 -> make3d -> eotest), constructs its
performance models, schedules it with the GrADS workflow scheduler onto
a mixed IA-32 / IA-64 grid, and executes the chosen schedule — checking
that both architectures carry work, which is what the distributed
binder's compile-at-target design enables.
"""

from repro.apps import EmanParameters
from repro.experiments import run_eman_demo


def main() -> None:
    params = EmanParameters(n_particles=20000, n_classes=200, box_size=64)
    mflop = {
        "proc3d": params.proc3d_mflop(),
        "project3d": params.project3d_mflop(),
        "classesbymra": params.classesbymra_mflop(),
        "classalign2": params.classalign2_mflop(),
        "make3d": params.make3d_mflop(),
        "eotest": params.eotest_mflop(),
    }
    total = sum(mflop.values())
    print("EMAN refinement round, per-stage work:")
    for stage, work in mflop.items():
        print(f"  {stage:14s} {work:12.0f} Mflop  "
              f"({100 * work / total:5.1f} %)")

    result = run_eman_demo(params=params)
    print()
    print(result.to_table())
    print(f"\nexecuted the {result.chosen_heuristic} schedule on the grid:")
    print(f"  measured makespan: {result.measured_makespan:.1f} s")
    print(f"  resources used:    {result.resources_used}")
    print(f"  ISAs carrying work: {', '.join(result.isas_used)}")


if __name__ == "__main__":
    main()
