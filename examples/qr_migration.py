#!/usr/bin/env python
"""Stop/migrate/restart rescheduling of a ScaLAPACK QR job (§4.1).

The Figure 3 story at one matrix size: the QR job starts on the fast
UTK cluster; five minutes in, an artificial load lands on one UTK node;
the contract monitor confirms the violation and the rescheduler weighs
remaining-time-here against remaining-time-there plus migration cost.

Run with different sizes to watch the decision flip::

    python examples/qr_migration.py          # N=9000: migrates
    python examples/qr_migration.py 5000     # small: stays put
"""

import sys

from repro.sim import Simulator
from repro.microgrid import ScheduledLoad, fig3_testbed
from repro.appmanager import GradsEnvironment
from repro.apps import QrBenchmark
from repro.contracts import ContractViewer
from repro.experiments import PHASES


def main(n: int = 9000) -> None:
    sim = Simulator()
    grid = fig3_testbed(sim)
    env = GradsEnvironment(sim, grid, submission_host="utk.n0")
    run, monitor, rescheduler = env.managed_qr(
        QrBenchmark(n=n, nb=200),
        initial_hosts=grid.clusters["utk"].host_names(),
        rescheduler_mode="default",
        worst_case_migration_seconds=None)  # trust the app's estimate
    ScheduledLoad(host=grid.clusters["utk"][0], at=300.0,
                  nprocs=8).install(sim)
    viewer = ContractViewer(monitor)

    print(f"QR factorization, N={n}, starting on UTK "
          f"(4 x dual 933 MHz PIII); load hits utk.n0 at t=300 s\n")
    finished = run.start()
    sim.run(stop_event=finished)

    for decision in rescheduler.decisions:
        ev = decision.evaluation
        print(f"t={decision.time:7.1f}  contract violation confirmed; "
              f"rescheduler evaluated:")
        print(f"    remaining here:  {ev.remaining_current:8.1f} s on "
              f"{', '.join(ev.current_hosts[:2])}...")
        print(f"    remaining there: {ev.remaining_new:8.1f} s on "
              f"{', '.join(ev.new_hosts[:2])}...")
        print(f"    migration cost:  {ev.migration_cost:8.1f} s  "
              f"-> {'MIGRATE' if decision.migrated else 'STAY'}"
              f" (benefit {ev.benefit:+.1f} s)")
    if not rescheduler.decisions:
        print("no contract violation was confirmed "
              "(the job finished before the load mattered)")

    print(f"\nfinished at t={sim.now:.1f} s with {run.migrations} "
          f"migration(s); final hosts: {run.current_hosts()[0].split('.')[0]}")
    print("\nphase breakdown (the Figure 3 bar for this run):")
    for phase in PHASES:
        if phase in run.timings:
            print(f"  {phase.replace('_', ' '):24s} {run.timings[phase]:9.1f} s")

    print("\n" + viewer.render(width=50))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9000)
