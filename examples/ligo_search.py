#!/usr/bin/env python
"""Scheduling a LIGO-style pulsar search across the whole MacroGrid.

Section 3 names the LIGO pulsar search as a canonical Grid workflow.
This example builds the pipeline (frame extraction -> SFTs -> the
embarrassingly parallel demodulated search -> sifting -> coincidence),
pins the raw interferometer frames at UCSD, and lets the GrADS workflow
scheduler place the stages across all six MacroGrid clusters — showing
data-aware entry placement and wide fan-out in one run.
"""

from repro.sim import Simulator
from repro.microgrid import grads_macrogrid
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.apps import LigoParameters, ligo_pulsar_search_workflow
from repro.scheduler import GradsWorkflowScheduler, WorkflowExecutor


def main() -> None:
    sim = Simulator()
    grid = grads_macrogrid(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)

    params = LigoParameters(observation_hours=10.0, n_sky_points=500,
                            n_frequency_bands=20)
    workflow = ligo_pulsar_search_workflow(params, search_tasks=40)
    print(f"pulsar search: {params.n_sfts} SFTs, "
          f"{params.n_sky_points * params.n_frequency_bands} templates, "
          f"{workflow.total_mflop():.0f} Mflop total "
          f"({100 * params.pulsar_search_mflop() / workflow.total_mflop():.0f}% "
          f"in the search stage)")

    result = GradsWorkflowScheduler(gis, nws).schedule(
        workflow, data_sources={"frame_extract": ["ucsd.n0"]})
    print(f"\nchosen heuristic: {result.best.heuristic} "
          f"(estimated makespan {result.best.makespan:.1f} s)")
    entry = result.best.placements["frame_extract[0]"].resource
    print(f"frame extraction placed at {entry} (data lives at ucsd.n0)")

    trace_event = WorkflowExecutor(sim, grid.topology, gis).execute(
        workflow, result.best)
    sim.run(stop_event=trace_event)
    trace = trace_event.value
    by_site = {}
    for task in trace.tasks.values():
        site = task.resource.split(".")[0]
        by_site[site] = by_site.get(site, 0) + 1
    print(f"\nmeasured makespan: {trace.makespan:.1f} s")
    print("tasks per site:",
          ", ".join(f"{site}={count}" for site, count
                    in sorted(by_site.items())))


if __name__ == "__main__":
    main()
