"""Tests for NWS sensors and the service facade."""

import pytest

from repro.sim import RngRegistry, Simulator
from repro.microgrid import ScheduledLoad, fig3_testbed, fig4_testbed
from repro.nws import CpuSensor, NetworkSensor, NetworkWeatherService


class TestCpuSensor:
    def test_periodic_readings(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        host = grid.clusters["utk"][0]
        sensor = CpuSensor(sim, host, period=10.0)
        sim.run(until=55.0)
        assert len(sensor.readings) == 5
        assert all(r.value == pytest.approx(1.0) for r in sensor.readings)

    def test_sensor_sees_load(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        host = grid.clusters["utk"][0]  # dual core
        sensor = CpuSensor(sim, host, period=10.0)
        ScheduledLoad(host=host, at=25.0, nprocs=4).install(sim)
        sim.run(until=45.0)
        before = [r.value for r in sensor.readings if r.time < 25.0]
        after = [r.value for r in sensor.readings if r.time > 25.0]
        assert all(v == pytest.approx(1.0) for v in before)
        # 4 background procs on 2 cores: a 5th task would get 2/5 core.
        assert all(v == pytest.approx(0.4) for v in after)

    def test_noisy_sensor_clamped_to_unit_interval(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        rng = RngRegistry(seed=3).stream("sensor")
        sensor = CpuSensor(sim, grid.clusters["utk"][0], period=1.0,
                           noise_std=0.5, rng=rng)
        sim.run(until=100.0)
        assert all(0.0 <= r.value <= 1.0 for r in sensor.readings)

    def test_noise_requires_rng(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        with pytest.raises(ValueError):
            CpuSensor(sim, grid.clusters["utk"][0], noise_std=0.1)

    def test_bad_period_rejected(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        with pytest.raises(ValueError):
            CpuSensor(sim, grid.clusters["utk"][0], period=0.0)

    def test_callback_invoked(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        sensor = CpuSensor(sim, grid.clusters["utk"][0], period=5.0)
        seen = []
        sensor.on_reading(lambda m: seen.append(m.time))
        sim.run(until=16.0)
        assert seen == [5.0, 10.0, 15.0]


class TestNetworkSensor:
    def test_probe_measures_bottleneck(self):
        sim = Simulator()
        grid = fig3_testbed(sim, internet_bw=5e6)
        sensor = NetworkSensor(sim, grid.topology, "utk.n0", "uiuc.n0",
                               period=30.0)
        sim.run(until=100.0)
        assert len(sensor.bandwidth_readings) == 3
        for reading in sensor.bandwidth_readings:
            assert reading.value == pytest.approx(5e6, rel=0.05)

    def test_probe_sees_contention(self):
        sim = Simulator()
        grid = fig3_testbed(sim, internet_bw=5e6)
        sensor = NetworkSensor(sim, grid.topology, "utk.n0", "uiuc.n0",
                               period=20.0, probe_bytes=1e6)
        # Saturate the WAN link with a long bulk transfer from t=0.
        grid.topology.transfer("utk.n1", "uiuc.n1", 1e9)
        sim.run(until=65.0)
        assert sensor.bandwidth_readings
        for reading in sensor.bandwidth_readings:
            assert reading.value < 3.5e6  # roughly half of the 5 MB/s link

    def test_latency_reading(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        sensor = NetworkSensor(sim, grid.topology, "utk.n0", "uiuc.n0",
                               period=10.0)
        sim.run(until=11.0)
        assert sensor.latest_latency().value == pytest.approx(0.011, abs=0.001)

    def test_validation(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        with pytest.raises(ValueError):
            NetworkSensor(sim, grid.topology, "a", "b", period=-1.0)
        with pytest.raises(ValueError):
            NetworkSensor(sim, grid.topology, "a", "b", probe_bytes=0)


class TestNetworkWeatherService:
    def test_cpu_forecast_before_data_uses_probe(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        assert nws.cpu_forecast("utk.n0") == pytest.approx(1.0)

    def test_cpu_forecast_tracks_load(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        nws = NetworkWeatherService(sim, grid, cpu_period=5.0,
                                    deploy_network_sensors=False)
        host = grid.clusters["uiuc"][0]
        host.add_background_load(1)
        sim.run(until=120.0)
        assert nws.cpu_forecast("uiuc.n0") == pytest.approx(0.5, abs=0.05)

    def test_bandwidth_forecast_static_fallback(self):
        sim = Simulator()
        grid = fig3_testbed(sim, internet_bw=5e6)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        assert nws.bandwidth_forecast("utk.n0", "uiuc.n0") == pytest.approx(5e6)

    def test_bandwidth_forecast_from_probes(self):
        sim = Simulator()
        grid = fig3_testbed(sim, internet_bw=5e6)
        nws = NetworkWeatherService(sim, grid, net_period=15.0)
        sim.run(until=120.0)
        assert nws.bandwidth_forecast("utk.n2", "uiuc.n5") == pytest.approx(
            5e6, rel=0.1)

    def test_local_bandwidth_is_memcpy(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        assert nws.bandwidth_forecast("utk.n0", "utk.n0") == \
            grid.topology.local_copy_bw

    def test_transfer_forecast_combines_latency_and_bw(self):
        sim = Simulator()
        grid = fig3_testbed(sim, internet_bw=5e6)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        t = nws.transfer_forecast("utk.n0", "uiuc.n0", 5e6)
        assert t == pytest.approx(1.0 + 0.011, rel=0.02)

    def test_transfer_forecast_negative_rejected(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        with pytest.raises(ValueError):
            nws.transfer_forecast("utk.n0", "uiuc.n0", -1)

    def test_works_on_fig4_grid_with_standalone_host(self):
        sim = Simulator()
        grid = fig4_testbed(sim)
        nws = NetworkWeatherService(sim, grid, net_period=20.0)
        sim.run(until=60.0)
        bw = nws.bandwidth_forecast("ucsd.n0", "utk.n0")
        assert bw > 0
