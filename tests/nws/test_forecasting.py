"""Tests for the NWS forecaster battery and adaptive selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nws import (
    AdaptiveForecaster,
    ExponentialSmoothing,
    LastValue,
    RunningMean,
    SlidingWindowMean,
    SlidingWindowMedian,
    default_battery,
)


class TestIndividualForecasters:
    def test_last_value(self):
        f = LastValue()
        assert f.predict() is None
        f.update(3.0)
        f.update(7.0)
        assert f.predict() == 7.0

    def test_running_mean(self):
        f = RunningMean()
        assert f.predict() is None
        for v in (1.0, 2.0, 3.0):
            f.update(v)
        assert f.predict() == pytest.approx(2.0)

    def test_sliding_window_mean(self):
        f = SlidingWindowMean(3)
        for v in (10.0, 1.0, 2.0, 3.0):
            f.update(v)
        assert f.predict() == pytest.approx(2.0)  # 10 fell out

    def test_sliding_window_median_resists_spike(self):
        f = SlidingWindowMedian(5)
        for v in (1.0, 1.0, 100.0, 1.0, 1.0):
            f.update(v)
        assert f.predict() == pytest.approx(1.0)

    def test_exponential_smoothing(self):
        f = ExponentialSmoothing(0.5)
        f.update(0.0)
        f.update(1.0)
        assert f.predict() == pytest.approx(0.5)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowMean(0)
        with pytest.raises(ValueError):
            SlidingWindowMedian(-1)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            ExponentialSmoothing(0.0)
        with pytest.raises(ValueError):
            ExponentialSmoothing(1.5)


class TestAdaptiveForecaster:
    def test_empty_battery_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveForecaster(battery=[])

    def test_no_data_predicts_none(self):
        assert AdaptiveForecaster().predict() is None

    def test_constant_series_predicted_exactly(self):
        f = AdaptiveForecaster()
        for _ in range(20):
            f.update(0.5)
        assert f.predict() == pytest.approx(0.5)

    def test_picks_last_value_for_trending_series(self):
        """On a monotone ramp, last-value beats long-history means."""
        f = AdaptiveForecaster()
        for i in range(100):
            f.update(float(i))
        errors = f.errors()
        assert errors["last"] < errors["mean"]
        best = f.best_method()
        assert best.predict() == pytest.approx(99.0, abs=5.0)

    def test_picks_stable_method_for_noisy_flat_series(self):
        """On mean-zero noise around a level, an averaging method beats
        chasing the last sample."""
        rng = np.random.default_rng(0)
        f = AdaptiveForecaster()
        for _ in range(300):
            f.update(0.5 + float(rng.normal(0, 0.1)))
        errors = f.errors()
        averaging = min(errors["mean"], errors["win_mean_20"])
        assert averaging < errors["last"]
        assert f.predict() == pytest.approx(0.5, abs=0.05)

    def test_adaptive_never_much_worse_than_best_member(self):
        """Selection overhead must be bounded: the adaptive forecast
        tracks the best battery member's error closely."""
        rng = np.random.default_rng(1)
        series = 0.5 + 0.3 * np.sin(np.arange(200) / 10.0) \
            + rng.normal(0, 0.05, 200)
        shadow = default_battery()
        shadow_err = {m.name: 0.0 for m in shadow}
        adaptive = AdaptiveForecaster()
        adaptive_err = 0.0
        for x in series:
            pred = adaptive.predict()
            if pred is not None:
                adaptive_err += abs(pred - x)
            for m in shadow:
                p = m.predict()
                if p is not None:
                    shadow_err[m.name] += abs(p - x)
                m.update(x)
            adaptive.update(x)
        best = min(shadow_err.values())
        assert adaptive_err <= best * 1.5 + 1.0

    def test_errors_normalized_by_samples(self):
        f = AdaptiveForecaster()
        for v in (1.0, 1.0, 1.0):
            f.update(v)
        assert all(e >= 0 for e in f.errors().values())
        assert f.n_samples == 3

    def test_history_returned_copy(self):
        f = AdaptiveForecaster()
        f.update(1.0)
        h = f.history()
        h.append(99.0)
        assert f.history() == [1.0]


@settings(max_examples=30, deadline=None)
@given(series=st.lists(st.floats(min_value=0.0, max_value=1.0),
                       min_size=1, max_size=50))
def test_property_adaptive_prediction_within_observed_range(series):
    """Every battery member is a convex combination of history, so the
    adaptive prediction must lie inside [min, max] of the series."""
    f = AdaptiveForecaster()
    for x in series:
        f.update(x)
    pred = f.predict()
    assert pred is not None
    assert min(series) - 1e-9 <= pred <= max(series) + 1e-9


@settings(max_examples=30, deadline=None)
@given(value=st.floats(min_value=0.01, max_value=100.0),
       n=st.integers(min_value=1, max_value=30))
def test_property_constant_series_fixed_point(value, n):
    f = AdaptiveForecaster()
    for _ in range(n):
        f.update(value)
    assert f.predict() == pytest.approx(value)


class TestAutoRegressive:
    def test_validation(self):
        from repro.nws import AutoRegressive
        with pytest.raises(ValueError):
            AutoRegressive(order=0)
        with pytest.raises(ValueError):
            AutoRegressive(order=5, window=8)

    def test_falls_back_to_last_value_early(self):
        from repro.nws import AutoRegressive
        f = AutoRegressive(order=2)
        assert f.predict() is None
        f.update(0.7)
        assert f.predict() == pytest.approx(0.7)

    def test_learns_alternating_series(self):
        """AR(1) captures period-2 oscillation that means smear out."""
        from repro.nws import AutoRegressive, SlidingWindowMean
        ar = AutoRegressive(order=1)
        mean = SlidingWindowMean(20)
        series = [0.9 if i % 2 == 0 else 0.3 for i in range(60)]
        ar_err = mean_err = 0.0
        for x in series:
            if ar.predict() is not None:
                ar_err += abs(ar.predict() - x)
            if mean.predict() is not None:
                mean_err += abs(mean.predict() - x)
            ar.update(x)
            mean.update(x)
        assert ar_err < mean_err * 0.5

    def test_prediction_clamped_to_window_range(self):
        from repro.nws import AutoRegressive
        f = AutoRegressive(order=1, window=10)
        for x in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]:
            f.update(x)
        # a pure AR line would predict ~0.9; clamped to max observed
        assert f.predict() <= 0.8 + 1e-9

    def test_constant_series_fixed_point(self):
        from repro.nws import AutoRegressive
        f = AutoRegressive(order=2)
        for _ in range(30):
            f.update(0.5)
        assert f.predict() == pytest.approx(0.5)
