"""Tests for the N-body app (with swap rescheduling) and the EMAN workflow."""

import pytest

from repro.sim import Simulator
from repro.microgrid import ScheduledLoad, fig4_testbed, heterogeneous_testbed
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.apps import (
    EMAN_STAGES,
    EmanParameters,
    NBodySimulation,
    eman_refinement_workflow,
    nbody_step_mflop,
)
from repro.rescheduling import SwapRescheduler
from repro.scheduler import GradsWorkflowScheduler


def nbody_env(n_bodies=9000, n_iterations=30, cpu_period=5.0):
    """The Figure 4 setup: pool = 3 UTK (active) + 3 UIUC (inactive)."""
    sim = Simulator()
    grid = fig4_testbed(sim)
    nws = NetworkWeatherService(sim, grid, cpu_period=cpu_period,
                                deploy_network_sensors=False)
    pool = grid.clusters["utk"].hosts + grid.clusters["uiuc"].hosts
    app = NBodySimulation(sim, grid.topology, pool, active_n=3,
                          n_bodies=n_bodies, n_iterations=n_iterations)
    return sim, grid, nws, app


class TestNBody:
    def test_validation(self):
        sim, grid, nws, _ = nbody_env()
        with pytest.raises(ValueError):
            NBodySimulation(sim, grid.topology,
                            grid.clusters["utk"].hosts, 2, 0, 10)
        with pytest.raises(ValueError):
            nbody_step_mflop(-1)

    def test_progress_recorded_per_iteration(self):
        sim, grid, nws, app = nbody_env(n_iterations=10)
        done = app.launch()
        sim.run(stop_event=done)
        assert len(app.progress) == 10
        assert [p.iteration for p in app.progress] == list(range(1, 11))
        times = [p.time for p in app.progress]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_double_launch_rejected(self):
        sim, grid, nws, app = nbody_env(n_iterations=2)
        app.launch()
        with pytest.raises(RuntimeError):
            app.launch()

    def test_load_slows_progress_without_swapping(self):
        sim, grid, nws, app = nbody_env(n_iterations=60)
        ScheduledLoad(host=grid.clusters["utk"][0], at=80.0,
                      nprocs=2).install(sim)
        done = app.launch()
        sim.run(stop_event=done)
        gaps = [b.time - a.time
                for a, b in zip(app.progress, app.progress[1:])]
        early = gaps[1]
        late = gaps[-1]
        assert late > early * 2  # one loaded rank gates every iteration

    def test_swap_rescheduler_recovers_progress(self):
        """The Figure 4 scenario end to end: load at t=80 on one UTK
        node, swap rescheduler moves work to UIUC, slope recovers."""
        sim, grid, nws, app = nbody_env(n_iterations=40)
        ScheduledLoad(host=grid.clusters["utk"][0], at=80.0,
                      nprocs=2).install(sim)
        resched = SwapRescheduler(sim, app.job, nws, policy="greedy",
                                  period=10.0, improvement=1.1)
        resched.start()
        done = app.launch()
        sim.run(stop_event=done)
        assert app.job.swap_log  # at least the loaded node was replaced
        swapped_away = {r.old_host for r in app.job.swap_log}
        assert "utk.n0" in swapped_away
        # after the swap, iteration gaps return near the pre-load pace
        gaps = [b.time - a.time
                for a, b in zip(app.progress, app.progress[1:])]
        early = gaps[1]
        assert gaps[-1] < early * 2.0

    def test_swap_beats_no_swap(self):
        def run(with_swap):
            sim, grid, nws, app = nbody_env(n_iterations=40)
            ScheduledLoad(host=grid.clusters["utk"][0], at=80.0,
                          nprocs=2).install(sim)
            if with_swap:
                SwapRescheduler(sim, app.job, nws, policy="greedy",
                                period=10.0, improvement=1.1).start()
            done = app.launch()
            sim.run(stop_event=done)
            return sim.now

        assert run(True) < run(False)


class TestSwapPolicies:
    def test_policy_validation(self):
        sim, grid, nws, app = nbody_env()
        with pytest.raises(ValueError):
            SwapRescheduler(sim, app.job, nws, policy="ghost")
        with pytest.raises(ValueError):
            SwapRescheduler(sim, app.job, nws, period=0.0)
        with pytest.raises(ValueError):
            SwapRescheduler(sim, app.job, nws, improvement=0.5)

    def test_no_swaps_when_balanced(self):
        sim, grid, nws, app = nbody_env()
        resched = SwapRescheduler(sim, app.job, nws, policy="greedy",
                                  improvement=1.05)
        # UTK 550 MHz active vs UIUC 450 MHz inactive: no idle machine
        # beats an unloaded active one.
        assert resched.check_and_swap() == []

    def test_single_policy_swaps_one_at_a_time(self):
        sim, grid, nws, app = nbody_env(cpu_period=1.0)
        for host in grid.clusters["utk"]:
            host.add_background_load(3)
        sim.run(until=30.0)  # let CPU sensors observe the load
        resched = SwapRescheduler(sim, app.job, nws, policy="single",
                                  improvement=1.1)
        decisions = resched.check_and_swap()
        assert len(decisions) == 1

    def test_greedy_policy_swaps_all_loaded(self):
        sim, grid, nws, app = nbody_env(cpu_period=1.0)
        for host in grid.clusters["utk"]:
            host.add_background_load(3)
        sim.run(until=30.0)
        resched = SwapRescheduler(sim, app.job, nws, policy="greedy",
                                  improvement=1.1)
        decisions = resched.check_and_swap()
        assert len(decisions) == 3

    def test_threshold_policy_ignores_small_gains(self):
        sim, grid, nws, app = nbody_env(cpu_period=1.0)
        grid.clusters["utk"][0].add_background_load(1)  # 2x slowdown only
        sim.run(until=30.0)
        resched = SwapRescheduler(sim, app.job, nws, policy="threshold",
                                  improvement=3.0)
        assert resched.check_and_swap() == []

    def test_pending_swaps_block_new_decisions(self):
        sim, grid, nws, app = nbody_env(cpu_period=1.0)
        grid.clusters["utk"][0].add_background_load(5)
        sim.run(until=30.0)
        resched = SwapRescheduler(sim, app.job, nws, policy="greedy",
                                  improvement=1.1)
        first = resched.check_and_swap()
        assert first
        assert resched.check_and_swap() == []  # queued swap not yet applied


class TestEman:
    def test_workflow_shape(self):
        wf = eman_refinement_workflow(EmanParameters())
        assert [c.name for c in wf.components()] == list(EMAN_STAGES)
        levels = wf.levels()
        assert len(levels) == len(EMAN_STAGES)  # strictly linear graph

    def test_classesbymra_dominates(self):
        params = EmanParameters()
        total = sum(getattr(params, f"{s}_mflop")() for s in
                    ("proc3d", "project3d", "classesbymra", "classalign2",
                     "make3d", "eotest"))
        assert params.classesbymra_mflop() / total > 0.8

    def test_parallel_stages_expand(self):
        wf = eman_refinement_workflow(EmanParameters(),
                                      classesbymra_tasks=32,
                                      classalign_tasks=16, project_tasks=4)
        assert len(wf.tasks()) == 1 + 4 + 32 + 16 + 1 + 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EmanParameters(n_particles=0)
        with pytest.raises(ValueError):
            eman_refinement_workflow(EmanParameters(), classesbymra_tasks=0)

    def test_schedules_on_heterogeneous_grid(self):
        sim = Simulator()
        grid = heterogeneous_testbed(sim)
        gis = GridInformationService()
        gis.register_grid(grid)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        wf = eman_refinement_workflow(EmanParameters(n_particles=5000))
        result = GradsWorkflowScheduler(gis, nws).schedule(wf)
        assert result.best.makespan > 0
        # the heavy classesbymra tasks use the fast IA-64 nodes too
        resources = set(result.best.component_resources("classesbymra"))
        assert any(r.startswith("ia64.") for r in resources)
