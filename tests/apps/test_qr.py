"""Tests for the QR benchmark and its managed GrADS lifecycle."""

import pytest

from repro.sim import Simulator
from repro.microgrid import ScheduledLoad, fig3_testbed
from repro.appmanager import GradsEnvironment
from repro.apps import QrBenchmark, qr_steps, qr_step_mflop, qr_total_mflop


def build(n=2000, nb=100, internet_bw=5e6, **kwargs):
    sim = Simulator()
    grid = fig3_testbed(sim, internet_bw=internet_bw)
    env = GradsEnvironment(sim, grid, submission_host="utk.n0")
    benchmark = QrBenchmark(n=n, nb=nb)
    run, monitor, rescheduler = env.managed_qr(
        benchmark, initial_hosts=grid.clusters["utk"].host_names(), **kwargs)
    return sim, grid, env, run, monitor, rescheduler


class TestKernels:
    def test_step_series_sums_to_total(self):
        n, nb = 3000, 64
        total = sum(qr_step_mflop(n, nb, j) for j in range(qr_steps(n, nb)))
        assert total == pytest.approx(qr_total_mflop(n), rel=0.15)

    def test_steps_shrink(self):
        n, nb = 1000, 100
        costs = [qr_step_mflop(n, nb, j) for j in range(qr_steps(n, nb))]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            qr_step_mflop(100, 10, 99)
        with pytest.raises(ValueError):
            qr_steps(100, 0)
        with pytest.raises(ValueError):
            QrBenchmark(n=0)


class TestQrRunNoMigration:
    def test_completes_with_phase_ledger(self):
        sim, grid, env, run, monitor, rescheduler = build(n=1500)
        finished = run.start()
        sim.run(stop_event=finished)
        timings = finished.value
        for phase in ("resource_selection_1", "performance_modeling_1",
                      "grid_overhead_1", "application_start_1",
                      "application_duration_1"):
            assert timings[phase] > 0, phase
        assert run.migrations == 0
        assert run.progress == run.benchmark.steps
        assert "checkpoint_write_1" not in timings

    def test_progress_tracks_steps(self):
        sim, grid, env, run, monitor, rescheduler = build(n=1000, nb=250)
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.progress == 4

    def test_duration_close_to_model_prediction(self):
        sim, grid, env, run, monitor, rescheduler = build(n=2000)
        predicted = run.predicted_remaining_seconds(run.current_hosts())
        finished = run.start()
        sim.run(stop_event=finished)
        measured = finished.value["application_duration_1"]
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_contract_quiet_on_unloaded_grid(self):
        sim, grid, env, run, monitor, rescheduler = build(n=1500)
        finished = run.start()
        sim.run(stop_event=finished)
        assert monitor.requests == []

    def test_double_start_rejected(self):
        sim, grid, env, run, monitor, rescheduler = build(n=800)
        run.start()
        with pytest.raises(RuntimeError):
            run.start()


class TestQrRunMigration:
    def build_loaded(self, n=4000, mode="default", worst_case=None,
                     load_at=60.0, nprocs=8):
        sim, grid, env, run, monitor, rescheduler = build(
            n=n, rescheduler_mode=mode,
            worst_case_migration_seconds=worst_case)
        # Artificial load on one UTK node, paper-style.
        ScheduledLoad(host=grid.clusters["utk"][0], at=load_at,
                      nprocs=nprocs).install(sim)
        return sim, grid, env, run, monitor, rescheduler

    def test_load_triggers_contract_violation(self):
        sim, grid, env, run, monitor, rescheduler = self.build_loaded(
            mode="force-stay")
        finished = run.start()
        sim.run(stop_event=finished)
        assert len(monitor.requests) >= 1
        assert run.migrations == 0  # force-stay never migrates

    def test_force_migrate_moves_to_uiuc(self):
        sim, grid, env, run, monitor, rescheduler = self.build_loaded(
            mode="force-migrate")
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.migrations == 1
        assert all(h.startswith("uiuc.") for h in run.current_hosts())
        assert run.progress == run.benchmark.steps
        timings = finished.value
        assert timings["checkpoint_write_1"] > 0
        assert timings["checkpoint_read_2"] > 0
        assert timings["application_duration_2"] > 0
        # The checkpoint read crosses the Internet and dwarfs the write.
        assert timings["checkpoint_read_2"] > 3 * timings["checkpoint_write_1"]

    def test_default_mode_migrates_large_problem(self):
        """For a big matrix the remaining-time gain dominates the
        (accurately estimated) migration cost."""
        sim, grid, env, run, monitor, rescheduler = self.build_loaded(
            n=6000, mode="default", worst_case=None)
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.migrations == 1
        assert rescheduler.decisions
        assert rescheduler.decisions[0].evaluation.profitable

    def test_pessimistic_worst_case_blocks_small_problem(self):
        """With the paper's 900 s worst-case cost, a small problem's
        benefit cannot justify migration — the §4.1.2 wrong-decision
        mechanism."""
        sim, grid, env, run, monitor, rescheduler = self.build_loaded(
            n=3000, mode="default", worst_case=900.0, load_at=20.0)
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.migrations == 0
        assert any(not d.migrated for d in rescheduler.decisions)
        # The monitor raised its tolerance after the declined request.
        assert monitor.upper > 1.5

    def test_migration_event_value_is_new_hosts(self):
        sim, grid, env, run, monitor, rescheduler = self.build_loaded(
            mode="force-migrate")
        finished = run.start()
        captured = []
        orig_migrate = run.migrate

        def spy(new_hosts):
            ev = orig_migrate(new_hosts)
            ev.add_callback(lambda e: captured.append(e.value))
            return ev

        run.migrate = spy
        sim.run(stop_event=finished)
        assert captured and all(h.startswith("uiuc.") for h in captured[0])

    def test_migrated_run_result_matches_problem(self):
        """End-to-end conservation: total compute done across both
        segments covers the full factorization."""
        sim, grid, env, run, monitor, rescheduler = self.build_loaded(
            mode="force-migrate")
        finished = run.start()
        sim.run(stop_event=finished)
        total_done = sum(h.mflop_done for h in grid.all_hosts())
        # >= because background load doesn't count, binder compile does.
        assert total_done >= qr_total_mflop(run.benchmark.n) * 0.65
