"""Tests for QR crash recovery (the VGrADS fault-tolerance extension)."""

import pytest

from repro.sim import Simulator
from repro.microgrid import ScheduledFailure, fig3_testbed
from repro.appmanager import GradsEnvironment
from repro.apps import QrBenchmark


def build(n=3000, nb=200, checkpoint_every=3, stable_storage=True,
          submission="utk.n3"):
    sim = Simulator()
    grid = fig3_testbed(sim)
    env = GradsEnvironment(sim, grid, submission_host=submission)
    run, monitor, rescheduler = env.managed_qr(
        QrBenchmark(n=n, nb=nb),
        initial_hosts=grid.clusters["utk"].host_names()[:3],
        rescheduler_mode="force-stay",
        checkpoint_every=checkpoint_every,
        stable_storage=stable_storage)
    return sim, grid, run


class TestQrFaultTolerance:
    def test_checkpoint_every_validated(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        with pytest.raises(ValueError):
            env.managed_qr(QrBenchmark(n=1000),
                           initial_hosts=["utk.n0", "utk.n1"],
                           checkpoint_every=0)

    def test_completes_without_failures(self):
        sim, grid, run = build()
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.failures_recovered == 0
        assert run.progress == run.benchmark.steps

    def test_recovers_from_mid_run_crash(self):
        sim, grid, run = build()
        # Crash one of the three compute nodes mid-run.
        ScheduledFailure(host=grid.clusters["utk"][1], at=40.0).install(sim)
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.failures_recovered == 1
        assert run.progress == run.benchmark.steps
        assert "failure_recovery_1" in run.timings
        # the dead node is not in the final host set
        assert "utk.n1" not in run.current_hosts()

    def test_resumes_from_periodic_checkpoint_not_scratch(self):
        """With checkpoints every 3 steps, a crash late in the run must
        not redo the early (most expensive) panel steps."""
        sim, grid, run = build(n=4000, checkpoint_every=2)
        ScheduledFailure(host=grid.clusters["utk"][2], at=100.0).install(sim)
        finished = run.start()
        sim.run(stop_event=finished)
        crash_time = run.timings["failure_recovery_1"]
        assert run.failures_recovered == 1
        assert run.progress == run.benchmark.steps
        # total wall time is far below crash + full-rerun-from-scratch
        rerun_from_scratch = crash_time + run.predicted_remaining_seconds(
            run.current_hosts()) * (run.benchmark.steps /
                                    max(run.benchmark.steps - 2, 1))
        assert sim.now < 100.0 + rerun_from_scratch * 1.5

    def test_without_periodic_checkpoints_restarts_from_scratch(self):
        """No checkpoint_every: the crash erases all progress and the
        restart recomputes from step 0 (and still completes)."""
        sim, grid, run = build(n=2500, checkpoint_every=None)
        ScheduledFailure(host=grid.clusters["utk"][0], at=30.0).install(sim)
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.failures_recovered == 1
        assert run.progress == run.benchmark.steps

    def test_survives_two_crashes(self):
        sim, grid, run = build(n=4000, checkpoint_every=2)
        ScheduledFailure(host=grid.clusters["utk"][0], at=60.0).install(sim)
        ScheduledFailure(host=grid.clusters["utk"][2], at=110.0).install(sim)
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.failures_recovered >= 1
        assert run.progress == run.benchmark.steps

    def test_local_checkpoints_die_with_their_host(self):
        """The paper's local-disk IBP configuration is *not* fault
        tolerant: if the crashed host held checkpoint partitions, the
        restore cannot read them.  Stable storage is the fix — this
        test pins down why it exists."""
        from repro.ibp import DepotError
        sim, grid, run = build(n=2500, checkpoint_every=2,
                               stable_storage=False)
        ScheduledFailure(host=grid.clusters["utk"][0], at=30.0).install(sim)
        finished = run.start()
        with pytest.raises((DepotError, KeyError)):
            sim.run(stop_event=finished)


class TestBoundedRetry:
    def test_gives_up_when_resources_never_return(self):
        """Every candidate host dies for good: the manager retries with
        backoff a bounded number of times, then surfaces a clear error
        instead of spinning forever."""
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="utk.n3")
        run, monitor, rescheduler = env.managed_qr(
            QrBenchmark(n=2500, nb=200),
            initial_hosts=grid.clusters["utk"].host_names()[:3],
            rescheduler_mode="force-stay",
            checkpoint_every=2, stable_storage=True,
            max_restart_attempts=2, retry_backoff_seconds=1.0)
        for host in grid.all_hosts():
            if host.name != "utk.n3":
                ScheduledFailure(host=host, at=30.0).install(sim)
        finished = run.start()
        with pytest.raises(RuntimeError,
                           match="no candidate resources|giving up"):
            sim.run(until=10000.0, stop_event=finished)
        assert run.retry_waits >= 1

    def test_backoff_waits_out_a_transient_outage(self):
        """Same wipeout, but one cluster recovers inside the backoff
        budget: the run must complete on the recovered cluster."""
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="utk.n3")
        run, monitor, rescheduler = env.managed_qr(
            QrBenchmark(n=2500, nb=200),
            initial_hosts=grid.clusters["utk"].host_names()[:3],
            rescheduler_mode="force-stay",
            checkpoint_every=2, stable_storage=True,
            max_restart_attempts=8, retry_backoff_seconds=5.0)
        for name in grid.clusters["utk"].host_names()[:3]:
            ScheduledFailure(host=env.gis.host(name), at=30.0).install(sim)
        for name in grid.clusters["uiuc"].host_names():
            ScheduledFailure(host=env.gis.host(name), at=30.0,
                             recover_at=300.0).install(sim)
        finished = run.start()
        sim.run(until=20000.0, stop_event=finished)
        assert finished.triggered and finished.ok
        assert run.failures_recovered >= 1
        assert run.retry_waits >= 1
        assert run.progress == run.benchmark.steps

    def test_retry_parameters_validated(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid)
        with pytest.raises(ValueError):
            env.managed_qr(QrBenchmark(n=1000),
                           initial_hosts=["utk.n0", "utk.n1"],
                           max_restart_attempts=0)
        with pytest.raises(ValueError):
            env.managed_qr(QrBenchmark(n=1000),
                           initial_hosts=["utk.n0", "utk.n1"],
                           retry_backoff_seconds=0.0)
