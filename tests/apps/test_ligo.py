"""Tests for the LIGO pulsar-search workflow."""

import pytest

from repro.sim import Simulator
from repro.microgrid import grads_macrogrid
from repro.gis import GridInformationService
from repro.nws import NetworkWeatherService
from repro.apps import LIGO_STAGES, LigoParameters, ligo_pulsar_search_workflow
from repro.scheduler import GradsWorkflowScheduler, WorkflowExecutor


class TestLigoParameters:
    def test_defaults_plausible(self):
        params = LigoParameters()
        assert params.n_sfts == 20  # 10 h of 30-minute SFTs
        assert params.sft_samples == int(1800 * 16384)

    def test_search_dominates(self):
        params = LigoParameters()
        total = (params.frame_extract_mflop() + params.make_sfts_mflop()
                 + params.pulsar_search_mflop() + params.sift_mflop()
                 + params.coincidence_mflop())
        assert params.pulsar_search_mflop() / total > 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            LigoParameters(observation_hours=0.0)
        with pytest.raises(ValueError):
            LigoParameters(n_sky_points=0)
        with pytest.raises(ValueError):
            LigoParameters(band_bins=0)

    def test_candidates_scale_with_search_volume(self):
        small = LigoParameters(n_sky_points=10)
        big = LigoParameters(n_sky_points=1000)
        assert big.expected_candidates() > small.expected_candidates()


class TestLigoWorkflow:
    def test_stage_order_linear(self):
        wf = ligo_pulsar_search_workflow(LigoParameters())
        assert [c.name for c in wf.components()] == list(LIGO_STAGES)
        assert len(wf.levels()) == len(LIGO_STAGES)

    def test_parallel_stage_expansion(self):
        wf = ligo_pulsar_search_workflow(LigoParameters(),
                                         search_tasks=40, sft_tasks=8)
        assert len(wf.tasks()) == 1 + 8 + 40 + 1 + 1

    def test_task_count_validation(self):
        with pytest.raises(ValueError):
            ligo_pulsar_search_workflow(LigoParameters(), search_tasks=0)

    def test_schedules_and_executes_on_macrogrid(self):
        """End to end on the full MacroGrid: schedule with the GrADS
        scheduler, execute, verify the estimate tracks the measurement."""
        sim = Simulator()
        grid = grads_macrogrid(sim)
        gis = GridInformationService()
        gis.register_grid(grid)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        params = LigoParameters(n_sky_points=100, band_bins=50_000)
        wf = ligo_pulsar_search_workflow(params, search_tasks=24)
        result = GradsWorkflowScheduler(gis, nws).schedule(
            wf, data_sources={"frame_extract": ["ucsd.n0"]})
        assert result.best.makespan > 0
        trace_event = WorkflowExecutor(sim, grid.topology, gis).execute(
            wf, result.best)
        sim.run(stop_event=trace_event)
        trace = trace_event.value
        # The schedule estimate ignores transfer contention (as real
        # GrADS estimates did), so with a multi-GB SFT database fanned
        # out over a shared WAN it is a lower bound, not a prediction.
        assert trace.makespan >= result.best.makespan * 0.9
        assert trace.makespan <= result.best.makespan * 10
        # the fan-out stage spreads across many machines
        search_hosts = {trace.tasks[f"pulsar_search[{i}]"].resource
                        for i in range(24)}
        assert len(search_hosts) >= 10

    def test_data_aware_entry_placement(self):
        """With the frames pinned at UCSD, the entry stage should land
        near the data rather than on a random fast node."""
        sim = Simulator()
        grid = grads_macrogrid(sim)
        gis = GridInformationService()
        gis.register_grid(grid)
        nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
        params = LigoParameters(n_sky_points=50, band_bins=20_000,
                                observation_hours=20.0)
        wf = ligo_pulsar_search_workflow(params, search_tasks=8)
        result = GradsWorkflowScheduler(gis, nws).schedule(
            wf, data_sources={"frame_extract": ["ucsd.n0"]})
        entry_host = result.best.placements["frame_extract[0]"].resource
        assert entry_host.startswith("ucsd.")
