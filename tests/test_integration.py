"""System-level integration tests: the whole stack on the MacroGrid.

These cross-module scenarios are the closest thing to the paper's live
SC2003 demonstrations: multiple managed applications, stochastic
background load, network sensors probing real links, contract monitors
feeding one rescheduler, and vgrid-bound workflow executions — all in
one simulation.
"""

import pytest

from repro.sim import AllOf, RngRegistry, Simulator
from repro.microgrid import (
    RandomLoadGenerator,
    ScheduledLoad,
    fig3_testbed,
    grads_macrogrid,
)
from repro.appmanager import GradsEnvironment
from repro.apps import (
    EmanParameters,
    QrBenchmark,
    eman_refinement_workflow,
)
from repro.contracts import ContractViewer
from repro.gis import Tightness, VgridSpec, find_and_bind
from repro.scheduler import GradsWorkflowScheduler, WorkflowExecutor


class TestMacroGridScenarios:
    def test_two_managed_qrs_share_one_rescheduler(self):
        """Two QR apps under one rescheduler; the loaded one migrates,
        the other is left alone."""
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="utk.n0")
        run_a, mon_a, resched = env.managed_qr(
            QrBenchmark(n=5000, nb=200),
            initial_hosts=grid.clusters["utk"].host_names(),
            rescheduler_mode="default",
            worst_case_migration_seconds=None)
        run_b, mon_b, resched_b = env.managed_qr(
            QrBenchmark(n=3000, nb=200),
            initial_hosts=grid.clusters["uiuc"].host_names()[:4],
            rescheduler_mode="default",
            worst_case_migration_seconds=None)
        # share the first rescheduler for both monitors
        resched.manage(run_b)
        mon_b.rescheduler = resched.request_handler(run_b)
        ScheduledLoad(host=grid.clusters["utk"][0], at=30.0,
                      nprocs=8).install(sim)
        both = AllOf(sim, [run_a.start(), run_b.start()])
        sim.run(stop_event=both)
        assert run_a.progress == run_a.benchmark.steps
        assert run_b.progress == run_b.benchmark.steps
        assert run_a.migrations >= 1  # loaded cluster abandoned
        assert run_b.migrations == 0  # quiet app untouched

    def test_contract_viewer_captures_live_run(self):
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="utk.n0")
        run, monitor, resched = env.managed_qr(
            QrBenchmark(n=4000, nb=200),
            initial_hosts=grid.clusters["utk"].host_names(),
            rescheduler_mode="force-migrate")
        viewer = ContractViewer(monitor)
        ScheduledLoad(host=grid.clusters["utk"][0], at=60.0,
                      nprocs=8).install(sim)
        finished = run.start()
        sim.run(stop_event=finished)
        text = viewer.render()
        assert viewer.n_samples > 10
        assert "migration requested" in text

    def test_qr_with_live_network_sensors(self):
        """Full NWS deployment (CPU + cross-site bandwidth probes) does
        not perturb a managed run's correctness."""
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="utk.n0",
                               deploy_network_sensors=True)
        run, monitor, resched = env.managed_qr(
            QrBenchmark(n=3000, nb=200),
            initial_hosts=grid.clusters["utk"].host_names())
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.progress == run.benchmark.steps
        # the probes produced bandwidth history usable for forecasts
        bw = env.nws.bandwidth_forecast("utk.n0", "uiuc.n0")
        assert bw == pytest.approx(5e6, rel=0.5)

    def test_workflow_on_stochastically_loaded_macrogrid(self):
        """EMAN over the full MacroGrid with random background load:
        scheduling consumes NWS forecasts shaped by the load, and the
        execution still completes with a sane makespan."""
        sim = Simulator()
        grid = grads_macrogrid(sim)
        env = GradsEnvironment(sim, grid, submission_host="ucsd.n0")
        rng = RngRegistry(seed=99).stream("load")
        RandomLoadGenerator(grid.clusters["uh"].hosts, rng,
                            mean_idle=60.0, mean_busy=60.0).install(sim)
        sim.run(until=120.0)  # let sensors observe the load pattern
        wf = eman_refinement_workflow(EmanParameters(n_particles=5000),
                                      classesbymra_tasks=24)
        result = GradsWorkflowScheduler(env.gis, env.nws).schedule(wf)
        trace_event = WorkflowExecutor(sim, grid.topology, env.gis).execute(
            wf, result.best)
        sim.run(stop_event=trace_event)
        trace = trace_event.value
        assert len(trace.tasks) == len(wf.tasks())
        assert trace.makespan > 0

    def test_vgrid_bound_qr_run(self):
        """VGrADS-style flow: find-and-bind a tight vgrid, run the
        managed QR inside it."""
        sim = Simulator()
        grid = fig3_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="utk.n0")
        vgrid = find_and_bind(
            VgridSpec(n_nodes=4, tightness=Tightness.TIGHT,
                      min_mflops=300.0),
            env.gis, env.nws)
        run, monitor, resched = env.managed_qr(
            QrBenchmark(n=2000, nb=200),
            initial_hosts=vgrid.host_names(),
            rescheduler_mode="force-stay")
        finished = run.start()
        sim.run(stop_event=finished)
        assert run.progress == run.benchmark.steps
        assert set(run.current_hosts()) == set(vgrid.host_names())

    def test_binder_launcher_roundtrip_on_macrogrid(self):
        """Bind and launch a COP across three sites in one call."""
        from repro.apps import qr_cop
        sim = Simulator()
        grid = grads_macrogrid(sim)
        env = GradsEnvironment(sim, grid, submission_host="ucsd.n0")
        cop = qr_cop(QrBenchmark(n=1000), n_procs=3)
        hosts = ["ucsd.n1", "utk-a.n0", "uh.n0"]
        bound = env.binder.bind(cop, hosts)
        sim.run(stop_event=bound)
        assert set(bound.value.per_host_seconds) == set(hosts)

        done_marks = []

        def body(ctx):
            yield ctx.compute(50.0)
            done_marks.append(ctx.rank)

        launch = env.launcher.launch(cop, hosts, body)
        sim.run(stop_event=launch)
        sim.run(stop_event=launch.value.finished)
        assert sorted(done_marks) == [0, 1, 2]


class TestManagedWorkflowRun:
    def test_run_workflow_schedules_binds_and_executes(self):
        """The §3.3 pipeline in one call: schedule -> bind -> execute."""
        from repro.microgrid import heterogeneous_testbed
        sim = Simulator()
        grid = heterogeneous_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="ia32.n0")
        wf = eman_refinement_workflow(EmanParameters(n_particles=4000),
                                      classesbymra_tasks=12)
        run_event = env.run_workflow(wf, required_packages=("eman",))
        sim.run(stop_event=run_event)
        run = run_event.value
        assert run.bind.seconds > 0
        assert set(run.bind.per_host_seconds) == \
            {p.resource for p in run.scheduling.best.placements.values()}
        assert run.measured_makespan > 0
        assert len(run.trace.tasks) == len(wf.tasks())
        # heterogeneity carried through the bind
        assert set(run.bind.isas.values()) == {"ia32", "ia64"}

    def test_run_workflow_missing_software_fails(self):
        from repro.microgrid import heterogeneous_testbed
        from repro.binder import BinderError
        sim = Simulator()
        grid = heterogeneous_testbed(sim)
        env = GradsEnvironment(sim, grid, submission_host="ia32.n0")
        wf = eman_refinement_workflow(EmanParameters(n_particles=2000))
        run_event = env.run_workflow(wf, required_packages=("not-there",))
        with pytest.raises(BinderError):
            sim.run(stop_event=run_event)
