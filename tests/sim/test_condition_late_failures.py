"""Late child failures must be absorbed by a resolved condition.

An ``AllOf`` fails as soon as its first child fails.  Children that
fail *afterwards* used to slip past the condition undefused, and the
kernel raised their exception out of ``sim.run()`` — two hosts dying
under one MPI job aborted the entire simulation instead of failing the
job's completion event once.  Found by the soak harness
(``unhandled-error: HostFailure`` on a fault + swap scenario).
"""

from repro.sim import AllOf, AnyOf, Simulator


class TestLateChildFailures:
    def test_second_failed_child_of_allof_is_defused(self):
        sim = Simulator()
        children = [sim.event(f"rank{i}") for i in range(3)]
        done = AllOf(sim, children, name="job")
        caught = []
        done.add_callback(lambda ev: (setattr(ev, "defused", True),
                                      caught.append(type(ev.value))))
        sim.call_at(1.0, lambda: children[0].fail(RuntimeError("first")))
        sim.call_at(2.0, lambda: children[1].fail(RuntimeError("second")))
        sim.run()  # pre-fix: the second failure re-raised here
        assert caught == [RuntimeError]
        assert children[1].defused

    def test_same_instant_double_failure_is_absorbed(self):
        sim = Simulator()
        children = [sim.event(f"rank{i}") for i in range(2)]
        done = AllOf(sim, children)
        done.add_callback(lambda ev: setattr(ev, "defused", True))

        def both():
            children[0].fail(RuntimeError("a"))
            children[1].fail(RuntimeError("b"))

        sim.call_at(1.0, both)
        sim.run()
        assert not done.ok
        assert children[0].defused and children[1].defused

    def test_anyof_absorbs_failure_after_success(self):
        sim = Simulator()
        winner = sim.event("fast")
        loser = sim.event("slow")
        race = AnyOf(sim, [winner, loser])
        sim.call_at(1.0, winner.succeed)
        sim.call_at(2.0, lambda: loser.fail(RuntimeError("late")))
        sim.run()  # pre-fix: the late failure re-raised here
        assert race.ok
        assert loser.defused

    def test_first_failure_still_fails_the_condition(self):
        sim = Simulator()
        children = [sim.event(), sim.event()]
        done = AllOf(sim, children)
        sim.call_at(1.0, lambda: children[0].fail(ValueError("boom")))
        sim.run()
        assert done.triggered and not done.ok
        assert isinstance(done.value, ValueError)
        assert children[0].defused
