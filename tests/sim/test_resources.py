"""Tests for Store and Semaphore primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Semaphore, SimulationError, Simulator, Store


class TestStore:
    def test_put_then_get_fifo(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)
                yield sim.timeout(1.0)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        times = []

        def consumer():
            item = yield store.get()
            times.append((sim.now, item))

        sim.process(consumer())
        sim.call_after(5.0, lambda: store.put("late"))
        sim.run()
        assert times == [(5.0, "late")]

    def test_capacity_blocks_producer(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        trace = []

        def producer():
            yield store.put("a")
            trace.append(("a-in", sim.now))
            yield store.put("b")
            trace.append(("b-in", sim.now))

        def consumer():
            yield sim.timeout(10.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert trace[0] == ("a-in", 0.0)
        assert trace[1][1] == pytest.approx(10.0)  # waited for the get

    def test_multiple_waiting_getters_fifo(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.call_after(1.0, lambda: store.put("x"))
        sim.call_after(2.0, lambda: store.put("y"))
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_len(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestSemaphore:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        sem = Semaphore(sim, count=2)
        order = []

        def worker(tag, hold):
            yield sem.acquire()
            order.append((tag, "in", sim.now))
            yield sim.timeout(hold)
            sem.release()
            order.append((tag, "out", sim.now))

        sim.process(worker("a", 5.0))
        sim.process(worker("b", 5.0))
        sim.process(worker("c", 1.0))
        sim.run()
        # a and b enter immediately; c waits for the first release
        entries = [(tag, t) for tag, what, t in order if what == "in"]
        assert entries[0][1] == 0.0 and entries[1][1] == 0.0
        assert entries[2] == ("c", 5.0)

    def test_over_release_rejected(self):
        sim = Simulator()
        sem = Semaphore(sim, count=1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_count_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Semaphore(sim, count=0)

    def test_counters(self):
        sim = Simulator()
        sem = Semaphore(sim, count=1)
        sem.acquire()
        assert sem.available == 0
        sem.acquire()  # queues
        assert sem.n_waiting == 1
        sem.release()  # hands to waiter
        assert sem.n_waiting == 0
        assert sem.available == 0


@settings(max_examples=25, deadline=None)
@given(items=st.lists(st.integers(), min_size=0, max_size=30),
       capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=5)))
def test_property_store_preserves_order_and_count(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    got = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            got.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == items
