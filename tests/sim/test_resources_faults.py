"""Store and Semaphore under process death and wait cancellation.

A process blocked in ``get``/``put``/``acquire`` can be killed while
queued (its wait event stays pending with nobody listening), or its
wait event can be triggered another way by racing user code.  Hand-off
must skip such entries: a unit or item granted to the dead is silently
lost, which is exactly what the soak harness's conservation invariants
caught before the fix.
"""

import pytest

from repro.sim import Semaphore, SimulationError, Simulator, Store
from repro.sim.events import EventAlreadyTriggered  # noqa: F401  (doc ref)


class TestSemaphoreDeadWaiters:
    def test_release_with_only_dead_waiter_returns_unit_to_pool(self):
        sim = Simulator()
        sem = Semaphore(sim, count=1)
        granted = []

        def holder():
            yield sem.acquire()
            yield sim.timeout(10.0)
            sem.release()

        def waiter():
            yield sem.acquire()
            granted.append(sim.now)
            sem.release()

        sim.process(holder())
        corpse = sim.process(waiter())
        sim.call_at(5.0, corpse.kill)
        sim.run()
        assert granted == []
        # Before the fix the release handed the unit to the corpse's
        # orphaned wait event and it was lost forever.
        assert sem.available == 1

    def test_release_passes_over_corpse_to_live_waiter(self):
        sim = Simulator()
        sem = Semaphore(sim, count=1)
        granted = []

        def holder():
            yield sem.acquire()
            yield sim.timeout(10.0)
            sem.release()

        def waiter(tag):
            yield sem.acquire()
            granted.append((tag, sim.now))
            sem.release()

        sim.process(holder())
        corpse = sim.process(waiter("dead"))
        sim.process(waiter("live"))
        sim.call_at(5.0, corpse.kill)
        sim.run()
        assert granted == [("live", 10.0)]
        assert sem.available == 1

    def test_over_release_still_rejected_after_dead_waiter_skip(self):
        sim = Simulator()
        sem = Semaphore(sim, count=1)

        def holder():
            yield sem.acquire()
            yield sim.timeout(10.0)
            sem.release()

        def waiter():
            yield sem.acquire()

        sim.process(holder())
        corpse = sim.process(waiter())
        sim.call_at(5.0, corpse.kill)
        sim.run()
        assert sem.available == 1
        with pytest.raises(SimulationError):
            sem.release()

    def test_release_skips_waiter_event_triggered_by_racing_code(self):
        # A timeout-style caller triggered the queued wait event itself
        # (e.g. through an AnyOf race).  Before the fix release() called
        # succeed() on it and raised EventAlreadyTriggered mid-callback.
        sim = Simulator()
        sem = Semaphore(sim, count=1)
        sem.acquire()  # take the only unit
        queued = sem.acquire()
        assert sem.n_waiting == 1
        queued.succeed()  # racing cancellation path
        sem.release()  # must skip the triggered entry, not raise
        sim.run()
        assert sem.available == 1
        assert sem.n_waiting == 0


class TestSemaphoreCancelWait:
    def test_cancel_removes_queued_wait(self):
        sim = Simulator()
        sem = Semaphore(sim, count=1)
        sem.acquire()
        queued = sem.acquire()
        assert sem.cancel_wait(queued) is True
        assert sem.n_waiting == 0
        sem.release()
        assert sem.available == 1

    def test_cancel_after_grant_reports_false(self):
        sim = Simulator()
        sem = Semaphore(sim, count=1)
        granted = sem.acquire()  # immediate grant, never queued
        assert granted.triggered
        assert sem.cancel_wait(granted) is False
        sem.release()
        assert sem.available == 1


class TestStoreDeadProcesses:
    def test_put_keeps_item_when_getter_died(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        corpse = sim.process(consumer("dead"))
        sim.call_at(5.0, corpse.kill)
        sim.call_at(10.0, lambda: store.put("x"))
        sim.run()
        # Before the fix the item was handed to the dead getter's event
        # and vanished; it must stay in the store for a live consumer.
        assert got == []
        assert len(store) == 1
        sim.process(consumer("live"))
        sim.run()
        assert got == [("live", "x")]
        assert len(store) == 0

    def test_killed_blocked_putter_never_deposits(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        got = []

        def producer():
            yield store.put("a")
            yield store.put("b")  # blocks: store is full

        def consumer():
            yield sim.timeout(10.0)
            item = yield store.get()
            got.append(item)

        corpse = sim.process(producer())
        sim.process(consumer())
        sim.call_at(5.0, corpse.kill)
        sim.run()
        # "b" was never accepted; the producer died holding it.
        assert got == ["a"]
        assert len(store) == 0
        assert store.n_waiting_put == 0

    def test_capacity_pressure_with_killed_producers_and_consumers(self):
        """Conservation under churn: every item a live producer got
        accepted is either consumed by a live consumer or still in the
        store at the end."""
        sim = Simulator()
        store = Store(sim, capacity=2)
        ledger = {"accepted": 0, "consumed": 0}

        def producer(start, n_items):
            yield sim.timeout(start)
            for k in range(n_items):
                yield store.put(("item", start, k))
                ledger["accepted"] += 1
                yield sim.timeout(1.0)

        def consumer(start, n_items):
            yield sim.timeout(start)
            for _ in range(n_items):
                yield store.get()
                ledger["consumed"] += 1
                yield sim.timeout(3.0)

        sim.process(producer(0.0, 10))
        doomed_producer = sim.process(producer(0.5, 10))
        sim.process(consumer(1.0, 6))
        doomed_consumer = sim.process(consumer(1.5, 10))
        sim.call_at(4.25, doomed_producer.kill)
        sim.call_at(6.25, doomed_consumer.kill)
        sim.run()
        assert ledger["accepted"] == ledger["consumed"] + len(store)

    def test_cancel_get_and_cancel_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        waiting_get = store.get()
        assert store.cancel_get(waiting_get) is True
        assert store.n_waiting_get == 0
        store.put("a")
        waiting_put = store.put("b")
        assert store.cancel_put(waiting_put) is True
        assert store.n_waiting_put == 0
        done = store.get()
        assert done.value == "a"
        assert len(store) == 0  # the cancelled "b" was never deposited

    def test_cancel_get_after_delivery_reports_false(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        delivered = store.get()
        assert delivered.triggered
        assert store.cancel_get(delivered) is False
        assert delivered.value == "x"
