"""Tests for the substrate perf counters (repro.sim.stats)."""

from repro.sim import KernelStats, Simulator, format_stats


def test_counters_start_at_zero():
    stats = KernelStats()
    assert stats.events_processed == 0
    assert stats.reallocations == 0
    assert stats.wakeups_cancelled == 0
    assert stats.route_cache_hits == 0
    assert stats.route_cache_misses == 0


def test_hit_rate_idle_is_one():
    assert KernelStats().route_cache_hit_rate == 1.0


def test_hit_rate_fraction():
    stats = KernelStats()
    stats.route_cache_hits = 3
    stats.route_cache_misses = 1
    assert stats.route_cache_hit_rate == 0.75


def test_reset_zeroes_everything():
    stats = KernelStats()
    stats.events_processed = 10
    stats.reallocations = 4
    stats.reset()
    assert stats.events_processed == 0
    assert stats.reallocations == 0


def test_snapshot_is_plain_dict():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    snap = sim.stats.snapshot()
    assert snap["events_processed"] == 1
    assert snap["route_cache_hit_rate"] == 1.0


def test_format_stats_includes_rate_when_timed():
    stats = KernelStats()
    stats.events_processed = 1000
    text = format_stats(stats, elapsed_wall=0.5)
    assert "events/sec" in text
    assert "2,000" in text
    assert "events/sec" not in format_stats(stats)


def test_scheduler_counters_in_snapshot_and_reset():
    stats = KernelStats()
    assert stats.sched_rounds == 0
    stats.sched_rounds = 5
    stats.sched_evaluations = 100
    stats.sched_memo_hits = 7
    snap = stats.snapshot()
    assert snap["sched_rounds"] == 5
    assert snap["sched_evaluations"] == 100
    assert snap["sched_memo_hits"] == 7
    stats.reset()
    assert stats.sched_rounds == 0
    assert stats.sched_evaluations == 0
    assert stats.sched_memo_hits == 0


def test_format_stats_includes_scheduler_counters():
    stats = KernelStats()
    stats.sched_evaluations = 1234
    text = format_stats(stats)
    assert "candidate evals" in text
    assert "1234" in text
    assert "forecast memo hits" in text
    assert "scheduler rounds" in text


def test_every_simulator_owns_independent_stats():
    a, b = Simulator(), Simulator()
    a.timeout(1.0)
    a.run()
    assert a.stats.events_processed == 1
    assert b.stats.events_processed == 0
