"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=42.0)
    assert sim.now == 42.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_caps_clock():
    sim = Simulator()
    sim.timeout(100.0)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_beyond_agenda_advances_clock():
    sim = Simulator()
    sim.timeout(3.0)
    sim.run(until=50.0)
    assert sim.now == 50.0


def test_events_process_in_time_order():
    sim = Simulator()
    order = []
    for delay in (7.0, 1.0, 4.0):
        sim.call_after(delay, lambda d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 4.0, 7.0]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.call_after(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def proc():
        value = yield ev
        got.append(value)

    sim.process(proc())
    sim.call_after(2.0, lambda: ev.succeed("payload"))
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError("nope"))


def test_event_value_unavailable_before_trigger():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_sleeps_and_resumes():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield sim.timeout(3.0)
        trace.append(sim.now)
        yield sim.timeout(4.0)
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 3.0, 7.0]


def test_process_return_value_is_event_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "done"

    results = []

    def parent():
        value = yield sim.process(child())
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == ["done"]


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    caught = []

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_raises_from_run():
    sim = Simulator()

    def broken():
        yield sim.timeout(1.0)
        raise RuntimeError("unobserved crash")

    sim.process(broken())
    with pytest.raises(RuntimeError, match="unobserved crash"):
        sim.run()


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    with pytest.raises(SimulationError):
        sim.process(bad())
        sim.run()


def test_cross_simulator_event_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.timeout(1.0)

    def proc():
        yield foreign

    with pytest.raises(SimulationError):
        sim_a.process(proc())
        sim_a.run()


def test_allof_waits_for_every_child():
    sim = Simulator()
    done_at = []

    def proc():
        t1 = sim.timeout(2.0, value="a")
        t2 = sim.timeout(5.0, value="b")
        values = yield AllOf(sim, [t1, t2])
        done_at.append(sim.now)
        assert sorted(values.values()) == ["a", "b"]

    sim.process(proc())
    sim.run()
    assert done_at == [5.0]


def test_anyof_fires_on_first_child():
    sim = Simulator()
    done_at = []

    def proc():
        t1 = sim.timeout(2.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        values = yield AnyOf(sim, [t1, t2])
        done_at.append(sim.now)
        assert list(values.values()) == ["fast"]

    sim.process(proc())
    sim.run()
    assert done_at == [2.0]


def test_empty_allof_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered
    assert cond.value == {}


def test_allof_fails_if_child_fails():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise KeyError("child")

    caught = []

    def parent():
        try:
            yield AllOf(sim, [sim.process(failing()), sim.timeout(9.0)])
        except KeyError:
            caught.append(sim.now)

    sim.process(parent())
    sim.run()
    assert caught == [1.0]


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def worker():
        try:
            yield sim.timeout(100.0)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    proc = sim.process(worker())
    sim.call_after(10.0, lambda: proc.interrupt("load spike"))
    sim.run()
    assert log == [("interrupted", 10.0, "load spike")]


def test_interrupting_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_detaches_from_event():
    """After an interrupt, the original event must not resume the process."""
    sim = Simulator()
    resumes = []

    def worker():
        try:
            yield sim.timeout(5.0)
            resumes.append("timeout")
        except Interrupt:
            yield sim.timeout(100.0)
            resumes.append("after-interrupt")

    proc = sim.process(worker())
    sim.call_after(1.0, lambda: proc.interrupt())
    sim.run()
    assert resumes == ["after-interrupt"]
    assert sim.now == 101.0


def test_stop_event_ends_run_with_value():
    sim = Simulator()
    stop = sim.event()
    sim.call_after(3.0, lambda: stop.succeed("halt"))
    sim.timeout(1000.0)
    result = sim.run(stop_event=stop)
    assert result == "halt"
    assert sim.now == 3.0


def test_stop_event_detached_when_until_exits_first():
    """Regression: run(until=...) must remove _stop_callback on exit.

    A lingering callback made a later trigger of the old stop event
    raise StopSimulation into a run() that passed no stop_event,
    crashing on its `assert stop_event is not None`.
    """
    sim = Simulator()
    stop = sim.event()
    sim.timeout(100.0)
    sim.run(until=1.0, stop_event=stop)  # exits via the until path
    stop.succeed("late")
    sim.timeout(5.0)
    sim.run()  # must not raise; drains the leftover t=100 timeout too
    assert sim.now == 100.0


def test_stop_event_detached_when_agenda_drains():
    sim = Simulator()
    stop = sim.event()
    sim.timeout(1.0)
    sim.run(stop_event=stop)  # exits because the agenda drained
    stop.succeed("late")
    sim.timeout(2.0)
    sim.run()  # must not raise
    assert stop.value == "late"


def test_stop_event_reusable_across_runs_until():
    """The same stop event can arm consecutive bounded runs."""
    sim = Simulator()
    stop = sim.event()
    sim.timeout(100.0)
    sim.run(until=1.0, stop_event=stop)
    sim.run(until=2.0, stop_event=stop)
    sim.call_after(0.5, lambda: stop.succeed("now"))
    assert sim.run(stop_event=stop) == "now"
    assert sim.now == 2.5


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.timeout(float(i))
    sim.run()
    assert sim.stats.events_processed == 5


def test_same_time_batch_preserves_until_semantics():
    """Events exactly at `until` still run; later ones do not."""
    sim = Simulator()
    hits = []
    for _ in range(3):
        sim.call_after(1.0, lambda: hits.append(sim.now))
    sim.call_after(1.5, lambda: hits.append(sim.now))
    sim.run(until=1.0)
    assert hits == [1.0, 1.0, 1.0]
    assert sim.now == 1.0


def test_call_at_schedules_absolute_time():
    sim = Simulator()
    hits = []
    sim.call_at(12.5, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [12.5]


def test_call_at_in_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_add_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.timeout(1.0, value="v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_active_process_tracking():
    sim = Simulator()
    observed = []

    def proc():
        observed.append(sim.active_process)
        yield sim.timeout(1.0)

    p = sim.process(proc())
    sim.run()
    assert observed == [p]
    assert sim.active_process is None


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf():
        yield sim.timeout(1.0)
        return 1

    def mid():
        v = yield sim.process(leaf())
        yield sim.timeout(1.0)
        return v + 1

    def root():
        v = yield sim.process(mid())
        return v + 1

    proc = sim.process(root())
    sim.run()
    assert proc.value == 3
    assert sim.now == 2.0


def test_many_processes_scale():
    sim = Simulator()
    counter = []

    def proc(i):
        yield sim.timeout(float(i % 17))
        counter.append(i)

    for i in range(500):
        sim.process(proc(i))
    sim.run()
    assert len(counter) == 500
