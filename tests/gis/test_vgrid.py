"""Tests for the vgrid (VGrADS) abstraction."""

import pytest

from repro.sim import Simulator
from repro.microgrid import (
    fig3_testbed,
    grads_macrogrid,
    heterogeneous_testbed,
)
from repro.nws import NetworkWeatherService
from repro.gis import (
    GridInformationService,
    Tightness,
    VgridError,
    VgridSpec,
    find_and_bind,
)
from repro.scheduler import GradsWorkflowScheduler


def env(grid_fn=grads_macrogrid):
    sim = Simulator()
    grid = grid_fn(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, grid, gis, nws


class TestVgridSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            VgridSpec(n_nodes=0)
        with pytest.raises(ValueError):
            VgridSpec(n_nodes=1, min_mflops=-1.0)

    def test_admits_filters(self):
        sim, grid, gis, nws = env(heterogeneous_testbed)
        spec = VgridSpec(n_nodes=2, isa="ia64")
        records = gis.resources()
        admitted = [r for r in records if spec.admits(r)]
        assert admitted and all(r.isa == "ia64" for r in admitted)


class TestFindAndBind:
    def test_tight_binds_single_cluster(self):
        sim, grid, gis, nws = env()
        vgrid = find_and_bind(VgridSpec(n_nodes=10,
                                        tightness=Tightness.TIGHT),
                              gis, nws)
        assert len(vgrid) == 10
        assert len(vgrid.clusters()) == 1

    def test_site_binds_single_site_multiple_clusters(self):
        sim, grid, gis, nws = env()
        vgrid = find_and_bind(VgridSpec(n_nodes=20,
                                        tightness=Tightness.SITE),
                              gis, nws)
        assert len(vgrid) == 20
        assert len(vgrid.sites()) == 1
        # UTK/UIUC sites need both of their clusters for 20 nodes
        assert len(vgrid.clusters()) >= 1

    def test_loose_spans_grid(self):
        sim, grid, gis, nws = env()
        vgrid = find_and_bind(VgridSpec(n_nodes=60), gis, nws)
        assert len(vgrid) == 60
        assert len(vgrid.sites()) > 1

    def test_prefers_fast_resources(self):
        sim, grid, gis, nws = env()
        vgrid = find_and_bind(VgridSpec(n_nodes=5), gis, nws)
        speeds = [r.mflops for r in vgrid.resources]
        all_speeds = sorted((r.mflops for r in gis.resources()),
                            reverse=True)
        assert sorted(speeds, reverse=True) == all_speeds[:5]

    def test_isa_constraint(self):
        sim, grid, gis, nws = env(heterogeneous_testbed)
        vgrid = find_and_bind(VgridSpec(n_nodes=4, isa="ia64"), gis, nws)
        assert all(r.isa == "ia64" for r in vgrid.resources)

    def test_min_mflops_constraint(self):
        sim, grid, gis, nws = env(fig3_testbed)
        vgrid = find_and_bind(VgridSpec(n_nodes=4, min_mflops=300.0),
                              gis, nws)
        assert all(r.mflops >= 300.0 for r in vgrid.resources)
        assert all(r.cluster == "utk" for r in vgrid.resources)

    def test_unsatisfiable_raises(self):
        sim, grid, gis, nws = env(fig3_testbed)
        with pytest.raises(VgridError):
            find_and_bind(VgridSpec(n_nodes=100), gis, nws)
        with pytest.raises(VgridError):
            find_and_bind(VgridSpec(n_nodes=2, isa="sparc"), gis, nws)
        with pytest.raises(VgridError):
            find_and_bind(VgridSpec(n_nodes=9,
                                    tightness=Tightness.TIGHT),
                          gis, nws)  # no cluster has 9 nodes

    def test_exclusion(self):
        sim, grid, gis, nws = env(fig3_testbed)
        exclude = [f"utk.n{i}" for i in range(4)]
        vgrid = find_and_bind(VgridSpec(n_nodes=4), gis, nws,
                              exclude=exclude)
        assert all(name.startswith("uiuc.") for name in vgrid.host_names())

    def test_load_aware_binding(self):
        """With NWS forecasts, a loaded fast cluster loses to an idle
        slower one."""
        sim, grid, gis, nws = env(fig3_testbed)
        for host in grid.clusters["utk"]:
            host.add_background_load(8)
        vgrid = find_and_bind(VgridSpec(n_nodes=4,
                                        tightness=Tightness.TIGHT),
                              gis, nws)
        assert all(name.startswith("uiuc.")
                   for name in vgrid.host_names())

    def test_vgrid_feeds_workflow_scheduler(self):
        """The VGrADS flow: bind a vgrid, then schedule against only
        its resources."""
        from repro.apps import EmanParameters, eman_refinement_workflow
        sim, grid, gis, nws = env(heterogeneous_testbed)
        vgrid = find_and_bind(VgridSpec(n_nodes=8), gis, nws)
        wf = eman_refinement_workflow(EmanParameters(n_particles=2000))
        result = GradsWorkflowScheduler(gis, nws).schedule(
            wf, resources=vgrid.resources)
        used = {p.resource for p in result.best.placements.values()}
        assert used <= set(vgrid.host_names())

    def test_aggregate_accounting(self):
        sim, grid, gis, nws = env(fig3_testbed)
        vgrid = find_and_bind(VgridSpec(n_nodes=4,
                                        tightness=Tightness.TIGHT),
                              gis, nws)
        assert vgrid.aggregate_mflops() == pytest.approx(4 * 373.2, rel=1e-3)
