"""Directory churn: hosts leaving and joining while work is in flight.

Pins the stale-host guarantee of DESIGN.md §9.2: a host that is
unregistered from the GIS (or crashes) after jobs were admitted is
dropped from candidate sets at the next planning round, so no new
placement ever lands on it.
"""

from repro.gis.directory import GISError, GridInformationService
from repro.metasched import JobSpec, MetaScheduler
from repro.metasched.admission import AdmissionController
from repro.microgrid.cluster import Cluster
from repro.microgrid.dml import Grid
from repro.microgrid.testbed import ARCH_PII_450, fig3_testbed
from repro.nws.service import NetworkWeatherService
from repro.sim.kernel import Simulator

import pytest


def build():
    sim = Simulator()
    grid = fig3_testbed(sim)
    gis = GridInformationService()
    gis.register_grid(grid)
    nws = NetworkWeatherService(sim, grid, deploy_network_sensors=False)
    return sim, grid, gis, nws


def spec(name, n_hosts=2, submit=0.0, user="u0", size=4000.0):
    return JobSpec(name=name, user=user, kind="qr", submit_time=submit,
                   n_hosts=n_hosts, size=size)


class TestQueryChurn:
    def test_unregistered_host_vanishes_from_queries(self):
        _sim, _grid, gis, _nws = build()
        assert any(r.name == "uiuc.n3" for r in gis.query())
        gis.unregister("uiuc.n3")
        assert not any(r.name == "uiuc.n3" for r in gis.query())
        with pytest.raises(GISError):
            gis.lookup("uiuc.n3")

    def test_reregistration_restores_host(self):
        _sim, grid, gis, _nws = build()
        host = next(h for h in grid.all_hosts() if h.name == "uiuc.n3")
        gis.unregister("uiuc.n3")
        gis.register_host(host)
        assert any(r.name == "uiuc.n3" for r in gis.query())

    def test_usable_hosts_follows_churn(self):
        sim, grid, gis, nws = build()
        adm = AdmissionController(gis, nws)
        job = spec("probe", n_hosts=2)
        assert "utk.n1" in adm.usable_hosts(job)
        gis.unregister("utk.n1")
        assert "utk.n1" not in adm.usable_hosts(job)
        # a crash (host stays registered but dead) is equally excluded
        next(h for h in grid.all_hosts() if h.name == "utk.n2").fail()
        assert "utk.n2" not in adm.usable_hosts(job)


class TestAdmissionChurn:
    def test_capacity_loss_rejects_next_submission(self):
        sim, _grid, gis, nws = build()
        adm = AdmissionController(gis, nws)
        wide = spec("wide", n_hosts=12)
        assert adm.admit(wide, 0, 0)[0]
        gis.unregister("uiuc.n0")
        assert adm.admit(wide, 0, 0) == (False, "insufficient-resources")


class TestServiceChurn:
    def _run_stream_with_churn(self, churn):
        """Serve a contended stream; ``churn(sim, grid, gis)`` schedules
        the directory mutation.  Returns (service, removed_hosts)."""
        sim, grid, gis, nws = build()
        service = MetaScheduler(sim, grid, gis, nws)
        removed = churn(sim, grid, gis)
        done = service.run_stream([
            spec("a", user="u0", n_hosts=4, submit=0.0, size=6000.0),
            spec("b", user="u1", n_hosts=4, submit=1.0, size=6000.0),
            spec("c", user="u2", n_hosts=4, submit=2.0, size=6000.0),
            spec("d", user="u3", n_hosts=4, submit=3.0, size=6000.0),
        ])
        sim.run(stop_event=done)
        return service, removed

    def test_no_placement_on_unregistered_host(self):
        def churn(sim, _grid, gis):
            # Pull four hosts out mid-stream, while jobs are queued and
            # reservations are outstanding.
            victims = ["uiuc.n4", "uiuc.n5", "uiuc.n6", "uiuc.n7"]
            sim.call_at(5.0, lambda: [gis.unregister(v) for v in victims])
            return victims

        service, removed = self._run_stream_with_churn(churn)
        assert service.audit_conflicts() == []
        for state in service.states():
            assert state.status == "completed"
            if state.started_at is not None and state.started_at >= 5.0:
                assert not set(state.hosts) & set(removed), (
                    f"{state.spec.name} was placed on a stale host")

    def test_no_placement_on_crashed_host(self):
        # Crash hosts that are idle (the first two jobs occupy utk.n0-3
        # and uiuc.n0-3), then submit more work: every post-crash
        # placement must avoid the dead nodes.
        sim, grid, gis, nws = build()
        service = MetaScheduler(sim, grid, gis, nws)
        victims = ["uiuc.n4", "uiuc.n5", "uiuc.n6", "uiuc.n7"]
        hosts = [h for h in grid.all_hosts() if h.name in victims]
        sim.call_at(5.0, lambda: [h.fail() for h in hosts])
        done = service.run_stream([
            spec("a", user="u0", n_hosts=4, submit=0.0, size=6000.0),
            spec("b", user="u1", n_hosts=4, submit=1.0, size=6000.0),
            spec("c", user="u2", n_hosts=4, submit=10.0, size=6000.0),
            spec("d", user="u3", n_hosts=4, submit=11.0, size=6000.0),
        ])
        sim.run(stop_event=done)
        assert service.audit_conflicts() == []
        for state in service.states():
            assert state.status == "completed"
            if state.started_at is not None and state.started_at >= 5.0:
                assert not set(state.hosts) & set(victims), (
                    f"{state.spec.name} was placed on a dead host")

    def test_registering_hosts_mid_stream_adds_capacity(self):
        sim, grid, gis, nws = build()
        service = MetaScheduler(sim, grid, gis, nws)

        def add_cluster():
            extra = Cluster(sim, grid.topology, "extra",
                            arch=ARCH_PII_450, n_hosts=4,
                            cores_per_host=1, link_bandwidth=125e6,
                            link_latency=1e-4, site="EXTRA")
            grid.add_cluster(extra)
            grid.topology.add_link(extra.switch,
                                   grid.clusters["utk"].switch,
                                   bandwidth=5e6, latency=0.011)
            for host in extra.hosts:
                gis.register_host(host)

        sim.call_at(5.0, add_cluster)
        done = service.run_stream([
            spec("a", n_hosts=12, submit=0.0, size=6000.0),
            spec("wide", n_hosts=14, submit=10.0, size=4000.0, user="u1"),
        ])
        sim.run(stop_event=done)
        wide = service.jobs["wide"]
        # 14 hosts only exist because the extra cluster registered.
        assert wide.status == "completed"
        assert any(h.startswith("extra.") for h in wide.hosts)
        assert service.audit_conflicts() == []
