"""Tests for the Grid Information Service and software registry."""

import pytest

from repro.sim import Simulator
from repro.microgrid import fig3_testbed, heterogeneous_testbed
from repro.gis import (
    GISError,
    GridInformationService,
    ResourceRecord,
    SoftwareNotFound,
    SoftwarePackage,
    SoftwareRegistry,
)


@pytest.fixture
def gis():
    sim = Simulator()
    grid = fig3_testbed(sim)
    service = GridInformationService()
    service.register_grid(grid)
    return service


class TestDirectory:
    def test_register_grid_registers_all_hosts(self, gis):
        assert len(gis) == 12

    def test_lookup_returns_record(self, gis):
        record = gis.lookup("utk.n0")
        assert record.cluster == "utk"
        assert record.site == "UTK"
        assert record.cores == 2
        assert record.isa == "ia32"

    def test_lookup_unknown_raises(self, gis):
        with pytest.raises(GISError):
            gis.lookup("nowhere.n9")

    def test_host_resolves_live_object(self, gis):
        host = gis.host("uiuc.n3")
        assert host.name == "uiuc.n3"
        assert host.cores == 1

    def test_query_by_site(self, gis):
        assert len(gis.query(site="UTK")) == 4
        assert len(gis.query(site="UIUC")) == 8

    def test_query_by_min_mflops(self, gis):
        fast = gis.query(min_mflops=300.0)
        assert {r.cluster for r in fast} == {"utk"}

    def test_query_with_predicate(self, gis):
        duals = gis.query(predicate=lambda r: r.cores == 2)
        assert len(duals) == 4

    def test_query_by_isa(self):
        sim = Simulator()
        grid = heterogeneous_testbed(sim)
        gis = GridInformationService()
        gis.register_grid(grid)
        assert len(gis.query(isa="ia64")) == 4
        assert len(gis.query(isa="ia32")) == 8

    def test_resources_sorted_and_stable(self, gis):
        names = [r.name for r in gis.resources()]
        assert names == sorted(names)

    def test_unregister(self, gis):
        gis.unregister("utk.n0")
        assert "utk.n0" not in gis
        with pytest.raises(GISError):
            gis.unregister("utk.n0")

    def test_sites(self, gis):
        assert gis.sites() == ["UIUC", "UTK"]

    def test_record_from_standalone_host(self):
        from repro.microgrid import fig4_testbed
        sim = Simulator()
        grid = fig4_testbed(sim)
        record = ResourceRecord.from_host(grid.standalone_hosts["ucsd.n0"])
        assert record.cluster is None
        assert record.site == "ucsd.n0"


class TestSoftwareRegistry:
    def test_locate_after_install(self):
        reg = SoftwareRegistry()
        pkg = SoftwarePackage(name="scalapack", version="1.7")
        reg.install(pkg, "utk.n0")
        assert "scalapack-1.7" in reg.locate("scalapack", "utk.n0")

    def test_locate_missing_raises(self):
        reg = SoftwareRegistry()
        with pytest.raises(SoftwareNotFound):
            reg.locate("scalapack", "utk.n0")

    def test_install_everywhere(self):
        reg = SoftwareRegistry()
        reg.install_everywhere(SoftwarePackage(name="binder"),
                               ["a", "b", "c"])
        assert reg.hosts_with("binder") == ["a", "b", "c"]

    def test_missing_reports_gaps(self):
        reg = SoftwareRegistry()
        reg.install(SoftwarePackage(name="mpi"), "a")
        assert reg.missing(["mpi", "eman"], "a") == ["eman"]
        assert reg.missing(["mpi"], "a") == []

    def test_packages_on_host(self):
        reg = SoftwareRegistry()
        reg.install(SoftwarePackage(name="mpi"), "a")
        reg.install(SoftwarePackage(name="binder"), "a")
        assert reg.packages_on("a") == ["binder", "mpi"]

    def test_isa_support(self):
        portable = SoftwarePackage(name="src")
        binary = SoftwarePackage(name="bin", isas=("ia32",))
        assert portable.supports("ia64")
        assert binary.supports("ia32")
        assert not binary.supports("ia64")

    def test_custom_path(self):
        reg = SoftwareRegistry()
        reg.install(SoftwarePackage(name="eman"), "h", path="/opt/eman")
        assert reg.locate("eman", "h") == "/opt/eman"
