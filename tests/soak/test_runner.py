"""End-to-end scenario execution: lanes, determinism, engine checks."""

import json

from repro.soak import run_scenario, run_with_checks, sample_scenario
from repro.soak.scenario import ScenarioSpec


def _clean_smoke_spec():
    # one of everything, deterministic, fast: a couple of jobs, a
    # crash/recover window, a burst, a WAN re-provision, a services
    # lane with one kill, and a swap lane that gets stopped mid-run
    return ScenarioSpec(
        index=0, seed=3, duration=240.0,
        jobs=[
            {"name": "u0-j0", "user": "u0", "kind": "qr",
             "submit_time": 5.0, "n_hosts": 2, "size": 800.0},
            {"name": "u1-j1", "user": "u1", "kind": "eman",
             "submit_time": 30.0, "n_hosts": 1, "size": 2500.0},
        ],
        faults=[{"host": "uiuc.n3", "at": 40.0, "recover_at": 100.0}],
        bursts=[{"host": "utk.n2", "at": 20.0, "until": 90.0,
                 "nprocs": 2}],
        links=[{"a": "utk.switch", "b": "uiuc.switch", "via": None,
                "bandwidth": 4e6, "latency": 0.01, "at": 60.0}],
        services={"capacity": 2, "count": 2, "producers": 2,
                  "consumers": 2, "workers": 2, "items_per_producer": 4,
                  "kills": [{"victim": "svc-worker-0", "at": 15.0}]},
        swap={"n_bodies": 8000, "n_iterations": 40, "policy": "gang",
              "period": 10.0, "improvement": 1.05, "stop_at": 35.0},
    )


class TestRunScenario:
    def test_smoke_scenario_runs_clean(self):
        outcome = run_scenario(_clean_smoke_spec())
        assert outcome.violations == []
        assert outcome.quiesced
        assert outcome.lanes["metasched"] == "ok"
        assert outcome.lanes["services"] == "ok"
        assert outcome.lanes["swap"] == "ok"
        assert outcome.lanes["srs"] == "absent"
        assert len(outcome.jobs) == 2
        assert outcome.counters["meta_submitted"] == 2

    def test_report_is_deterministic(self):
        a = run_scenario(_clean_smoke_spec()).report()
        b = run_scenario(_clean_smoke_spec()).report()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_fast_and_reference_engines_agree(self):
        spec = _clean_smoke_spec()
        fast = run_scenario(spec, engine="fast").report()
        ref = run_scenario(spec, engine="reference").report()
        assert fast == ref


class TestRunWithChecks:
    def test_engine_check_records_agreement(self):
        spec = sample_scenario(7, 0)
        assert spec.engine_check
        result = run_with_checks(spec)
        assert result["engine_agreement"] is True
        assert result["violations"] == []

    def test_engine_check_skipped_when_disabled(self):
        spec = sample_scenario(7, 1)
        assert not spec.engine_check
        result = run_with_checks(spec)
        assert result["engine_agreement"] is None

    def test_sampled_scenarios_run_clean(self):
        for index in range(4):
            result = run_with_checks(sample_scenario(11, index))
            assert result["violations"] == [], (index, result["violations"])
            assert result["quiesced"], index

    def test_same_seed_reports_byte_identical(self):
        spec = sample_scenario(7, 2)
        a = json.dumps(run_with_checks(spec), sort_keys=True)
        b = json.dumps(run_with_checks(spec), sort_keys=True)
        assert a == b
