"""The invariant auditor registry and the canary violation."""

from repro.soak import (
    CHECKPOINT_AUDITORS,
    FINAL_AUDITORS,
    ScenarioSpec,
    Violation,
    run_scenario,
)


class TestRegistry:
    def test_expected_auditors_registered(self):
        assert set(CHECKPOINT_AUDITORS) == {
            "flow-capacity", "host-hygiene", "resource-bounds",
            "reservation-calendar",
        }
        assert {"quiesce", "unhandled-error", "stats-consistency",
                "services-conservation", "swap-hygiene", "srs-hygiene",
                "flows-drained", "trace-wellformed",
                "marker-canary"} <= set(FINAL_AUDITORS)

    def test_violation_round_trips_to_dict(self):
        violation = Violation(invariant="x", time=1.5, detail="boom")
        assert violation.to_dict() == {
            "invariant": "x", "time": 1.5, "detail": "boom"}


class TestMarkerCanary:
    """The permanent known-violation hook used by tests and CI."""

    def test_complementary_markers_flag(self):
        spec = ScenarioSpec(index=0, seed=0, duration=60.0,
                            markers=[60, 13, 40, 27])
        outcome = run_scenario(spec)
        canary = [v for v in outcome.violations
                  if v.invariant == "marker-canary"]
        assert len(canary) == 1
        assert "markers[0]=60 and markers[2]=40" in canary[0].detail

    def test_non_complementary_markers_stay_quiet(self):
        spec = ScenarioSpec(index=0, seed=0, duration=60.0,
                            markers=[60, 13, 41, 27])
        outcome = run_scenario(spec)
        assert not [v for v in outcome.violations
                    if v.invariant == "marker-canary"]

    def test_empty_scenario_is_clean(self):
        outcome = run_scenario(ScenarioSpec(index=0, seed=0, duration=60.0))
        assert outcome.violations == []
        assert outcome.quiesced
