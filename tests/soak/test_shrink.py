"""Greedy delta-debugging over scenario element lists."""

import os

import pytest

from repro.soak import (
    ScenarioSpec,
    load_reproducer,
    sample_scenario,
    shrink_scenario,
    violated_invariants,
    write_reproducer,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "known_violation.json")


class TestShrink:
    def test_known_violation_shrinks_to_marker_core(self):
        spec = load_reproducer(FIXTURE)
        assert spec.markers == [60, 13, 40, 27]
        result = shrink_scenario(spec)
        assert result.targets == frozenset({"marker-canary"})
        # the violation needs exactly the two complementary markers
        assert sorted(result.minimal.markers) == [40, 60]
        assert result.minimal.jobs == []
        assert result.minimal.duration <= spec.duration
        assert result.runs > 0

    def test_minimal_spec_still_violates(self):
        result = shrink_scenario(load_reproducer(FIXTURE))
        from repro.soak import run_with_checks
        replay = run_with_checks(result.minimal)
        assert "marker-canary" in violated_invariants(replay)

    def test_clean_scenario_raises(self):
        with pytest.raises(ValueError, match="does not violate"):
            shrink_scenario(sample_scenario(7, 1))


class TestReproducerIO:
    def test_write_load_round_trip(self, tmp_path):
        spec = sample_scenario(7, 3)
        path = tmp_path / "repro.json"
        write_reproducer(spec, str(path))
        assert load_reproducer(str(path)) == spec
        # byte-stable on disk: single JSON line, trailing newline
        text = path.read_text()
        assert text.endswith("\n")
        assert text.count("\n") == 1

    def test_load_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 1, "index": 0, "seed": 0, '
                        '"duration": 10.0, "mystery": true}\n')
        with pytest.raises(ValueError, match="unknown scenario fields"):
            load_reproducer(str(path))


def test_violated_invariants_extracts_names():
    report = {"violations": [{"invariant": "a", "time": 0.0, "detail": ""},
                             {"invariant": "b", "time": 1.0, "detail": ""},
                             {"invariant": "a", "time": 2.0, "detail": ""}]}
    assert violated_invariants(report) == frozenset({"a", "b"})


def test_scenariospec_shrink_clone_is_independent():
    spec = sample_scenario(7, 0)
    clone = ScenarioSpec.from_dict(spec.to_dict())
    clone.jobs.clear()
    assert spec.jobs  # mutating the clone must not touch the original
